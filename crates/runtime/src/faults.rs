//! Deterministic fault injection: the adversarial half of the hostile-world
//! suite (ROADMAP "Hostile-world suite").
//!
//! Statically certified protocols are only as trustworthy as the runtime's
//! behaviour when the world misbehaves, and hand-written sabotage probes only
//! exercise the failure modes someone thought of. This module manufactures
//! failures *systematically* and *reproducibly*:
//!
//! * [`FaultPlan`] — a seed-driven schedule of transport-level faults
//!   ([`FaultKind`]: delay, drop, duplicate, reorder, truncate, mid-session
//!   disconnect), each site-addressable (send/receive side, optionally a
//!   single peer) and budget-capped;
//! * [`FaultyTransport`] — a wrapper implementing [`Transport`] over any
//!   inner transport (the in-memory network and the TCP transport alike)
//!   that executes the plan and logs every injection as an
//!   [`InjectedFault`], so two runs with the same seed produce the same
//!   schedule byte for byte;
//! * [`FaultReader`] — a wrapper at the [`FrameReader`] seam that corrupts
//!   the *byte stream* below the codec ([`WireFault`]: bit flips, split
//!   deliveries, truncated tails, hostile length prefixes), the faults a
//!   certified process can never cause but a hostile network can.
//!
//! Determinism is the load-bearing property: the PRNG is consulted only on
//! *counted* operations — every send, and every receive that actually
//! produced a message — never on empty polls, so the injected schedule
//! depends only on the endpoint's deterministic program order, not on
//! timing, and is identical across the in-memory and TCP backends.

use std::collections::VecDeque;
use std::io::Read;

use zooid_mpst::{Label, Role};
use zooid_proc::Value;

use crate::error::{Result, RuntimeError};
use crate::transport::Transport;
use crate::wire::{FillStatus, FrameReader};

/// SplitMix64: a tiny, fast, hand-rolled deterministic PRNG (no external
/// crates — the build stays hermetic). Good enough statistical quality for
/// fault scheduling, and trivially reproducible from a single `u64` seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    fn chance(&mut self, rate_per_64k: u32) -> bool {
        if rate_per_64k >= 65_536 {
            // An always-firing spec must not consume randomness differently
            // from a probabilistic one, so the draw still happens.
            self.next_u64();
            return true;
        }
        (self.next_u64() & 0xFFFF) < u64::from(rate_per_64k)
    }
}

/// The transport-level fault kinds a [`FaultPlan`] can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Hold a message back for a few operations before delivering it.
    Delay,
    /// Silently discard a message.
    Drop,
    /// Deliver a message twice.
    Duplicate,
    /// Swap a message with the next one on the same site.
    Reorder,
    /// Corrupt a message in flight: the receiver sees a codec error and the
    /// message is lost. Only meaningful on the receive site.
    Truncate,
    /// Sever the transport mid-session; every later operation fails with
    /// [`RuntimeError::Disconnected`]. Sticky.
    Disconnect,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::Delay => "delay",
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Truncate => "truncate",
            FaultKind::Disconnect => "disconnect",
        };
        f.write_str(s)
    }
}

/// Which side of the transport a fault attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Outgoing messages (`Transport::send`).
    Send,
    /// Incoming messages (`recv` / `try_recv` deliveries).
    Recv,
    /// Either side.
    Any,
}

impl FaultSite {
    fn matches(self, dir: FaultDirection) -> bool {
        match (self, dir) {
            (FaultSite::Any, _) => true,
            (FaultSite::Send, FaultDirection::Send) => true,
            (FaultSite::Recv, FaultDirection::Recv) => true,
            _ => false,
        }
    }
}

/// The concrete side an injection happened on (recorded in the schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDirection {
    /// The fault was injected on an outgoing message.
    Send,
    /// The fault was injected on an incoming message.
    Recv,
}

/// One site-addressable, budget-capped fault specification.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    kind: FaultKind,
    site: FaultSite,
    peer: Option<Role>,
    rate_per_64k: u32,
    budget: u32,
}

impl FaultSpec {
    /// A spec that fires on **every** eligible operation until its budget
    /// (default 1) is spent.
    pub fn new(kind: FaultKind, site: FaultSite) -> Self {
        FaultSpec {
            kind,
            site,
            peer: None,
            rate_per_64k: 65_536,
            budget: 1,
        }
    }

    /// Restricts the spec to operations involving one specific peer.
    #[must_use]
    pub fn peer(mut self, peer: Role) -> Self {
        self.peer = Some(peer);
        self
    }

    /// Sets the firing probability as a rate out of 65 536 per eligible
    /// operation (65 536 = always).
    #[must_use]
    pub fn rate(mut self, rate_per_64k: u32) -> Self {
        self.rate_per_64k = rate_per_64k;
        self
    }

    /// Caps the total number of injections this spec may perform.
    #[must_use]
    pub fn budget(mut self, budget: u32) -> Self {
        self.budget = budget;
        self
    }
}

/// A deterministic, seed-driven schedule of faults.
///
/// The plan is pure data: the same plan (seed + specs) applied to the same
/// endpoint program produces the same [`InjectedFault`] schedule on every
/// run and every backend.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed: injects nothing, behaviorally a
    /// no-op wrapper.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Adds a fault spec to the plan (builder style).
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// One injected fault, as recorded in the deterministic schedule log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The counted-operation index at which the fault fired (1-based).
    pub op: u64,
    /// What was injected.
    pub kind: FaultKind,
    /// Which side it was injected on.
    pub direction: FaultDirection,
    /// The peer involved in the faulted operation.
    pub peer: Role,
    /// The label of the message the fault applied to.
    pub label: Label,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dir = match self.direction {
            FaultDirection::Send => "send",
            FaultDirection::Recv => "recv",
        };
        write!(
            f,
            "op {}: {} on {} `{}` (peer `{}`)",
            self.op, self.kind, dir, self.label, self.peer
        )
    }
}

/// Fault evaluator for the columnar batch arena (`cbatch::SessionBatch`).
///
/// In-arena sends between co-batched sessions never cross a [`Transport`],
/// so [`FaultyTransport`] cannot reach them — without this evaluator the
/// batch fast path would be exempt from the hostile-world suite. The batch
/// consults [`ArenaFaults::decide`] once per arena send (a *counted*
/// operation, exactly like the transport wrapper's), so the schedule is a
/// deterministic function of the seed and the batch's step order.
///
/// The arena is a same-process index write, which narrows the meaningful
/// fault kinds:
///
/// * [`FaultKind::Drop`] — the frame is never pushed;
/// * [`FaultKind::Duplicate`] — the frame is pushed twice;
/// * [`FaultKind::Truncate`] — the frame is pushed with a corrupt wire id,
///   surfacing at the *receiver* as a codec failure. This deviates from the
///   transport wrapper (where truncation only fires on the receive site):
///   the arena has no separate receive operation, so the send is the only
///   seam, and the observable effect — receiver-side codec error, message
///   lost — is the same.
///
/// Delay, reorder and disconnect describe a wire that the arena does not
/// have; specs carrying them are ignored here. Receive-site-only specs are
/// likewise ignored (every arena operation counts as a send).
#[derive(Debug)]
pub struct ArenaFaults {
    rng: SplitMix64,
    /// `(spec, injections already performed)`.
    specs: Vec<(FaultSpec, u32)>,
    /// Counted operations (arena sends).
    op: u64,
    schedule: Vec<InjectedFault>,
}

impl ArenaFaults {
    /// Builds an evaluator from a plan. Kinds the arena cannot express
    /// (delay, reorder, disconnect) are dropped up front.
    pub fn new(plan: &FaultPlan) -> Self {
        ArenaFaults {
            rng: SplitMix64::new(plan.seed),
            specs: plan
                .specs
                .iter()
                .filter(|s| {
                    matches!(
                        s.kind,
                        FaultKind::Drop | FaultKind::Duplicate | FaultKind::Truncate
                    ) && s.site != FaultSite::Recv
                })
                .map(|s| (s.clone(), 0))
                .collect(),
            op: 0,
            schedule: Vec::new(),
        }
    }

    /// Decides whether a fault fires for this arena send. Draws from the
    /// PRNG once per matching spec until one fires, mirroring
    /// [`FaultyTransport`]'s discipline.
    pub fn decide(&mut self, peer: &Role, label: &Label) -> Option<FaultKind> {
        self.op += 1;
        for (spec, used) in &mut self.specs {
            if *used >= spec.budget {
                continue;
            }
            if let Some(target) = &spec.peer {
                if target != peer {
                    continue;
                }
            }
            if self.rng.chance(spec.rate_per_64k) {
                *used += 1;
                self.schedule.push(InjectedFault {
                    op: self.op,
                    kind: spec.kind,
                    direction: FaultDirection::Send,
                    peer: peer.clone(),
                    label: label.clone(),
                });
                return Some(spec.kind);
            }
        }
        None
    }

    /// The deterministic log of every fault injected so far, in order.
    pub fn schedule(&self) -> &[InjectedFault] {
        &self.schedule
    }

    /// Drains and returns the schedule log.
    pub fn take_schedule(&mut self) -> Vec<InjectedFault> {
        std::mem::take(&mut self.schedule)
    }
}

/// A message held back by a delay or reorder fault, gated on the wrapper's
/// tick counter (which advances on *every* call, so held messages are
/// eventually released even while the endpoint only polls).
#[derive(Debug)]
struct HeldMessage {
    release_tick: u64,
    peer: Role,
    label: Label,
    value: Value,
}

/// A [`Transport`] wrapper that executes a [`FaultPlan`] against an inner
/// transport.
///
/// Works over any `Transport` — the in-memory network and the TCP transport
/// alike — because it only uses the trait surface. With an empty plan it is
/// a behavioral no-op (every call delegates unchanged).
///
/// The wrapper consults its PRNG only on counted operations (sends, and
/// receives that produced a message), so the injected schedule — readable
/// via [`FaultyTransport::schedule`] — is a deterministic function of the
/// seed and the endpoint's program order, independent of timing and
/// backend.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    rng: SplitMix64,
    /// `(spec, injections already performed)`.
    specs: Vec<(FaultSpec, u32)>,
    /// Counted operations: sends + receives that yielded a message.
    op: u64,
    /// Every call (including empty polls); gates release of held messages.
    ticks: u64,
    disconnected: bool,
    /// Outgoing messages held back by send-side delay/reorder faults.
    delayed_sends: VecDeque<HeldMessage>,
    /// Incoming messages held back by recv-side delay/duplicate/reorder.
    stashed_recvs: VecDeque<HeldMessage>,
    schedule: Vec<InjectedFault>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: T, plan: &FaultPlan) -> Self {
        FaultyTransport {
            inner,
            rng: SplitMix64::new(plan.seed),
            specs: plan.specs.iter().map(|s| (s.clone(), 0)).collect(),
            op: 0,
            ticks: 0,
            disconnected: false,
            delayed_sends: VecDeque::new(),
            stashed_recvs: VecDeque::new(),
            schedule: Vec::new(),
        }
    }

    /// The inner transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The inner transport, mutably.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps the inner transport, discarding any still-held messages.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// The deterministic log of every fault injected so far, in order.
    pub fn schedule(&self) -> &[InjectedFault] {
        &self.schedule
    }

    /// Drains and returns the schedule log.
    pub fn take_schedule(&mut self) -> Vec<InjectedFault> {
        std::mem::take(&mut self.schedule)
    }

    /// Decides whether a fault fires for this counted operation. Draws from
    /// the PRNG once per matching spec until one fires, so the stream of
    /// draws is a pure function of the operation sequence.
    fn decide(&mut self, dir: FaultDirection, peer: &Role) -> Option<FaultKind> {
        for (spec, used) in &mut self.specs {
            if *used >= spec.budget {
                continue;
            }
            if !spec.site.matches(dir) {
                continue;
            }
            if let Some(target) = &spec.peer {
                if target != peer {
                    continue;
                }
            }
            // Truncation is a wire-observation fault: it manifests at the
            // receiver as a codec error. A truncate spec never fires on the
            // send side even under `FaultSite::Any`.
            if spec.kind == FaultKind::Truncate && dir == FaultDirection::Send {
                continue;
            }
            if self.rng.chance(spec.rate_per_64k) {
                *used += 1;
                return Some(spec.kind);
            }
        }
        None
    }

    fn record(&mut self, kind: FaultKind, dir: FaultDirection, peer: &Role, label: &Label) {
        self.schedule.push(InjectedFault {
            op: self.op,
            kind,
            direction: dir,
            peer: peer.clone(),
            label: label.clone(),
        });
    }

    /// Releases delayed outgoing messages whose gate has passed.
    fn flush_delayed_sends(&mut self) -> Result<()> {
        while let Some(front) = self.delayed_sends.front() {
            if front.release_tick > self.ticks {
                break;
            }
            let m = self.delayed_sends.pop_front().expect("front checked");
            self.inner.send(&m.peer, &m.label, &m.value)?;
        }
        Ok(())
    }

    /// Pops a stashed incoming message for `from` whose gate has passed.
    fn pop_stashed(&mut self, from: &Role) -> Option<(Label, Value)> {
        let idx = self
            .stashed_recvs
            .iter()
            .position(|m| &m.peer == from && m.release_tick <= self.ticks)?;
        let m = self.stashed_recvs.remove(idx).expect("index found");
        Some((m.label, m.value))
    }

    /// True when a stashed message for `from` exists but is still gated.
    fn has_gated_stash(&self, from: &Role) -> bool {
        self.stashed_recvs.iter().any(|m| &m.peer == from)
    }

    fn check_connected(&self, peer: &Role) -> Result<()> {
        if self.disconnected {
            return Err(RuntimeError::Disconnected { role: peer.clone() });
        }
        Ok(())
    }

    /// Applies a recv-side fault decision to a freshly received message.
    /// Returns `Ok(Some(..))` when a message should be delivered now,
    /// `Ok(None)` when it was absorbed (dropped / delayed / reordered away).
    fn apply_recv_fault(
        &mut self,
        from: &Role,
        label: Label,
        value: Value,
    ) -> Result<Option<(Label, Value)>> {
        match self.decide(FaultDirection::Recv, from) {
            None => Ok(Some((label, value))),
            Some(FaultKind::Drop) => {
                self.record(FaultKind::Drop, FaultDirection::Recv, from, &label);
                Ok(None)
            }
            Some(FaultKind::Delay) => {
                self.record(FaultKind::Delay, FaultDirection::Recv, from, &label);
                let delta = 1 + self.rng.below(3);
                self.stashed_recvs.push_back(HeldMessage {
                    release_tick: self.ticks + delta,
                    peer: from.clone(),
                    label,
                    value,
                });
                Ok(None)
            }
            Some(FaultKind::Duplicate) => {
                self.record(FaultKind::Duplicate, FaultDirection::Recv, from, &label);
                self.stashed_recvs.push_back(HeldMessage {
                    release_tick: 0,
                    peer: from.clone(),
                    label: label.clone(),
                    value: value.clone(),
                });
                Ok(Some((label, value)))
            }
            Some(FaultKind::Reorder) => {
                // Swap with the next already-queued message from the same
                // peer; when there is none the swap is impossible and the
                // message passes through un-faulted (budget refunded).
                match self.inner.try_recv(from)? {
                    Some((next_label, next_value)) => {
                        self.record(FaultKind::Reorder, FaultDirection::Recv, from, &label);
                        self.stashed_recvs.push_back(HeldMessage {
                            release_tick: 0,
                            peer: from.clone(),
                            label,
                            value,
                        });
                        Ok(Some((next_label, next_value)))
                    }
                    None => {
                        if let Some((spec, used)) = self
                            .specs
                            .iter_mut()
                            .find(|(s, _)| s.kind == FaultKind::Reorder)
                        {
                            let _ = spec;
                            *used = used.saturating_sub(1);
                        }
                        Ok(Some((label, value)))
                    }
                }
            }
            Some(FaultKind::Truncate) => {
                self.record(FaultKind::Truncate, FaultDirection::Recv, from, &label);
                Err(RuntimeError::Codec {
                    reason: format!("injected fault: frame `{label}` truncated in flight"),
                })
            }
            Some(FaultKind::Disconnect) => {
                self.record(FaultKind::Disconnect, FaultDirection::Recv, from, &label);
                self.disconnected = true;
                Err(RuntimeError::Disconnected { role: from.clone() })
            }
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, to: &Role, label: &Label, value: &Value) -> Result<()> {
        self.check_connected(to)?;
        self.ticks += 1;
        self.op += 1;
        // Held messages flush *after* the current send, so a reordered
        // message really is overtaken by its successor.
        let result = match self.decide(FaultDirection::Send, to) {
            None => self.inner.send(to, label, value),
            Some(FaultKind::Drop) => {
                self.record(FaultKind::Drop, FaultDirection::Send, to, label);
                Ok(())
            }
            Some(FaultKind::Duplicate) => {
                self.record(FaultKind::Duplicate, FaultDirection::Send, to, label);
                self.inner.send(to, label, value)?;
                self.inner.send(to, label, value)
            }
            Some(FaultKind::Delay) => {
                self.record(FaultKind::Delay, FaultDirection::Send, to, label);
                let delta = 1 + self.rng.below(3);
                self.delayed_sends.push_back(HeldMessage {
                    release_tick: self.ticks + delta,
                    peer: to.clone(),
                    label: label.clone(),
                    value: value.clone(),
                });
                Ok(())
            }
            Some(FaultKind::Reorder) => {
                self.record(FaultKind::Reorder, FaultDirection::Send, to, label);
                // Held until the next send, which overtakes it.
                self.delayed_sends.push_back(HeldMessage {
                    release_tick: self.ticks + 1,
                    peer: to.clone(),
                    label: label.clone(),
                    value: value.clone(),
                });
                Ok(())
            }
            Some(FaultKind::Truncate) => unreachable!("truncate never fires on the send side"),
            Some(FaultKind::Disconnect) => {
                self.record(FaultKind::Disconnect, FaultDirection::Send, to, label);
                self.disconnected = true;
                Err(RuntimeError::Disconnected { role: to.clone() })
            }
        };
        result?;
        self.flush_delayed_sends()
    }

    fn recv(&mut self, from: &Role) -> Result<(Label, Value)> {
        loop {
            self.check_connected(from)?;
            self.ticks += 1;
            self.flush_delayed_sends()?;
            if let Some(msg) = self.pop_stashed(from) {
                return Ok(msg);
            }
            // A gated stash must not sit behind a blocking recv forever:
            // treat the gate as expired once nothing else can arrive first.
            let (label, value) = match self.inner.try_recv(from)? {
                Some(msg) => msg,
                None => {
                    if self.has_gated_stash(from) {
                        self.ticks += 1;
                        continue;
                    }
                    self.inner.recv(from)?
                }
            };
            self.op += 1;
            match self.apply_recv_fault(from, label, value)? {
                Some(msg) => return Ok(msg),
                None => continue,
            }
        }
    }

    fn try_recv(&mut self, from: &Role) -> Result<Option<(Label, Value)>> {
        self.check_connected(from)?;
        self.ticks += 1;
        self.flush_delayed_sends()?;
        if let Some(msg) = self.pop_stashed(from) {
            return Ok(Some(msg));
        }
        match self.inner.try_recv(from)? {
            None => Ok(None),
            Some((label, value)) => {
                self.op += 1;
                self.apply_recv_fault(from, label, value)
            }
        }
    }

    fn local_role(&self) -> &Role {
        self.inner.local_role()
    }
}

/// The wire-level corruption kinds a [`FaultReader`] can inject, below the
/// codec: these are byte-stream faults a certified process can never cause
/// but a hostile network can.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireFault {
    /// Flip one pseudo-randomly chosen bit in a delivered chunk.
    BitFlip,
    /// Deliver a chunk in two halves across separate extend calls,
    /// exercising partial-frame reassembly. Behaviorally a no-op for a
    /// correct reader.
    Split,
    /// Drop the tail of a chunk: the stream loses bytes mid-frame and every
    /// later byte is misinterpreted.
    TruncateTail,
    /// Overwrite the start of a chunk with an absurd big-endian length
    /// prefix (`u32::MAX`), which must poison the reader, not allocate.
    HostileLength,
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireFault::BitFlip => "bit-flip",
            WireFault::Split => "split",
            WireFault::TruncateTail => "truncate-tail",
            WireFault::HostileLength => "hostile-length",
        };
        f.write_str(s)
    }
}

/// One injected wire fault, as recorded in the [`FaultReader`] schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedWireFault {
    /// The 1-based index of the delivered chunk the fault applied to.
    pub chunk: u64,
    /// What was injected.
    pub fault: WireFault,
}

#[derive(Debug)]
struct WireFaultSpec {
    fault: WireFault,
    rate_per_64k: u32,
    budget: u32,
    used: u32,
}

/// A [`FrameReader`] wrapper that corrupts the incoming byte stream before
/// the framing layer sees it.
///
/// Feed bytes with [`FaultReader::extend`] or [`FaultReader::fill`] exactly
/// as with a bare `FrameReader`; corruption is applied per delivered chunk,
/// deterministically from the seed, and logged in
/// [`FaultReader::schedule`].
#[derive(Debug)]
pub struct FaultReader {
    inner: FrameReader,
    rng: SplitMix64,
    specs: Vec<WireFaultSpec>,
    /// Second half of a split chunk, delivered before the next chunk.
    held: Vec<u8>,
    chunk: u64,
    schedule: Vec<InjectedWireFault>,
}

impl FaultReader {
    /// Creates a reader with the given frame-size cap and fault seed.
    pub fn new(max_frame_bytes: usize, seed: u64) -> Self {
        FaultReader {
            inner: FrameReader::new(max_frame_bytes),
            rng: SplitMix64::new(seed),
            specs: Vec::new(),
            held: Vec::new(),
            chunk: 0,
            schedule: Vec::new(),
        }
    }

    /// Adds a wire-fault spec (builder style). `rate_per_64k` of 65 536
    /// fires on every chunk until `budget` injections have happened.
    #[must_use]
    pub fn with(mut self, fault: WireFault, rate_per_64k: u32, budget: u32) -> Self {
        self.specs.push(WireFaultSpec {
            fault,
            rate_per_64k,
            budget,
            used: 0,
        });
        self
    }

    /// The deterministic log of injected wire faults.
    pub fn schedule(&self) -> &[InjectedWireFault] {
        &self.schedule
    }

    /// Bytes buffered but not yet consumed as complete frames, including a
    /// held split-chunk half.
    pub fn pending_bytes(&self) -> usize {
        self.inner.pending_bytes() + self.held.len()
    }

    /// The configured frame-size cap.
    pub fn max_frame_bytes(&self) -> usize {
        self.inner.max_frame_bytes()
    }

    /// Delivers bytes through the corruption layer into the framing buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        if !self.held.is_empty() {
            let held = std::mem::take(&mut self.held);
            self.inner.extend(&held);
        }
        if bytes.is_empty() {
            return;
        }
        self.chunk += 1;
        let mut owned = bytes.to_vec();
        let mut fired: Option<WireFault> = None;
        for spec in &mut self.specs {
            if spec.used >= spec.budget {
                continue;
            }
            if self.rng.chance(spec.rate_per_64k) {
                spec.used += 1;
                fired = Some(spec.fault);
                break;
            }
        }
        let Some(fault) = fired else {
            self.inner.extend(&owned);
            return;
        };
        self.schedule.push(InjectedWireFault {
            chunk: self.chunk,
            fault,
        });
        match fault {
            WireFault::BitFlip => {
                let byte = self.rng.below(owned.len() as u64) as usize;
                let bit = self.rng.below(8) as u8;
                owned[byte] ^= 1 << bit;
                self.inner.extend(&owned);
            }
            WireFault::Split => {
                let cut = 1 + self.rng.below(owned.len() as u64) as usize;
                let cut = cut.min(owned.len());
                self.inner.extend(&owned[..cut]);
                self.held = owned[cut..].to_vec();
            }
            WireFault::TruncateTail => {
                let keep = self.rng.below(owned.len() as u64) as usize;
                self.inner.extend(&owned[..keep]);
            }
            WireFault::HostileLength => {
                let hostile = u32::MAX.to_be_bytes();
                if owned.len() >= 4 {
                    owned[..4].copy_from_slice(&hostile);
                    self.inner.extend(&owned);
                } else {
                    self.inner.extend(&hostile);
                    self.inner.extend(&owned);
                }
            }
        }
    }

    /// Reads available bytes from `reader` through the corruption layer,
    /// mirroring [`FrameReader::fill`]'s contract.
    ///
    /// # Errors
    ///
    /// Propagates transport i/o failures (never `WouldBlock`, which maps to
    /// [`FillStatus::WouldBlock`]).
    pub fn fill(&mut self, reader: &mut impl Read) -> Result<FillStatus> {
        let mut chunk = [0u8; 4096];
        loop {
            match reader.read(&mut chunk) {
                Ok(0) => return Ok(FillStatus::Eof),
                Ok(n) => {
                    self.extend(&chunk[..n]);
                    return Ok(FillStatus::Progress);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(FillStatus::WouldBlock)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(RuntimeError::Io(e)),
            }
        }
    }

    /// Pops the next complete frame, exactly as [`FrameReader::next_frame`].
    ///
    /// # Errors
    ///
    /// Fails when a (possibly injected) length prefix exceeds the cap.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        // A held split half with an otherwise starved buffer must still be
        // parseable: release it if the inner reader cannot make progress.
        match self.inner.next_frame()? {
            Some(frame) => Ok(Some(frame)),
            None => {
                if self.held.is_empty() {
                    return Ok(None);
                }
                let held = std::mem::take(&mut self.held);
                self.inner.extend(&held);
                self.inner.next_frame()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InMemoryNetwork;
    use crate::wire::put_frame;
    use bytes::BytesMut;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn l(name: &str) -> Label {
        Label::new(name)
    }

    fn pair() -> (
        crate::transport::InMemoryTransport,
        crate::transport::InMemoryTransport,
    ) {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        (
            net.take_endpoint(&r("p")).unwrap(),
            net.take_endpoint(&r("q")).unwrap(),
        )
    }

    #[test]
    fn splitmix_streams_are_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn empty_plan_is_a_passthrough() {
        let (p, mut q) = pair();
        let mut p = FaultyTransport::new(p, &FaultPlan::new(7));
        for i in 0..10 {
            p.send(&r("q"), &l("m"), &Value::Nat(i)).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.recv(&r("p")).unwrap(), (l("m"), Value::Nat(i)));
        }
        assert!(p.schedule().is_empty());
    }

    #[test]
    fn drop_discards_exactly_budget_messages() {
        let (p, mut q) = pair();
        let plan =
            FaultPlan::new(1).with(FaultSpec::new(FaultKind::Drop, FaultSite::Send).budget(1));
        let mut p = FaultyTransport::new(p, &plan);
        p.send(&r("q"), &l("a"), &Value::Nat(1)).unwrap();
        p.send(&r("q"), &l("b"), &Value::Nat(2)).unwrap();
        // First send dropped, second delivered.
        assert_eq!(q.recv(&r("p")).unwrap(), (l("b"), Value::Nat(2)));
        assert_eq!(p.schedule().len(), 1);
        assert_eq!(p.schedule()[0].kind, FaultKind::Drop);
        assert_eq!(p.schedule()[0].op, 1);
    }

    #[test]
    fn duplicate_delivers_twice() {
        let (p, mut q) = pair();
        let plan = FaultPlan::new(2).with(FaultSpec::new(FaultKind::Duplicate, FaultSite::Send));
        let mut p = FaultyTransport::new(p, &plan);
        p.send(&r("q"), &l("a"), &Value::Nat(1)).unwrap();
        assert_eq!(q.recv(&r("p")).unwrap(), (l("a"), Value::Nat(1)));
        assert_eq!(q.recv(&r("p")).unwrap(), (l("a"), Value::Nat(1)));
    }

    #[test]
    fn send_reorder_swaps_adjacent_messages() {
        let (p, mut q) = pair();
        let plan = FaultPlan::new(3).with(FaultSpec::new(FaultKind::Reorder, FaultSite::Send));
        let mut p = FaultyTransport::new(p, &plan);
        p.send(&r("q"), &l("first"), &Value::Nat(1)).unwrap();
        p.send(&r("q"), &l("second"), &Value::Nat(2)).unwrap();
        assert_eq!(q.recv(&r("p")).unwrap(), (l("second"), Value::Nat(2)));
        assert_eq!(q.recv(&r("p")).unwrap(), (l("first"), Value::Nat(1)));
    }

    #[test]
    fn recv_truncate_surfaces_codec_error() {
        let (mut p, q) = pair();
        let plan = FaultPlan::new(4).with(FaultSpec::new(FaultKind::Truncate, FaultSite::Recv));
        let mut q = FaultyTransport::new(q, &plan);
        p.send(&r("q"), &l("a"), &Value::Nat(1)).unwrap();
        match q.recv(&r("p")) {
            Err(RuntimeError::Codec { reason }) => {
                assert!(reason.contains("injected"), "reason: {reason}")
            }
            other => panic!("expected codec error, got {other:?}"),
        }
    }

    #[test]
    fn disconnect_is_sticky_on_both_directions() {
        let (p, _q) = pair();
        let plan = FaultPlan::new(5).with(FaultSpec::new(FaultKind::Disconnect, FaultSite::Send));
        let mut p = FaultyTransport::new(p, &plan);
        assert!(matches!(
            p.send(&r("q"), &l("a"), &Value::Nat(1)),
            Err(RuntimeError::Disconnected { .. })
        ));
        assert!(matches!(
            p.send(&r("q"), &l("b"), &Value::Nat(2)),
            Err(RuntimeError::Disconnected { .. })
        ));
        assert!(matches!(
            p.try_recv(&r("q")),
            Err(RuntimeError::Disconnected { .. })
        ));
    }

    #[test]
    fn recv_delay_holds_then_releases() {
        let (mut p, q) = pair();
        let plan = FaultPlan::new(6).with(FaultSpec::new(FaultKind::Delay, FaultSite::Recv));
        let mut q = FaultyTransport::new(q, &plan);
        p.send(&r("q"), &l("a"), &Value::Nat(1)).unwrap();
        // The delayed message resurfaces after a bounded number of polls.
        let mut polls = 0;
        let msg = loop {
            polls += 1;
            assert!(polls < 32, "delayed message never released");
            if let Some(msg) = q.try_recv(&r("p")).unwrap() {
                break msg;
            }
        };
        assert_eq!(msg, (l("a"), Value::Nat(1)));
        assert!(polls > 1, "delay must hold the message at least one poll");
    }

    #[test]
    fn schedules_are_byte_identical_across_runs() {
        let run = |seed: u64| {
            let (p, mut q) = pair();
            let plan = FaultPlan::new(seed)
                .with(FaultSpec::new(FaultKind::Drop, FaultSite::Send).rate(20_000).budget(3))
                .with(FaultSpec::new(FaultKind::Duplicate, FaultSite::Send).rate(20_000).budget(3));
            let mut p = FaultyTransport::new(p, &plan);
            for i in 0..32 {
                p.send(&r("q"), &l("m"), &Value::Nat(i)).unwrap();
            }
            let mut received = Vec::new();
            while let Some(msg) = q.try_recv(&r("p")).unwrap() {
                received.push(msg);
            }
            (format!("{:?}", p.schedule()), received)
        };
        let (sched_a, recv_a) = run(99);
        let (sched_b, recv_b) = run(99);
        let (sched_c, _) = run(100);
        assert_eq!(sched_a.as_bytes(), sched_b.as_bytes());
        assert_eq!(recv_a, recv_b);
        assert_ne!(sched_a, sched_c, "different seeds must differ");
        assert!(!sched_a.is_empty());
    }

    fn framed(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = BytesMut::new();
        for p in payloads {
            put_frame(&mut out, p, 1 << 20).unwrap();
        }
        out.to_vec()
    }

    #[test]
    fn fault_reader_passthrough_without_specs() {
        let bytes = framed(&[b"hello", b"world"]);
        let mut reader = FaultReader::new(1 << 20, 1);
        reader.extend(&bytes);
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"hello");
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"world");
        assert_eq!(reader.next_frame().unwrap(), None);
        assert!(reader.schedule().is_empty());
    }

    #[test]
    fn fault_reader_bit_flip_corrupts_payload() {
        let payload = vec![0u8; 64];
        let bytes = framed(&[&payload]);
        // Skip flipping header bytes by trying seeds until the flip lands in
        // the body; with a 64-byte body vs 4 header bytes most seeds do.
        for seed in 0..16u64 {
            let mut reader = FaultReader::new(1 << 20, seed).with(WireFault::BitFlip, 65_536, 1);
            reader.extend(&bytes);
            match reader.next_frame() {
                Ok(Some(frame)) => {
                    if frame != payload {
                        assert_eq!(reader.schedule().len(), 1);
                        return; // corruption observed below the codec
                    }
                }
                Ok(None) | Err(_) => return, // header flip: also a corruption
            }
        }
        panic!("bit flip never corrupted the stream");
    }

    #[test]
    fn fault_reader_split_is_behavioral_noop() {
        let bytes = framed(&[b"alpha", b"beta", b"gamma"]);
        let mut reader = FaultReader::new(1 << 20, 7).with(WireFault::Split, 65_536, 8);
        // Deliver in small chunks so splits interleave with partial frames.
        for chunk in bytes.chunks(5) {
            reader.extend(chunk);
        }
        let mut frames = Vec::new();
        while let Some(frame) = reader.next_frame().unwrap() {
            frames.push(frame);
        }
        assert_eq!(frames, vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()]);
        assert!(!reader.schedule().is_empty());
    }

    #[test]
    fn fault_reader_hostile_length_poisons_not_allocates() {
        let bytes = framed(&[b"payload"]);
        let mut reader = FaultReader::new(1 << 20, 3).with(WireFault::HostileLength, 65_536, 1);
        reader.extend(&bytes);
        match reader.next_frame() {
            Err(RuntimeError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1 << 20);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // Poisoning is permanent.
        assert!(matches!(
            reader.next_frame(),
            Err(RuntimeError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn fault_reader_truncate_leaves_partial_frame() {
        let bytes = framed(&[b"a-rather-long-payload-so-the-tail-matters"]);
        let mut reader = FaultReader::new(1 << 20, 11).with(WireFault::TruncateTail, 65_536, 1);
        reader.extend(&bytes);
        // The frame can never complete: bytes were lost mid-frame.
        assert_eq!(reader.next_frame().unwrap(), None);
        assert!(reader.pending_bytes() < bytes.len());
        assert_eq!(reader.schedule().len(), 1);
    }

    #[test]
    fn fault_reader_schedule_is_deterministic() {
        let bytes = framed(&[b"one", b"two", b"three", b"four"]);
        let run = |seed: u64| {
            let mut reader = FaultReader::new(1 << 20, seed)
                .with(WireFault::Split, 30_000, 4)
                .with(WireFault::BitFlip, 10_000, 2);
            for chunk in bytes.chunks(3) {
                reader.extend(chunk);
            }
            format!("{:?}", reader.schedule())
        };
        assert_eq!(run(5).as_bytes(), run(5).as_bytes());
    }
}
