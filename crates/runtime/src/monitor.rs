//! Online protocol-compliance monitoring.
//!
//! The paper motivates type-level transition systems with, among other
//! things, "dynamic monitoring of components in distributed systems" (§1).
//! This module provides two interchangeable monitors:
//!
//! * a [`TraceMonitor`] holds the global type's semantic tree and an
//!   execution prefix, and replays every observed action through the global
//!   LTS (Definition 3.13) — the direct transcription of the paper, and the
//!   reference implementation;
//! * a [`CompiledMonitor`] checks the same actions against the dense
//!   per-role transition tables of a [`CompiledSystem`]
//!   ([`zooid_cfsm::MonitorCursor`]): each observation resolves its roles,
//!   label and sort to interned ids once and then compares only `u32`s —
//!   O(1) per action, no boxed-tree replay. Compiling the system is
//!   amortised across every session of a protocol, which is what the
//!   `zooid-server` session server relies on.
//!
//! Both monitors record disallowed actions as structured
//! [`MonitorViolation`]s and leave their state unchanged on a violation, so
//! subsequent compliant actions are still recognised; the differential
//! test-suite checks they accept/reject identically on every observed
//! action.

use std::fmt;
use std::sync::Arc;

use zooid_cfsm::{CompiledSystem, InternedAction, MonitorCursor};
use zooid_mpst::global::{global_step, unravel_global, GlobalPrefix, GlobalTree, GlobalType};
use zooid_mpst::{Action, Trace};

use crate::error::Result;

/// One observed action that the protocol does not allow, as recorded by a
/// monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorViolation {
    /// The offending action.
    pub action: Action,
    /// Zero-based index of the action in the full observation stream
    /// (compliant and violating actions both advance the position).
    pub position: usize,
    /// Length of the compliant trace accepted so far when the violation was
    /// observed.
    pub trace_len: usize,
}

impl fmt::Display for MonitorViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "action {} is not allowed by the protocol at observation {} (after {} compliant actions)",
            self.action, self.position, self.trace_len
        )
    }
}

/// An online monitor replaying observed actions against a global protocol.
#[derive(Debug, Clone)]
pub struct TraceMonitor {
    tree: GlobalTree,
    prefix: GlobalPrefix,
    trace: Trace,
    violations: Vec<MonitorViolation>,
    observed: usize,
}

impl TraceMonitor {
    /// Creates a monitor for the given protocol.
    ///
    /// # Errors
    ///
    /// Fails if the protocol is ill-formed.
    pub fn new(global: &GlobalType) -> Result<Self> {
        let tree = unravel_global(global).map_err(zooid_proc::ProcError::from)?;
        let prefix = GlobalPrefix::initial(&tree);
        Ok(TraceMonitor {
            tree,
            prefix,
            trace: Trace::empty(),
            violations: Vec::new(),
            observed: 0,
        })
    }

    /// Feeds one observed action to the monitor.
    ///
    /// Returns `true` if the protocol allows the action in the current
    /// state; otherwise the action is recorded as a violation (and the
    /// monitor's state is left unchanged, so subsequent compliant actions
    /// are still recognised).
    pub fn observe(&mut self, action: &Action) -> bool {
        let position = self.observed;
        self.observed += 1;
        match global_step(&self.tree, &self.prefix, action) {
            Some(next) => {
                self.prefix = next;
                self.trace.push(action.clone());
                true
            }
            None => {
                self.violations.push(MonitorViolation {
                    action: action.clone(),
                    position,
                    trace_len: self.trace.len(),
                });
                false
            }
        }
    }

    /// The compliant part of the observed trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The violations observed so far.
    pub fn violations(&self) -> &[MonitorViolation] {
        &self.violations
    }

    /// Returns `true` if no violation has been observed.
    pub fn is_compliant(&self) -> bool {
        self.violations.is_empty()
    }

    /// Returns `true` if the protocol has run to completion (every exchange
    /// performed and delivered).
    pub fn is_complete(&self) -> bool {
        self.prefix.is_terminated(&self.tree)
    }
}

/// An online monitor checking observed actions against the compiled per-role
/// transition tables of a [`CompiledSystem`].
///
/// Behaviourally identical to [`TraceMonitor`] on projectable protocols
/// (checked by the differential suite), but each observation costs one
/// interned-id lookup per component plus a scan of the subject's (tiny)
/// out-transition list — instead of replaying the boxed global LTS. The
/// compiled system is shared (`Arc`), so a server hosting thousands of
/// sessions of one protocol compiles it exactly once.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use zooid_cfsm::System;
/// use zooid_mpst::{generators, Action, Label, Role, Sort};
/// use zooid_runtime::monitor::CompiledMonitor;
///
/// let g = generators::ring_n(3);
/// let compiled = Arc::new(System::from_global(&g).unwrap().compile());
/// let mut monitor = CompiledMonitor::new(compiled);
/// let send = Action::send(Role::new("w0"), Role::new("w1"), Label::new("l"), Sort::Nat);
/// assert!(monitor.observe(&send));
/// assert!(monitor.is_compliant());
/// ```
#[derive(Debug, Clone)]
pub struct CompiledMonitor {
    system: Arc<CompiledSystem>,
    cursor: MonitorCursor,
    trace: Trace,
    /// Number of compliant actions accepted so far. Tracked separately from
    /// `trace` so switching trace recording off does not change the
    /// `trace_len` recorded in violations.
    accepted: usize,
    record_trace: bool,
    violations: Vec<MonitorViolation>,
    observed: usize,
}

impl CompiledMonitor {
    /// Creates a monitor over an already-compiled system.
    pub fn new(system: Arc<CompiledSystem>) -> Self {
        let cursor = system.monitor_cursor();
        CompiledMonitor {
            system,
            cursor,
            trace: Trace::empty(),
            accepted: 0,
            record_trace: true,
            violations: Vec::new(),
            observed: 0,
        }
    }

    /// Rebuilds a monitor from previously extracted state: the cursor, the
    /// compliant trace, the accepted/observed counters and the violations
    /// recorded so far. This is how a session demoted out of the columnar
    /// batch executor hands its monitoring state to a per-session monitor
    /// without losing a single observation.
    pub fn resume(
        system: Arc<CompiledSystem>,
        cursor: MonitorCursor,
        trace: Trace,
        accepted: usize,
        violations: Vec<MonitorViolation>,
        observed: usize,
        record_trace: bool,
    ) -> Self {
        CompiledMonitor {
            system,
            cursor,
            trace,
            accepted,
            record_trace,
            violations,
            observed,
        }
    }

    /// Switches recording of the compliant trace on or off (default: on).
    ///
    /// Fire-and-forget workloads that only need the compliance verdict turn
    /// it off: acceptance checking, violation recording and
    /// [`CompiledMonitor::is_complete`] are unaffected — only
    /// [`CompiledMonitor::trace`] stays empty.
    pub fn set_record_trace(&mut self, record: bool) {
        self.record_trace = record;
    }

    /// Convenience constructor for one-off use: projects the global type,
    /// compiles the system of its machines, and monitors against it.
    ///
    /// # Errors
    ///
    /// Fails if the protocol is ill-formed or not projectable.
    pub fn for_global(global: &GlobalType) -> std::result::Result<Self, zooid_cfsm::CfsmError> {
        let system = zooid_cfsm::System::from_global(global)?;
        Ok(CompiledMonitor::new(Arc::new(system.compile())))
    }

    /// Feeds one observed action to the monitor. Same contract as
    /// [`TraceMonitor::observe`].
    pub fn observe(&mut self, action: &Action) -> bool {
        let accepted = self.system.observe(&mut self.cursor, action);
        self.record(|| action.clone(), accepted);
        accepted
    }

    /// Feeds one action that was pre-resolved against this monitor's
    /// [`CompiledSystem`] (see [`zooid_cfsm::CompiledSystem::intern_action`]).
    ///
    /// Behaviourally identical to [`CompiledMonitor::observe`] on the same
    /// action, but the per-observation role/label/sort hash lookups are
    /// gone: the compiled endpoint executor resolves each send/receive site
    /// once and replays the interned form on every visit — this is what
    /// makes the serving data plane's monitoring string-free.
    ///
    /// `action` must build the [`Action`] `interned` denotes; it is only
    /// called when something records it (the compliant trace when trace
    /// recording is on, or a violation), so the fire-and-forget path never
    /// materialises it at all.
    pub fn observe_interned(
        &mut self,
        interned: &InternedAction,
        action: impl FnOnce() -> Action,
    ) -> bool {
        let accepted = self.system.observe_interned(&mut self.cursor, interned);
        self.record(action, accepted);
        accepted
    }

    fn record(&mut self, action: impl FnOnce() -> Action, accepted: bool) {
        let position = self.observed;
        self.observed += 1;
        if accepted {
            self.accepted += 1;
            if self.record_trace {
                self.trace.push(action());
            }
        } else {
            self.violations.push(MonitorViolation {
                action: action(),
                position,
                trace_len: self.accepted,
            });
        }
    }

    /// Moves the recorded compliant trace out of the monitor (used when the
    /// monitor is being torn down into a report — no clone).
    pub fn take_trace(&mut self) -> Trace {
        std::mem::replace(&mut self.trace, Trace::empty())
    }

    /// Moves the recorded violations out of the monitor.
    pub fn take_violations(&mut self) -> Vec<MonitorViolation> {
        std::mem::take(&mut self.violations)
    }

    /// The compliant part of the observed trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The violations observed so far.
    pub fn violations(&self) -> &[MonitorViolation] {
        &self.violations
    }

    /// Returns `true` if no violation has been observed.
    pub fn is_compliant(&self) -> bool {
        self.violations.is_empty()
    }

    /// Returns `true` if the protocol has run to completion (every machine
    /// in a final state and every channel drained).
    pub fn is_complete(&self) -> bool {
        self.system.is_terminated(&self.cursor)
    }

    /// The monitor's current cursor (the exact product state + channel
    /// contents reached by the compliant observations so far). Incident
    /// capture snapshots this next to the violating action so the
    /// counterexample is replayable offline.
    pub fn cursor(&self) -> &MonitorCursor {
        &self.cursor
    }

    /// The compiled system this monitor observes against.
    pub fn system(&self) -> &Arc<CompiledSystem> {
        &self.system
    }

    /// How many observed actions the monitor has accepted so far. Together
    /// with [`CompiledMonitor::observed`] this is the resumable position a
    /// checkpoint must carry for [`CompiledMonitor::resume`].
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// How many actions the monitor has observed in total (accepted plus
    /// rejected).
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Whether the compliant trace is being recorded (see
    /// [`CompiledMonitor::set_record_trace`]).
    pub fn records_trace(&self) -> bool {
        self.record_trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_mpst::{Label, Role, Sort};

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn ring() -> GlobalType {
        GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(
                r("Bob"),
                r("Carol"),
                "l",
                Sort::Nat,
                GlobalType::msg1(r("Carol"), r("Alice"), "l", Sort::Nat, GlobalType::End),
            ),
        )
    }

    #[test]
    fn a_compliant_run_is_accepted_and_completes() {
        let mut monitor = TraceMonitor::new(&ring()).unwrap();
        for (from, to) in [("Alice", "Bob"), ("Bob", "Carol"), ("Carol", "Alice")] {
            let send = Action::send(r(from), r(to), Label::new("l"), Sort::Nat);
            assert!(monitor.observe(&send));
            assert!(monitor.observe(&send.dual()));
        }
        assert!(monitor.is_compliant());
        assert!(monitor.is_complete());
        assert_eq!(monitor.trace().len(), 6);
        assert!(monitor.violations().is_empty());
    }

    #[test]
    fn out_of_order_actions_are_violations() {
        let mut monitor = TraceMonitor::new(&ring()).unwrap();
        // Bob tries to forward before receiving from Alice.
        let premature = Action::send(r("Bob"), r("Carol"), Label::new("l"), Sort::Nat);
        assert!(!monitor.observe(&premature));
        assert!(!monitor.is_compliant());
        assert_eq!(monitor.violations().len(), 1);
        assert_eq!(monitor.violations()[0].action, premature);
        assert_eq!(monitor.violations()[0].position, 0);
        assert_eq!(monitor.violations()[0].trace_len, 0);
        // The monitor keeps working for the legitimate continuation.
        let first = Action::send(r("Alice"), r("Bob"), Label::new("l"), Sort::Nat);
        assert!(monitor.observe(&first));
    }

    #[test]
    fn wrong_labels_and_sorts_are_violations() {
        let mut monitor = TraceMonitor::new(&ring()).unwrap();
        let wrong_label = Action::send(r("Alice"), r("Bob"), Label::new("zzz"), Sort::Nat);
        let wrong_sort = Action::send(r("Alice"), r("Bob"), Label::new("l"), Sort::Bool);
        assert!(!monitor.observe(&wrong_label));
        assert!(!monitor.observe(&wrong_sort));
        assert_eq!(monitor.violations().len(), 2);
        // Positions advance with every observation, compliant or not.
        assert_eq!(monitor.violations()[1].position, 1);
        assert!(!monitor.is_complete());
    }

    #[test]
    fn ill_formed_protocols_are_rejected() {
        let bad = GlobalType::rec(GlobalType::var(0));
        assert!(TraceMonitor::new(&bad).is_err());
    }

    #[test]
    fn the_compiled_monitor_mirrors_the_trace_monitor_verdicts() {
        let g = ring();
        let mut reference = TraceMonitor::new(&g).unwrap();
        let mut compiled = CompiledMonitor::for_global(&g).unwrap();
        let stream = [
            // A violation, then the full compliant run, then a trailing
            // violation once the protocol is over.
            Action::send(r("Bob"), r("Carol"), Label::new("l"), Sort::Nat),
            Action::send(r("Alice"), r("Bob"), Label::new("l"), Sort::Nat),
            Action::recv(r("Bob"), r("Alice"), Label::new("l"), Sort::Nat),
            Action::send(r("Bob"), r("Carol"), Label::new("l"), Sort::Nat),
            Action::recv(r("Carol"), r("Bob"), Label::new("l"), Sort::Nat),
            Action::send(r("Carol"), r("Alice"), Label::new("l"), Sort::Nat),
            Action::recv(r("Alice"), r("Carol"), Label::new("l"), Sort::Nat),
            Action::send(r("Alice"), r("Bob"), Label::new("l"), Sort::Nat),
        ];
        for action in &stream {
            assert_eq!(
                reference.observe(action),
                compiled.observe(action),
                "monitors disagree on {action}"
            );
        }
        assert_eq!(reference.trace(), compiled.trace());
        assert_eq!(reference.violations(), compiled.violations());
        assert_eq!(reference.is_complete(), compiled.is_complete());
        assert!(compiled.is_complete());
    }

    #[test]
    fn compiled_monitor_allows_asynchronous_interleavings() {
        // Both sends may race ahead of the matching receives.
        let g = GlobalType::msg1(
            r("p"),
            r("q"),
            "a",
            Sort::Nat,
            GlobalType::msg1(r("q"), r("p"), "b", Sort::Nat, GlobalType::End),
        );
        let mut monitor = CompiledMonitor::for_global(&g).unwrap();
        let a = Action::send(r("p"), r("q"), Label::new("a"), Sort::Nat);
        let b = Action::send(r("q"), r("p"), Label::new("b"), Sort::Nat);
        assert!(monitor.observe(&a));
        assert!(monitor.observe(&a.dual()));
        assert!(monitor.observe(&b));
        // The receive of `b` is still pending: complete only after it lands.
        assert!(!monitor.is_complete());
        assert!(monitor.observe(&b.dual()));
        assert!(monitor.is_complete());
        assert!(monitor.is_compliant());
    }

    #[test]
    fn violations_render_with_position_information() {
        let v = MonitorViolation {
            action: Action::send(r("p"), r("q"), Label::new("l"), Sort::Nat),
            position: 4,
            trace_len: 3,
        };
        let msg = v.to_string();
        assert!(msg.contains("!pq(l, nat)"), "{msg}");
        assert!(msg.contains("observation 4"), "{msg}");
        assert!(msg.contains("3 compliant actions"), "{msg}");
    }
}
