//! Online protocol-compliance monitoring.
//!
//! The paper motivates type-level transition systems with, among other
//! things, "dynamic monitoring of components in distributed systems" (§1).
//! A [`TraceMonitor`] is exactly that: it holds the global type's semantic
//! tree and an execution prefix, and replays every observed action through
//! the global LTS (Definition 3.13). Actions the protocol does not allow are
//! recorded as violations; a system whose every communication passes through
//! the monitor therefore gets its protocol compliance checked at run time.

use zooid_mpst::global::{global_step, unravel_global, GlobalPrefix, GlobalTree, GlobalType};
use zooid_mpst::{Action, Trace};

use crate::error::Result;

/// An online monitor replaying observed actions against a global protocol.
#[derive(Debug, Clone)]
pub struct TraceMonitor {
    tree: GlobalTree,
    prefix: GlobalPrefix,
    trace: Trace,
    violations: Vec<String>,
}

impl TraceMonitor {
    /// Creates a monitor for the given protocol.
    ///
    /// # Errors
    ///
    /// Fails if the protocol is ill-formed.
    pub fn new(global: &GlobalType) -> Result<Self> {
        let tree = unravel_global(global).map_err(zooid_proc::ProcError::from)?;
        let prefix = GlobalPrefix::initial(&tree);
        Ok(TraceMonitor {
            tree,
            prefix,
            trace: Trace::empty(),
            violations: Vec::new(),
        })
    }

    /// Feeds one observed action to the monitor.
    ///
    /// Returns `true` if the protocol allows the action in the current
    /// state; otherwise the action is recorded as a violation (and the
    /// monitor's state is left unchanged, so subsequent compliant actions
    /// are still recognised).
    pub fn observe(&mut self, action: &Action) -> bool {
        match global_step(&self.tree, &self.prefix, action) {
            Some(next) => {
                self.prefix = next;
                self.trace.push(action.clone());
                true
            }
            None => {
                self.violations.push(format!(
                    "action {action} is not allowed by the protocol after {}",
                    self.trace
                ));
                false
            }
        }
    }

    /// The compliant part of the observed trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The violations observed so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Returns `true` if no violation has been observed.
    pub fn is_compliant(&self) -> bool {
        self.violations.is_empty()
    }

    /// Returns `true` if the protocol has run to completion (every exchange
    /// performed and delivered).
    pub fn is_complete(&self) -> bool {
        self.prefix.is_terminated(&self.tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_mpst::{Label, Role, Sort};

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn ring() -> GlobalType {
        GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(
                r("Bob"),
                r("Carol"),
                "l",
                Sort::Nat,
                GlobalType::msg1(r("Carol"), r("Alice"), "l", Sort::Nat, GlobalType::End),
            ),
        )
    }

    #[test]
    fn a_compliant_run_is_accepted_and_completes() {
        let mut monitor = TraceMonitor::new(&ring()).unwrap();
        for (from, to) in [("Alice", "Bob"), ("Bob", "Carol"), ("Carol", "Alice")] {
            let send = Action::send(r(from), r(to), Label::new("l"), Sort::Nat);
            assert!(monitor.observe(&send));
            assert!(monitor.observe(&send.dual()));
        }
        assert!(monitor.is_compliant());
        assert!(monitor.is_complete());
        assert_eq!(monitor.trace().len(), 6);
        assert!(monitor.violations().is_empty());
    }

    #[test]
    fn out_of_order_actions_are_violations() {
        let mut monitor = TraceMonitor::new(&ring()).unwrap();
        // Bob tries to forward before receiving from Alice.
        let premature = Action::send(r("Bob"), r("Carol"), Label::new("l"), Sort::Nat);
        assert!(!monitor.observe(&premature));
        assert!(!monitor.is_compliant());
        assert_eq!(monitor.violations().len(), 1);
        // The monitor keeps working for the legitimate continuation.
        let first = Action::send(r("Alice"), r("Bob"), Label::new("l"), Sort::Nat);
        assert!(monitor.observe(&first));
    }

    #[test]
    fn wrong_labels_and_sorts_are_violations() {
        let mut monitor = TraceMonitor::new(&ring()).unwrap();
        let wrong_label = Action::send(r("Alice"), r("Bob"), Label::new("zzz"), Sort::Nat);
        let wrong_sort = Action::send(r("Alice"), r("Bob"), Label::new("l"), Sort::Bool);
        assert!(!monitor.observe(&wrong_label));
        assert!(!monitor.observe(&wrong_sort));
        assert_eq!(monitor.violations().len(), 2);
        assert!(!monitor.is_complete());
    }

    #[test]
    fn ill_formed_protocols_are_rejected() {
        let bad = GlobalType::rec(GlobalType::var(0));
        assert!(TraceMonitor::new(&bad).is_err());
    }
}
