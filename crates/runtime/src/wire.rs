//! Framing for the networked serving plane: an incremental length-prefixed
//! frame reader and the session-multiplexing control frames.
//!
//! # Wire format
//!
//! Every frame on a socket is `u32` big-endian length `n`, followed by `n`
//! payload bytes. Two payload vocabularies ride on this framing:
//!
//! * **peer-to-peer messages** ([`crate::codec`]): label + value, used by
//!   [`crate::tcp::TcpTransport`] between session endpoints;
//! * **multiplexing frames** ([`MuxFrame`]): a one-byte tag, a `u64` session
//!   id, and tag-specific fields, used between a client and the
//!   `zooid-server` networked serving plane to open sessions, accept or
//!   reject them, and stream back completions. Many sessions share one
//!   connection; frames for different sessions interleave freely.
//!
//! # Bounded buffering
//!
//! The length header is validated against a configurable `max_frame_bytes`
//! cap **before any body byte is buffered**: a hostile 4 GiB length prefix
//! yields [`RuntimeError::FrameTooLarge`] from 4 bytes of input, never an
//! allocation. [`FrameReader`] owns the partial-frame buffer, so callers can
//! interleave non-blocking reads across many sockets and resume a
//! half-received frame later — the readiness-polling loop in
//! [`crate::poll`] depends on this.

use bytes::{BufMut, BytesMut};
use std::io::Read;

use crate::codec::{get_str, get_u32, get_u64, get_u8, get_value, put_str, put_value};
use crate::error::{Result, RuntimeError};
use zooid_proc::Value;

/// Default cap on a single frame's payload: 16 MiB.
///
/// Generous for any value the codec produces in practice, small enough that
/// a hostile length prefix cannot make the receiver allocate unbounded
/// memory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// How many bytes one `fill` call may pull off a socket before yielding
/// back to the caller, so a single chatty connection cannot starve the
/// others in an event loop iteration.
const MAX_READ_PER_FILL: usize = 64 * 1024;

/// What one non-blocking pump of a [`FrameReader`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillStatus {
    /// The peer has closed its write side; no further bytes will arrive.
    Eof,
    /// The socket had no bytes ready (`WouldBlock`).
    WouldBlock,
    /// Some bytes were buffered (complete frames may now be available).
    Progress,
}

/// An incremental parser for length-prefixed frames.
///
/// Feed it bytes — either directly ([`FrameReader::extend`]) or by pumping a
/// non-blocking reader ([`FrameReader::fill`]) — and pop complete payloads
/// with [`FrameReader::next_frame`]. Partial frames persist across calls;
/// oversized length headers fail fast without buffering the body.
#[derive(Debug)]
pub struct FrameReader {
    buf: BytesMut,
    max_frame_bytes: usize,
    /// Set once a header above the cap has been seen: the stream is
    /// unrecoverable from that point (we refuse to resynchronise inside
    /// attacker-controlled bytes), so every later call re-reports the error.
    poisoned: Option<(usize, usize)>,
}

impl FrameReader {
    /// Creates a reader enforcing the given per-frame payload cap.
    pub fn new(max_frame_bytes: usize) -> Self {
        FrameReader {
            buf: BytesMut::new(),
            max_frame_bytes,
            poisoned: None,
        }
    }

    /// The configured per-frame payload cap.
    pub fn max_frame_bytes(&self) -> usize {
        self.max_frame_bytes
    }

    /// Changes the per-frame payload cap in place, keeping any buffered
    /// partial frame. The new cap applies from the next header check.
    pub fn set_max_frame_bytes(&mut self, max: usize) {
        self.max_frame_bytes = max;
    }

    /// Number of buffered bytes not yet consumed as complete frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Appends raw bytes to the internal buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pumps up to [`MAX_READ_PER_FILL`] bytes from a non-blocking reader
    /// into the buffer.
    ///
    /// Returns what stopped the pump: end-of-stream, an empty socket, or a
    /// successful partial read. `Interrupted` is retried internally.
    ///
    /// # Errors
    ///
    /// Propagates genuine I/O errors (connection reset, ...) as
    /// [`RuntimeError::Io`].
    pub fn fill(&mut self, reader: &mut impl Read) -> Result<FillStatus> {
        let mut chunk = [0u8; 4096];
        let mut total = 0usize;
        loop {
            if total >= MAX_READ_PER_FILL {
                return Ok(FillStatus::Progress);
            }
            match reader.read(&mut chunk) {
                Ok(0) => return Ok(FillStatus::Eof),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    total += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(if total == 0 {
                        FillStatus::WouldBlock
                    } else {
                        FillStatus::Progress
                    });
                }
                Err(e) => return Err(RuntimeError::Io(e)),
            }
        }
    }

    /// Pops the next complete frame payload, if the buffer holds one.
    ///
    /// `Ok(None)` means "not enough bytes yet" — call again after feeding
    /// more input.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::FrameTooLarge`] as soon as a 4-byte header announces
    /// a payload above the cap; the reader stays poisoned and keeps
    /// returning the error (a framing stream cannot be resynchronised after
    /// a bad header).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if let Some((len, max)) = self.poisoned {
            return Err(RuntimeError::FrameTooLarge { len, max });
        }
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > self.max_frame_bytes {
            self.poisoned = Some((len, self.max_frame_bytes));
            return Err(RuntimeError::FrameTooLarge {
                len,
                max: self.max_frame_bytes,
            });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let _ = self.buf.split_to(4);
        Ok(Some(self.buf.split_to(len).to_vec()))
    }
}

/// Encodes one frame (length prefix + payload) into an output buffer.
///
/// # Errors
///
/// [`RuntimeError::FrameTooLarge`] if the payload exceeds `max_frame_bytes`
/// — the sender enforces the same cap the receiver does, so a compliant
/// peer can never trip the receiver's guard.
pub fn put_frame(out: &mut BytesMut, payload: &[u8], max_frame_bytes: usize) -> Result<()> {
    if payload.len() > max_frame_bytes {
        return Err(RuntimeError::FrameTooLarge {
            len: payload.len(),
            max: max_frame_bytes,
        });
    }
    // The cap is usize-valued and caps above 4 GiB are constructible, so
    // the length must be checked against the prefix width too — a silently
    // truncated prefix would corrupt the whole stream.
    let len = u32::try_from(payload.len()).map_err(|_| RuntimeError::FrameTooLarge {
        len: payload.len(),
        max: u32::MAX as usize,
    })?;
    out.put_u32(len);
    out.put_slice(payload);
    Ok(())
}

/// Why the serving plane refused an `Open` (or the whole connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectCode {
    /// The requested protocol name is not in the server's service catalog.
    UnknownProtocol = 1,
    /// The server is at its connection limit; try again later.
    ConnectionLimit = 2,
    /// This connection is at its per-connection in-flight session cap.
    SessionLimit = 3,
    /// The server as a whole is at its global in-flight cap (load shed).
    Overloaded = 4,
    /// The frame was malformed; the connection will be closed.
    BadFrame = 5,
    /// The server is shutting down.
    ShuttingDown = 6,
    /// A session hosted on this connection was quarantined (its monitor
    /// rejected an action) and the server's policy tears the owning
    /// connection down.
    Quarantined = 7,
    /// The connection accumulated too many byzantine strikes (quarantined
    /// sessions) and further `Open`s from it are refused.
    Banned = 8,
}

impl RejectCode {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => RejectCode::UnknownProtocol,
            2 => RejectCode::ConnectionLimit,
            3 => RejectCode::SessionLimit,
            4 => RejectCode::Overloaded,
            5 => RejectCode::BadFrame,
            6 => RejectCode::ShuttingDown,
            7 => RejectCode::Quarantined,
            8 => RejectCode::Banned,
            _ => return None,
        })
    }
}

impl std::fmt::Display for RejectCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RejectCode::UnknownProtocol => "unknown-protocol",
            RejectCode::ConnectionLimit => "connection-limit",
            RejectCode::SessionLimit => "session-limit",
            RejectCode::Overloaded => "overloaded",
            RejectCode::BadFrame => "bad-frame",
            RejectCode::ShuttingDown => "shutting-down",
            RejectCode::Quarantined => "quarantined",
            RejectCode::Banned => "banned",
        };
        f.write_str(s)
    }
}

/// A control frame on a multiplexed serving-plane connection.
///
/// The `session` id is chosen by the client and scoped to its connection;
/// the server echoes it on every frame about that session, which is what
/// lets many sessions share one socket with out-of-order completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MuxFrame {
    /// Client → server: start a session of the named service protocol.
    Open {
        /// Client-chosen id, echoed on all responses.
        session: u64,
        /// Service catalog key (a registered protocol name).
        protocol: String,
    },
    /// Server → client: the session was admitted and scheduled.
    Accepted {
        /// The id from the `Open`.
        session: u64,
    },
    /// Server → client: the session (or connection) was refused.
    Rejected {
        /// The id from the `Open` (0 for connection-level rejections).
        session: u64,
        /// Machine-readable reason.
        code: RejectCode,
        /// Human-readable detail.
        reason: String,
    },
    /// Server → client: the session ran to an outcome.
    Done {
        /// The id from the `Open`.
        session: u64,
        /// Every endpoint trace satisfied its monitor.
        compliant: bool,
        /// The global protocol ran to completion.
        complete: bool,
        /// At least one endpoint stalled waiting on a peer.
        stalled: bool,
        /// Number of monitor violations recorded.
        violations: u32,
        /// Total value-level actions across all endpoints.
        actions: u64,
    },
    /// Client → server: request a live stats snapshot (reports, histogram
    /// percentiles, recent incidents). Read-only introspection — no session
    /// is opened; the `session` id is a client-chosen request correlator.
    Stats {
        /// Client-chosen id, echoed on the reply.
        session: u64,
    },
    /// Server → client: the stats snapshot, as a self-describing codec
    /// [`Value`] (the server crate defines the record layout).
    StatsReply {
        /// The id from the `Stats` request.
        session: u64,
        /// The snapshot, codec-encoded.
        stats: Value,
    },
}

const MUX_OPEN: u8 = 1;
const MUX_ACCEPTED: u8 = 2;
const MUX_REJECTED: u8 = 3;
const MUX_DONE: u8 = 4;
const MUX_STATS: u8 = 5;
const MUX_STATS_REPLY: u8 = 6;

const DONE_COMPLIANT: u8 = 1;
const DONE_COMPLETE: u8 = 2;
const DONE_STALLED: u8 = 4;

/// Encodes a multiplexing frame payload (no length prefix — see
/// [`put_frame`]).
pub fn encode_mux(frame: &MuxFrame) -> Vec<u8> {
    let mut buf = BytesMut::new();
    match frame {
        MuxFrame::Open { session, protocol } => {
            buf.put_u8(MUX_OPEN);
            buf.put_u64(*session);
            put_str(&mut buf, protocol);
        }
        MuxFrame::Accepted { session } => {
            buf.put_u8(MUX_ACCEPTED);
            buf.put_u64(*session);
        }
        MuxFrame::Rejected {
            session,
            code,
            reason,
        } => {
            buf.put_u8(MUX_REJECTED);
            buf.put_u64(*session);
            buf.put_u8(*code as u8);
            put_str(&mut buf, reason);
        }
        MuxFrame::Done {
            session,
            compliant,
            complete,
            stalled,
            violations,
            actions,
        } => {
            buf.put_u8(MUX_DONE);
            buf.put_u64(*session);
            let mut flags = 0u8;
            if *compliant {
                flags |= DONE_COMPLIANT;
            }
            if *complete {
                flags |= DONE_COMPLETE;
            }
            if *stalled {
                flags |= DONE_STALLED;
            }
            buf.put_u8(flags);
            buf.put_u32(*violations);
            buf.put_u64(*actions);
        }
        MuxFrame::Stats { session } => {
            buf.put_u8(MUX_STATS);
            buf.put_u64(*session);
        }
        MuxFrame::StatsReply { session, stats } => {
            buf.put_u8(MUX_STATS_REPLY);
            buf.put_u64(*session);
            put_value(&mut buf, stats);
        }
    }
    buf.to_vec()
}

/// Decodes a multiplexing frame payload.
///
/// # Errors
///
/// [`RuntimeError::Codec`] on unknown tags, unknown reject codes, truncated
/// fields or trailing bytes.
pub fn decode_mux(mut bytes: &[u8]) -> Result<MuxFrame> {
    let tag = get_u8(&mut bytes)?;
    let session = get_u64(&mut bytes)?;
    let frame = match tag {
        MUX_OPEN => MuxFrame::Open {
            session,
            protocol: get_str(&mut bytes)?,
        },
        MUX_ACCEPTED => MuxFrame::Accepted { session },
        MUX_REJECTED => {
            let raw = get_u8(&mut bytes)?;
            let code = RejectCode::from_u8(raw).ok_or_else(|| RuntimeError::Codec {
                reason: format!("unknown reject code {raw}"),
            })?;
            MuxFrame::Rejected {
                session,
                code,
                reason: get_str(&mut bytes)?,
            }
        }
        MUX_DONE => {
            let flags = get_u8(&mut bytes)?;
            let violations = get_u32(&mut bytes)?;
            let actions = get_u64(&mut bytes)?;
            MuxFrame::Done {
                session,
                compliant: flags & DONE_COMPLIANT != 0,
                complete: flags & DONE_COMPLETE != 0,
                stalled: flags & DONE_STALLED != 0,
                violations,
                actions,
            }
        }
        MUX_STATS => MuxFrame::Stats { session },
        MUX_STATS_REPLY => MuxFrame::StatsReply {
            session,
            stats: get_value(&mut bytes)?,
        },
        other => {
            return Err(RuntimeError::Codec {
                reason: format!("unknown mux frame tag {other}"),
            })
        }
    };
    if !bytes.is_empty() {
        return Err(RuntimeError::Codec {
            reason: format!("{} trailing bytes after the mux frame", bytes.len()),
        });
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mux_cases() -> Vec<MuxFrame> {
        vec![
            MuxFrame::Open {
                session: 7,
                protocol: "two_buyer".into(),
            },
            MuxFrame::Accepted { session: u64::MAX },
            MuxFrame::Rejected {
                session: 0,
                code: RejectCode::Overloaded,
                reason: "global in-flight cap reached".into(),
            },
            MuxFrame::Done {
                session: 42,
                compliant: true,
                complete: false,
                stalled: true,
                violations: 3,
                actions: 1234,
            },
            MuxFrame::Stats { session: 9 },
            MuxFrame::StatsReply {
                session: 9,
                stats: Value::pair(
                    Value::Str("sessions_done".into()),
                    Value::Seq(vec![Value::Nat(17), Value::Bool(true)]),
                ),
            },
        ]
    }

    #[test]
    fn mux_frames_round_trip() {
        for frame in mux_cases() {
            let encoded = encode_mux(&frame);
            assert_eq!(decode_mux(&encoded).unwrap(), frame, "{frame:?}");
        }
    }

    #[test]
    fn truncated_mux_frames_are_rejected() {
        for frame in mux_cases() {
            let encoded = encode_mux(&frame);
            for cut in 0..encoded.len() {
                assert!(
                    decode_mux(&encoded[..cut]).is_err(),
                    "{frame:?} cut at {cut} should fail"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_and_unknown_tags_are_rejected() {
        let mut encoded = encode_mux(&MuxFrame::Accepted { session: 1 });
        encoded.push(0);
        assert!(decode_mux(&encoded).is_err());
        assert!(decode_mux(&[99, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        // Unknown reject code.
        let mut bad = encode_mux(&MuxFrame::Rejected {
            session: 1,
            code: RejectCode::BadFrame,
            reason: String::new(),
        });
        bad[9] = 200;
        assert!(decode_mux(&bad).is_err());
    }

    #[test]
    fn frame_reader_reassembles_across_arbitrary_splits() {
        let payloads: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![], vec![9; 1000]];
        let mut wire = BytesMut::new();
        for p in &payloads {
            put_frame(&mut wire, p, DEFAULT_MAX_FRAME_BYTES).unwrap();
        }
        for chunk in [1usize, 2, 3, 5, 7, wire.len()] {
            let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                reader.extend(piece);
                while let Some(frame) = reader.next_frame().unwrap() {
                    got.push(frame);
                }
            }
            assert_eq!(got, payloads, "chunk size {chunk}");
            assert_eq!(reader.pending_bytes(), 0);
        }
    }

    #[test]
    fn oversized_header_fails_before_buffering_the_body() {
        let mut reader = FrameReader::new(1024);
        reader.extend(&u32::MAX.to_be_bytes());
        match reader.next_frame() {
            Err(RuntimeError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // Only the 4 header bytes were ever buffered.
        assert_eq!(reader.pending_bytes(), 4);
        // The reader stays poisoned: no resynchronising inside hostile bytes.
        reader.extend(&[0u8; 64]);
        assert!(matches!(
            reader.next_frame(),
            Err(RuntimeError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn senders_enforce_the_same_cap() {
        let mut out = BytesMut::new();
        assert!(matches!(
            put_frame(&mut out, &[0u8; 2048], 1024),
            Err(RuntimeError::FrameTooLarge { len: 2048, max: 1024 })
        ));
        assert!(out.is_empty());
    }

    #[test]
    fn fill_reports_eof_wouldblock_and_progress() {
        struct Script(Vec<std::io::Result<Vec<u8>>>);
        impl Read for Script {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.0.pop() {
                    Some(Ok(bytes)) => {
                        buf[..bytes.len()].copy_from_slice(&bytes);
                        Ok(bytes.len())
                    }
                    Some(Err(e)) => Err(e),
                    None => Ok(0),
                }
            }
        }
        let mut reader = FrameReader::new(1024);
        // Reversed pop order: some bytes, then WouldBlock.
        let mut script = Script(vec![
            Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "empty")),
            Ok(vec![0, 0, 0, 1]),
        ]);
        assert_eq!(reader.fill(&mut script).unwrap(), FillStatus::Progress);
        assert_eq!(reader.pending_bytes(), 4);
        let mut empty = Script(vec![Err(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            "empty",
        ))]);
        assert_eq!(reader.fill(&mut empty).unwrap(), FillStatus::WouldBlock);
        let mut eof = Script(vec![]);
        assert_eq!(reader.fill(&mut eof).unwrap(), FillStatus::Eof);
    }
}
