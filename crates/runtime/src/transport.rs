//! Transports: how an endpoint exchanges messages with its peers.
//!
//! A [`Transport`] is the communication half of the paper's `ProcessMonad`
//! (Figure 8): the process is written against it and never sees sockets or
//! channels. The [`InMemoryNetwork`] realises the queue environments of §3.3
//! directly — one unbounded FIFO channel per ordered pair of roles — and is
//! what the session harness and the benchmarks use; [`crate::tcp`] provides
//! the TCP transport of §4.5.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::mpsc::TryRecvError;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use zooid_mpst::{Label, Role};
use zooid_proc::Value;

use crate::codec::{decode_message, encode_message, Message};
use crate::error::{Result, RuntimeError};

/// A connection from one endpoint to all its peers.
///
/// The executor calls [`Transport::send`] and [`Transport::recv`]; different
/// implementations provide in-memory channels, TCP sockets, or anything else
/// capable of carrying framed messages.
pub trait Transport {
    /// Sends a message to the given peer.
    ///
    /// # Errors
    ///
    /// Fails if the peer is unknown or unreachable.
    fn send(&mut self, to: &Role, label: &Label, value: &Value) -> Result<()>;

    /// Receives the next message from the given peer, blocking until one
    /// arrives (or the transport's timeout elapses).
    ///
    /// # Errors
    ///
    /// Fails if the peer is unknown, disconnected, times out, or sends a
    /// malformed frame.
    fn recv(&mut self, from: &Role) -> Result<(Label, Value)>;

    /// Receives the next message from the given peer if one is already
    /// queued, returning `Ok(None)` instead of waiting when there is none.
    ///
    /// This is what the poll-based executor ([`crate::exec::EndpointTask`])
    /// calls, so that a scheduler multiplexing many endpoints on one thread
    /// never parks on a single session. The default implementation falls
    /// back to the blocking [`Transport::recv`], mapping its timeout to
    /// `Ok(None)`: correct for transports that cannot poll (e.g. the TCP
    /// transport), but it parks the calling thread for up to the transport's
    /// receive timeout first — schedulers multiplexing many sessions should
    /// only be fed transports with a real non-blocking implementation, like
    /// [`InMemoryTransport`].
    ///
    /// # Errors
    ///
    /// Fails for the same reasons as [`Transport::recv`], except that an
    /// empty channel is `Ok(None)`, never a timeout.
    fn try_recv(&mut self, from: &Role) -> Result<Option<(Label, Value)>> {
        match self.recv(from) {
            Ok(message) => Ok(Some(message)),
            Err(RuntimeError::Timeout { .. }) => Ok(None),
            Err(err) => Err(err),
        }
    }

    /// The role this transport belongs to.
    fn local_role(&self) -> &Role;
}

/// An in-memory network connecting a set of roles with one FIFO channel per
/// ordered pair, carrying encoded frames.
///
/// # Examples
///
/// ```
/// use zooid_runtime::transport::{InMemoryNetwork, Transport};
/// use zooid_mpst::{Label, Role};
/// use zooid_proc::Value;
///
/// let mut net = InMemoryNetwork::new([Role::new("p"), Role::new("q")]);
/// let mut p = net.take_endpoint(&Role::new("p")).unwrap();
/// let mut q = net.take_endpoint(&Role::new("q")).unwrap();
/// p.send(&Role::new("q"), &Label::new("l"), &Value::Nat(7)).unwrap();
/// assert_eq!(q.recv(&Role::new("p")).unwrap(), (Label::new("l"), Value::Nat(7)));
/// ```
#[derive(Debug)]
pub struct InMemoryNetwork {
    endpoints: BTreeMap<Role, InMemoryTransport>,
}

impl InMemoryNetwork {
    /// Creates a network connecting the given roles.
    pub fn new(roles: impl IntoIterator<Item = Role>) -> Self {
        let roles: Vec<Role> = roles.into_iter().collect();
        let mut senders: BTreeMap<Role, BTreeMap<Role, Sender<Vec<u8>>>> = BTreeMap::new();
        let mut receivers: BTreeMap<Role, BTreeMap<Role, Receiver<Vec<u8>>>> = BTreeMap::new();
        for from in &roles {
            for to in &roles {
                if from == to {
                    continue;
                }
                let (tx, rx) = unbounded();
                senders.entry(from.clone()).or_default().insert(to.clone(), tx);
                receivers.entry(to.clone()).or_default().insert(from.clone(), rx);
            }
        }
        let endpoints = roles
            .iter()
            .map(|role| {
                (
                    role.clone(),
                    InMemoryTransport {
                        me: role.clone(),
                        outgoing: senders.remove(role).unwrap_or_default(),
                        incoming: receivers.remove(role).unwrap_or_default(),
                        timeout: Duration::from_secs(5),
                    },
                )
            })
            .collect();
        InMemoryNetwork { endpoints }
    }

    /// Removes and returns the endpoint transport of a role (each endpoint is
    /// usually moved into its own thread).
    pub fn take_endpoint(&mut self, role: &Role) -> Option<InMemoryTransport> {
        self.endpoints.remove(role)
    }

    /// The roles whose endpoints have not been taken yet.
    pub fn remaining_roles(&self) -> Vec<Role> {
        self.endpoints.keys().cloned().collect()
    }
}

/// One endpoint of an [`InMemoryNetwork`].
pub struct InMemoryTransport {
    me: Role,
    outgoing: BTreeMap<Role, Sender<Vec<u8>>>,
    incoming: BTreeMap<Role, Receiver<Vec<u8>>>,
    timeout: Duration,
}

impl InMemoryTransport {
    /// Sets how long [`Transport::recv`] waits before reporting a timeout
    /// (default: 5 seconds).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }
}

impl fmt::Debug for InMemoryTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InMemoryTransport")
            .field("role", &self.me)
            .field("peers", &self.outgoing.keys().collect::<Vec<_>>())
            .field("timeout", &self.timeout)
            .finish()
    }
}

impl Transport for InMemoryTransport {
    fn send(&mut self, to: &Role, label: &Label, value: &Value) -> Result<()> {
        let sender = self
            .outgoing
            .get(to)
            .ok_or_else(|| RuntimeError::UnknownPeer { role: to.clone() })?;
        let frame = encode_message(&Message::new(label.clone(), value.clone()));
        sender
            .send(frame.to_vec())
            .map_err(|_| RuntimeError::Disconnected { role: to.clone() })
    }

    fn recv(&mut self, from: &Role) -> Result<(Label, Value)> {
        let receiver = self
            .incoming
            .get(from)
            .ok_or_else(|| RuntimeError::UnknownPeer { role: from.clone() })?;
        let frame = receiver.recv_timeout(self.timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RuntimeError::Timeout { from: from.clone() },
            RecvTimeoutError::Disconnected => RuntimeError::Disconnected { role: from.clone() },
        })?;
        let message = decode_message(&frame)?;
        Ok((message.label, message.value))
    }

    fn try_recv(&mut self, from: &Role) -> Result<Option<(Label, Value)>> {
        let receiver = self
            .incoming
            .get(from)
            .ok_or_else(|| RuntimeError::UnknownPeer { role: from.clone() })?;
        let frame = match receiver.try_recv() {
            Ok(frame) => frame,
            Err(TryRecvError::Empty) => return Ok(None),
            Err(TryRecvError::Disconnected) => {
                return Err(RuntimeError::Disconnected { role: from.clone() })
            }
        };
        let message = decode_message(&frame)?;
        Ok(Some((message.label, message.value)))
    }

    fn local_role(&self) -> &Role {
        &self.me
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str) -> Role {
        Role::new(name)
    }
    fn l(name: &str) -> Label {
        Label::new(name)
    }

    #[test]
    fn messages_are_delivered_in_fifo_order() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        let mut q = net.take_endpoint(&r("q")).unwrap();
        p.send(&r("q"), &l("a"), &Value::Nat(1)).unwrap();
        p.send(&r("q"), &l("b"), &Value::Nat(2)).unwrap();
        assert_eq!(q.recv(&r("p")).unwrap(), (l("a"), Value::Nat(1)));
        assert_eq!(q.recv(&r("p")).unwrap(), (l("b"), Value::Nat(2)));
    }

    #[test]
    fn channels_are_per_ordered_pair() {
        let mut net = InMemoryNetwork::new([r("p"), r("q"), r("s")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        let mut q = net.take_endpoint(&r("q")).unwrap();
        let mut s = net.take_endpoint(&r("s")).unwrap();
        // p sends to s and q; each receives only its own message.
        p.send(&r("s"), &l("for_s"), &Value::Unit).unwrap();
        p.send(&r("q"), &l("for_q"), &Value::Unit).unwrap();
        assert_eq!(q.recv(&r("p")).unwrap().0, l("for_q"));
        assert_eq!(s.recv(&r("p")).unwrap().0, l("for_s"));
    }

    #[test]
    fn try_recv_is_non_blocking_and_preserves_fifo_order() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        let mut q = net.take_endpoint(&r("q")).unwrap();
        // Empty channel: None immediately, no timeout involved.
        assert_eq!(q.try_recv(&r("p")).unwrap(), None);
        for (label, v) in [("a", 1), ("b", 2), ("c", 3)] {
            p.send(&r("q"), &l(label), &Value::Nat(v)).unwrap();
        }
        // Mixing blocking and non-blocking receives keeps the FIFO order.
        assert_eq!(q.try_recv(&r("p")).unwrap(), Some((l("a"), Value::Nat(1))));
        assert_eq!(q.recv(&r("p")).unwrap(), (l("b"), Value::Nat(2)));
        assert_eq!(q.try_recv(&r("p")).unwrap(), Some((l("c"), Value::Nat(3))));
        assert_eq!(q.try_recv(&r("p")).unwrap(), None);
    }

    #[test]
    fn the_default_try_recv_maps_timeouts_to_none() {
        // A transport that only implements the blocking half: the default
        // `try_recv` must park (up to the transport's own timeout) and then
        // report an empty channel, never a timeout error.
        struct BlockingOnly {
            me: Role,
            queued: Vec<(Label, Value)>,
        }
        impl Transport for BlockingOnly {
            fn send(&mut self, _: &Role, _: &Label, _: &Value) -> Result<()> {
                Ok(())
            }
            fn recv(&mut self, from: &Role) -> Result<(Label, Value)> {
                self.queued.pop().ok_or(RuntimeError::Timeout { from: from.clone() })
            }
            fn local_role(&self) -> &Role {
                &self.me
            }
        }
        let mut t = BlockingOnly {
            me: r("p"),
            queued: vec![(l("a"), Value::Nat(1))],
        };
        assert_eq!(t.try_recv(&r("q")).unwrap(), Some((l("a"), Value::Nat(1))));
        assert_eq!(t.try_recv(&r("q")).unwrap(), None);
    }

    #[test]
    fn try_recv_reports_unknown_and_disconnected_peers() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        assert!(matches!(
            p.try_recv(&r("z")),
            Err(RuntimeError::UnknownPeer { .. })
        ));
        let q = net.take_endpoint(&r("q")).unwrap();
        drop(q);
        assert!(matches!(
            p.try_recv(&r("q")),
            Err(RuntimeError::Disconnected { .. })
        ));
    }

    #[test]
    fn unknown_peers_are_rejected() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        assert!(matches!(
            p.send(&r("z"), &l("l"), &Value::Unit),
            Err(RuntimeError::UnknownPeer { .. })
        ));
        assert!(matches!(
            p.recv(&r("z")),
            Err(RuntimeError::UnknownPeer { .. })
        ));
        assert_eq!(p.local_role(), &r("p"));
    }

    #[test]
    fn receiving_from_a_silent_peer_times_out() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        p.set_timeout(Duration::from_millis(20));
        assert!(matches!(
            p.recv(&r("q")),
            Err(RuntimeError::Timeout { .. })
        ));
    }

    #[test]
    fn receiving_from_a_dropped_peer_reports_disconnection() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        let q = net.take_endpoint(&r("q")).unwrap();
        drop(q);
        p.set_timeout(Duration::from_secs(1));
        assert!(matches!(
            p.recv(&r("q")),
            Err(RuntimeError::Disconnected { .. })
        ));
    }

    #[test]
    fn remaining_roles_shrinks_as_endpoints_are_taken() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        assert_eq!(net.remaining_roles().len(), 2);
        net.take_endpoint(&r("p")).unwrap();
        assert_eq!(net.remaining_roles(), vec![r("q")]);
        assert!(net.take_endpoint(&r("p")).is_none());
    }
}
