//! Transports: how an endpoint exchanges messages with its peers.
//!
//! A [`Transport`] is the communication half of the paper's `ProcessMonad`
//! (Figure 8): the process is written against it and never sees sockets or
//! channels. The [`InMemoryNetwork`] realises the queue environments of §3.3
//! directly — one unbounded FIFO channel per ordered pair of roles — and is
//! what the session harness, the session server and the benchmarks use;
//! [`crate::tcp`] provides the TCP transport of §4.5.
//!
//! In-process delivery carries `(Label, Value)` frames **directly**: no
//! [`crate::codec`] round-trip, no byte buffers — serialisation is a wire
//! concern and stays on the TCP path (the codec's own property tests keep
//! `decode ∘ encode = id` honest for every value shape). Peers are resolved
//! to **dense indices** (`Vec`s indexed by the sorted position of the peer
//! role) so the fast path of the compiled endpoint executor never walks a
//! `BTreeMap` or compares role strings: resolve once via
//! [`InMemoryTransport::peer_index`], then use the `*_indexed` operations.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use zooid_mpst::{Label, Role};
use zooid_proc::Value;

use crate::error::{Result, RuntimeError};

/// A connection from one endpoint to all its peers.
///
/// The executor calls [`Transport::send`] and [`Transport::recv`]; different
/// implementations provide in-memory channels, TCP sockets, or anything else
/// capable of carrying framed messages.
pub trait Transport {
    /// Sends a message to the given peer.
    ///
    /// # Errors
    ///
    /// Fails if the peer is unknown or unreachable.
    fn send(&mut self, to: &Role, label: &Label, value: &Value) -> Result<()>;

    /// Receives the next message from the given peer, blocking until one
    /// arrives (or the transport's timeout elapses).
    ///
    /// # Errors
    ///
    /// Fails if the peer is unknown, disconnected, times out, or sends a
    /// malformed frame.
    fn recv(&mut self, from: &Role) -> Result<(Label, Value)>;

    /// Receives the next message from the given peer if one is already
    /// queued, returning `Ok(None)` instead of waiting when there is none.
    ///
    /// This is what the poll-based executor ([`crate::exec::EndpointTask`])
    /// calls, so that a scheduler multiplexing many endpoints on one thread
    /// never parks on a single session. The default implementation falls
    /// back to the blocking [`Transport::recv`], mapping its timeout to
    /// `Ok(None)`: a last resort for transports that cannot poll, and one
    /// that parks the calling thread for up to the transport's receive
    /// timeout first — schedulers multiplexing many sessions must only be
    /// fed transports with a real non-blocking implementation. Both
    /// [`InMemoryTransport`] and [`crate::tcp::TcpTransport`] provide one
    /// (the latter buffers partial frames across calls, so a half-received
    /// frame never blocks the scheduler).
    ///
    /// # Errors
    ///
    /// Fails for the same reasons as [`Transport::recv`], except that an
    /// empty channel is `Ok(None)`, never a timeout.
    fn try_recv(&mut self, from: &Role) -> Result<Option<(Label, Value)>> {
        match self.recv(from) {
            Ok(message) => Ok(Some(message)),
            Err(RuntimeError::Timeout { .. }) => Ok(None),
            Err(err) => Err(err),
        }
    }

    /// The role this transport belongs to.
    fn local_role(&self) -> &Role;
}

/// One directed channel slot: an unbounded FIFO of in-flight
/// `(Label, Value)` frames. Liveness lives per *endpoint* in [`NetCore`],
/// not per channel, so the whole network is one flat allocation.
#[derive(Debug, Default)]
struct ChannelSlot {
    queue: Mutex<VecDeque<(Label, Value)>>,
    ready: Condvar,
    /// Number of receivers blocked on `ready`. Incremented under the queue
    /// mutex before waiting, so a sender that pushes and then reads 0 here
    /// cannot have raced a sleeping waiter — senders skip the (syscalling)
    /// notification entirely on the poll-only paths the schedulers use.
    waiters: std::sync::atomic::AtomicUsize,
}

impl ChannelSlot {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<(Label, Value)>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wake(&self) {
        if self.waiters.load(std::sync::atomic::Ordering::Acquire) > 0 {
            self.ready.notify_all();
        }
    }
}

/// The shared heart of an [`InMemoryNetwork`]: the sorted role table, a flat
/// `n × n` matrix of channel slots (row = sender, column = receiver,
/// diagonal unused) and one liveness flag per endpoint. Constructing a
/// session's network is a handful of allocations regardless of how many
/// role pairs exist — this is on the per-session hot path of the server.
#[derive(Debug)]
struct NetCore {
    roles: Arc<[Role]>,
    slots: Vec<ChannelSlot>,
    alive: Vec<std::sync::atomic::AtomicBool>,
}

impl NetCore {
    fn slot(&self, from: usize, to: usize) -> &ChannelSlot {
        &self.slots[from * self.roles.len() + to]
    }

    fn is_alive(&self, endpoint: usize) -> bool {
        self.alive[endpoint].load(std::sync::atomic::Ordering::Acquire)
    }

    /// Marks one endpoint dead and wakes every receiver blocked on a frame
    /// from it (they re-check liveness and report the disconnection). The
    /// slot mutex is taken briefly so a receiver between its liveness check
    /// and its `wait` cannot miss the wakeup.
    fn mark_dead(&self, endpoint: usize) {
        self.alive[endpoint].store(false, std::sync::atomic::Ordering::Release);
        for to in 0..self.roles.len() {
            if to != endpoint {
                drop(self.slot(endpoint, to).lock());
                self.slot(endpoint, to).wake();
            }
        }
    }
}

/// An in-memory network connecting a set of roles with one FIFO channel per
/// ordered pair, carrying `(Label, Value)` frames directly (no codec
/// round-trip — encoding is for wires, not function calls).
///
/// # Examples
///
/// ```
/// use zooid_runtime::transport::{InMemoryNetwork, Transport};
/// use zooid_mpst::{Label, Role};
/// use zooid_proc::Value;
///
/// let mut net = InMemoryNetwork::new([Role::new("p"), Role::new("q")]);
/// let mut p = net.take_endpoint(&Role::new("p")).unwrap();
/// let mut q = net.take_endpoint(&Role::new("q")).unwrap();
/// p.send(&Role::new("q"), &Label::new("l"), &Value::Nat(7)).unwrap();
/// assert_eq!(q.recv(&Role::new("p")).unwrap(), (Label::new("l"), Value::Nat(7)));
/// ```
#[derive(Debug)]
pub struct InMemoryNetwork {
    core: Arc<NetCore>,
    taken: Vec<bool>,
}

impl InMemoryNetwork {
    /// Creates a network connecting the given roles.
    pub fn new(roles: impl IntoIterator<Item = Role>) -> Self {
        let mut roles: Vec<Role> = roles.into_iter().collect();
        roles.sort();
        roles.dedup();
        InMemoryNetwork::from_sorted(roles.into())
    }

    /// Creates a network over an already sorted, deduplicated role table —
    /// the table is shared, not copied, so a server hosting thousands of
    /// sessions of one protocol allocates it once.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the table is not sorted and deduplicated.
    pub fn from_sorted(roles: Arc<[Role]>) -> Self {
        debug_assert!(roles.windows(2).all(|w| w[0] < w[1]), "roles must be sorted");
        let n = roles.len();
        let mut slots = Vec::with_capacity(n * n);
        slots.resize_with(n * n, ChannelSlot::default);
        let alive = (0..n)
            .map(|_| std::sync::atomic::AtomicBool::new(true))
            .collect();
        InMemoryNetwork {
            core: Arc::new(NetCore {
                roles,
                slots,
                alive,
            }),
            taken: vec![false; n],
        }
    }

    /// Removes and returns the endpoint transport of a role (each endpoint is
    /// usually moved into its own thread).
    pub fn take_endpoint(&mut self, role: &Role) -> Option<InMemoryTransport> {
        let idx = self.core.roles.binary_search(role).ok()?;
        if std::mem::replace(&mut self.taken[idx], true) {
            return None;
        }
        Some(InMemoryTransport {
            core: Arc::clone(&self.core),
            me_idx: idx,
            timeout: Duration::from_secs(5),
        })
    }

    /// The roles whose endpoints have not been taken yet.
    pub fn remaining_roles(&self) -> Vec<Role> {
        self.core
            .roles
            .iter()
            .zip(&self.taken)
            .filter(|(_, taken)| !**taken)
            .map(|(role, _)| role.clone())
            .collect()
    }
}

impl Drop for InMemoryNetwork {
    fn drop(&mut self) {
        // Endpoints never handed out can never speak: peers waiting on them
        // must observe a disconnection, exactly as if the transport had been
        // taken and dropped.
        for (idx, taken) in self.taken.iter().enumerate() {
            if !taken {
                self.core.mark_dead(idx);
            }
        }
    }
}

/// One endpoint of an [`InMemoryNetwork`].
///
/// Peers are addressable two ways: by [`Role`] through the [`Transport`]
/// trait (a binary search over the sorted role table), or by **dense index**
/// through [`InMemoryTransport::peer_index`] and the `*_indexed` operations —
/// the compiled endpoint executor resolves each peer once and then steps
/// without comparing role strings at all.
pub struct InMemoryTransport {
    core: Arc<NetCore>,
    me_idx: usize,
    timeout: Duration,
}

impl Drop for InMemoryTransport {
    fn drop(&mut self) {
        self.core.mark_dead(self.me_idx);
    }
}

impl InMemoryTransport {
    /// Sets how long [`Transport::recv`] waits before reporting a timeout
    /// (default: 5 seconds).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// The dense index of a peer role, usable with the `*_indexed`
    /// operations. `None` for unknown roles and for the local role itself.
    pub fn peer_index(&self, role: &Role) -> Option<usize> {
        match self.core.roles.binary_search(role) {
            Ok(idx) if idx != self.me_idx => Some(idx),
            _ => None,
        }
    }

    /// Number of dense peer slots (== roles in the network, including the
    /// local one, whose slot is never a valid peer).
    pub fn peer_slots(&self) -> usize {
        self.core.roles.len()
    }

    fn check_peer(&self, peer: usize) -> Result<()> {
        if peer >= self.core.roles.len() || peer == self.me_idx {
            return Err(RuntimeError::UnknownPeer {
                role: self.peer_role_or_unknown(peer),
            });
        }
        Ok(())
    }

    /// Sends a `(Label, Value)` frame to the peer at a dense index, taking
    /// ownership — no encoding, no extra clone.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownPeer`] for an invalid index,
    /// [`RuntimeError::Disconnected`] when the peer endpoint was dropped.
    pub fn send_indexed(&mut self, peer: usize, label: Label, value: Value) -> Result<()> {
        self.check_peer(peer)?;
        if !self.core.is_alive(peer) {
            return Err(RuntimeError::Disconnected {
                role: self.core.roles[peer].clone(),
            });
        }
        let slot = self.core.slot(self.me_idx, peer);
        slot.lock().push_back((label, value));
        slot.wake();
        Ok(())
    }

    /// Receives the next frame from the peer at a dense index if one is
    /// queued.
    ///
    /// # Errors
    ///
    /// Same as [`Transport::try_recv`].
    pub fn try_recv_indexed(&mut self, peer: usize) -> Result<Option<(Label, Value)>> {
        self.check_peer(peer)?;
        let slot = self.core.slot(peer, self.me_idx);
        match slot.lock().pop_front() {
            Some(frame) => Ok(Some(frame)),
            // Buffered frames drain before a disconnection is reported
            // (mpsc semantics).
            None if self.core.is_alive(peer) => Ok(None),
            None => Err(RuntimeError::Disconnected {
                role: self.core.roles[peer].clone(),
            }),
        }
    }

    /// Receives the next frame from the peer at a dense index, blocking up
    /// to the transport's timeout.
    ///
    /// # Errors
    ///
    /// Same as [`Transport::recv`].
    pub fn recv_indexed(&mut self, peer: usize) -> Result<(Label, Value)> {
        self.check_peer(peer)?;
        let slot = self.core.slot(peer, self.me_idx);
        let deadline = Instant::now() + self.timeout;
        let mut queue = slot.lock();
        loop {
            if let Some(frame) = queue.pop_front() {
                return Ok(frame);
            }
            if !self.core.is_alive(peer) {
                return Err(RuntimeError::Disconnected {
                    role: self.core.roles[peer].clone(),
                });
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RuntimeError::Timeout {
                    from: self.core.roles[peer].clone(),
                });
            }
            // Register as a waiter while still holding the queue mutex: a
            // sender pushing after our emptiness check must either see the
            // registration (and notify) or its frame is already visible to
            // the re-check after waking.
            slot.waiters
                .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
            let (next, _) = slot
                .ready
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            queue = next;
            slot.waiters
                .fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
        }
    }

    fn peer_role_or_unknown(&self, peer: usize) -> Role {
        self.core
            .roles
            .get(peer)
            .cloned()
            .unwrap_or_else(|| Role::new("<unknown>"))
    }
}

impl fmt::Debug for InMemoryTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peers: Vec<&Role> = self
            .core
            .roles
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.me_idx)
            .map(|(_, r)| r)
            .collect();
        f.debug_struct("InMemoryTransport")
            .field("role", &self.core.roles[self.me_idx])
            .field("peers", &peers)
            .field("timeout", &self.timeout)
            .finish()
    }
}

impl Transport for InMemoryTransport {
    fn send(&mut self, to: &Role, label: &Label, value: &Value) -> Result<()> {
        let peer = self
            .peer_index(to)
            .ok_or_else(|| RuntimeError::UnknownPeer { role: to.clone() })?;
        self.send_indexed(peer, label.clone(), value.clone())
    }

    fn recv(&mut self, from: &Role) -> Result<(Label, Value)> {
        let peer = self
            .peer_index(from)
            .ok_or_else(|| RuntimeError::UnknownPeer { role: from.clone() })?;
        self.recv_indexed(peer)
    }

    fn try_recv(&mut self, from: &Role) -> Result<Option<(Label, Value)>> {
        let peer = self
            .peer_index(from)
            .ok_or_else(|| RuntimeError::UnknownPeer { role: from.clone() })?;
        self.try_recv_indexed(peer)
    }

    fn local_role(&self) -> &Role {
        &self.core.roles[self.me_idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str) -> Role {
        Role::new(name)
    }
    fn l(name: &str) -> Label {
        Label::new(name)
    }

    #[test]
    fn messages_are_delivered_in_fifo_order() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        let mut q = net.take_endpoint(&r("q")).unwrap();
        p.send(&r("q"), &l("a"), &Value::Nat(1)).unwrap();
        p.send(&r("q"), &l("b"), &Value::Nat(2)).unwrap();
        assert_eq!(q.recv(&r("p")).unwrap(), (l("a"), Value::Nat(1)));
        assert_eq!(q.recv(&r("p")).unwrap(), (l("b"), Value::Nat(2)));
    }

    #[test]
    fn channels_are_per_ordered_pair() {
        let mut net = InMemoryNetwork::new([r("p"), r("q"), r("s")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        let mut q = net.take_endpoint(&r("q")).unwrap();
        let mut s = net.take_endpoint(&r("s")).unwrap();
        // p sends to s and q; each receives only its own message.
        p.send(&r("s"), &l("for_s"), &Value::Unit).unwrap();
        p.send(&r("q"), &l("for_q"), &Value::Unit).unwrap();
        assert_eq!(q.recv(&r("p")).unwrap().0, l("for_q"));
        assert_eq!(s.recv(&r("p")).unwrap().0, l("for_s"));
    }

    #[test]
    fn try_recv_is_non_blocking_and_preserves_fifo_order() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        let mut q = net.take_endpoint(&r("q")).unwrap();
        // Empty channel: None immediately, no timeout involved.
        assert_eq!(q.try_recv(&r("p")).unwrap(), None);
        for (label, v) in [("a", 1), ("b", 2), ("c", 3)] {
            p.send(&r("q"), &l(label), &Value::Nat(v)).unwrap();
        }
        // Mixing blocking and non-blocking receives keeps the FIFO order.
        assert_eq!(q.try_recv(&r("p")).unwrap(), Some((l("a"), Value::Nat(1))));
        assert_eq!(q.recv(&r("p")).unwrap(), (l("b"), Value::Nat(2)));
        assert_eq!(q.try_recv(&r("p")).unwrap(), Some((l("c"), Value::Nat(3))));
        assert_eq!(q.try_recv(&r("p")).unwrap(), None);
    }

    #[test]
    fn the_default_try_recv_maps_timeouts_to_none() {
        // A transport that only implements the blocking half: the default
        // `try_recv` must park (up to the transport's own timeout) and then
        // report an empty channel, never a timeout error.
        struct BlockingOnly {
            me: Role,
            queued: Vec<(Label, Value)>,
        }
        impl Transport for BlockingOnly {
            fn send(&mut self, _: &Role, _: &Label, _: &Value) -> Result<()> {
                Ok(())
            }
            fn recv(&mut self, from: &Role) -> Result<(Label, Value)> {
                self.queued.pop().ok_or(RuntimeError::Timeout { from: from.clone() })
            }
            fn local_role(&self) -> &Role {
                &self.me
            }
        }
        let mut t = BlockingOnly {
            me: r("p"),
            queued: vec![(l("a"), Value::Nat(1))],
        };
        assert_eq!(t.try_recv(&r("q")).unwrap(), Some((l("a"), Value::Nat(1))));
        assert_eq!(t.try_recv(&r("q")).unwrap(), None);
    }

    #[test]
    fn try_recv_reports_unknown_and_disconnected_peers() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        assert!(matches!(
            p.try_recv(&r("z")),
            Err(RuntimeError::UnknownPeer { .. })
        ));
        let q = net.take_endpoint(&r("q")).unwrap();
        drop(q);
        assert!(matches!(
            p.try_recv(&r("q")),
            Err(RuntimeError::Disconnected { .. })
        ));
    }

    #[test]
    fn unknown_peers_are_rejected() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        assert!(matches!(
            p.send(&r("z"), &l("l"), &Value::Unit),
            Err(RuntimeError::UnknownPeer { .. })
        ));
        assert!(matches!(
            p.recv(&r("z")),
            Err(RuntimeError::UnknownPeer { .. })
        ));
        assert_eq!(p.local_role(), &r("p"));
    }

    #[test]
    fn receiving_from_a_silent_peer_times_out() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        p.set_timeout(Duration::from_millis(20));
        assert!(matches!(
            p.recv(&r("q")),
            Err(RuntimeError::Timeout { .. })
        ));
    }

    #[test]
    fn receiving_from_a_dropped_peer_reports_disconnection() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        let q = net.take_endpoint(&r("q")).unwrap();
        drop(q);
        p.set_timeout(Duration::from_secs(1));
        assert!(matches!(
            p.recv(&r("q")),
            Err(RuntimeError::Disconnected { .. })
        ));
    }

    #[test]
    fn indexed_operations_mirror_the_role_addressed_ones() {
        let mut net = InMemoryNetwork::new([r("p"), r("q"), r("s")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        let mut q = net.take_endpoint(&r("q")).unwrap();
        let qi = p.peer_index(&r("q")).unwrap();
        let pi = q.peer_index(&r("p")).unwrap();
        assert_eq!(p.peer_index(&r("p")), None, "self is not a peer");
        assert_eq!(p.peer_index(&r("zzz")), None);
        assert_eq!(p.peer_slots(), 3);

        p.send_indexed(qi, l("a"), Value::Nat(1)).unwrap();
        p.send(&r("q"), &l("b"), &Value::Nat(2)).unwrap();
        // Indexed and role-addressed receives drain the same FIFO.
        assert_eq!(q.try_recv_indexed(pi).unwrap(), Some((l("a"), Value::Nat(1))));
        assert_eq!(q.recv_indexed(pi).unwrap(), (l("b"), Value::Nat(2)));
        assert_eq!(q.try_recv_indexed(pi).unwrap(), None);

        // Out-of-range indices are unknown peers, not panics.
        assert!(matches!(
            p.send_indexed(99, l("x"), Value::Unit),
            Err(RuntimeError::UnknownPeer { .. })
        ));
        assert!(matches!(
            q.try_recv_indexed(99),
            Err(RuntimeError::UnknownPeer { .. })
        ));
    }

    #[test]
    fn indexed_receive_times_out_and_detects_disconnection() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        let qi = p.peer_index(&r("q")).unwrap();
        p.set_timeout(Duration::from_millis(20));
        assert!(matches!(
            p.recv_indexed(qi),
            Err(RuntimeError::Timeout { .. })
        ));
        let q = net.take_endpoint(&r("q")).unwrap();
        drop(q);
        assert!(matches!(
            p.recv_indexed(qi),
            Err(RuntimeError::Disconnected { .. })
        ));
        assert!(matches!(
            p.try_recv_indexed(qi),
            Err(RuntimeError::Disconnected { .. })
        ));
    }

    #[test]
    fn buffered_frames_survive_a_dropped_sender() {
        // mpsc semantics: frames already in flight are delivered before the
        // disconnection is reported.
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        let mut p = net.take_endpoint(&r("p")).unwrap();
        let mut q = net.take_endpoint(&r("q")).unwrap();
        p.send(&r("q"), &l("a"), &Value::Nat(1)).unwrap();
        drop(p);
        assert_eq!(q.recv(&r("p")).unwrap(), (l("a"), Value::Nat(1)));
        assert!(matches!(
            q.recv(&r("p")),
            Err(RuntimeError::Disconnected { .. })
        ));
    }

    #[test]
    fn remaining_roles_shrinks_as_endpoints_are_taken() {
        let mut net = InMemoryNetwork::new([r("p"), r("q")]);
        assert_eq!(net.remaining_roles().len(), 2);
        net.take_endpoint(&r("p")).unwrap();
        assert_eq!(net.remaining_roles(), vec![r("q")]);
        assert!(net.take_endpoint(&r("p")).is_none());
    }
}
