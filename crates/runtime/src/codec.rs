//! Wire format for messages: a small, self-describing binary encoding of
//! labels and values, standing in for OCaml's `Marshal` module (§4.5).
//!
//! The format is deliberately simple: every value is encoded as a one-byte
//! tag followed by its payload, with `u64`/`i64` in big-endian and
//! length-prefixed strings and sequences. Frames on the wire are the encoded
//! message preceded by a `u32` length (see [`crate::tcp`]). The in-memory
//! transport passes `(Label, Value)` frames directly — encoding is a wire
//! concern — so the codec is kept honest by its round-trip property tests
//! (`tests/codec_props.rs`: `decode ∘ encode = id` for every value shape)
//! rather than by riding along on every in-process message.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use zooid_mpst::Label;
use zooid_proc::Value;

use crate::error::{Result, RuntimeError};

/// A message as it travels between endpoints: a label and a payload value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The label selecting the branch of the protocol.
    pub label: Label,
    /// The payload.
    pub value: Value,
}

impl Message {
    /// Creates a message.
    pub fn new(label: impl Into<Label>, value: Value) -> Self {
        Message {
            label: label.into(),
            value,
        }
    }
}

const TAG_UNIT: u8 = 0;
const TAG_NAT: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_BOOL_FALSE: u8 = 3;
const TAG_BOOL_TRUE: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_INL: u8 = 6;
const TAG_INR: u8 = 7;
const TAG_PAIR: u8 = 8;
const TAG_SEQ: u8 = 9;

/// Encodes a message into a byte buffer.
pub fn encode_message(message: &Message) -> Bytes {
    let mut buf = BytesMut::new();
    put_str(&mut buf, message.label.name());
    put_value(&mut buf, &message.value);
    buf.freeze()
}

/// Decodes a message from a byte buffer.
///
/// # Errors
///
/// Returns [`RuntimeError::Codec`] on truncated or malformed input, including
/// trailing bytes.
pub fn decode_message(mut bytes: &[u8]) -> Result<Message> {
    let label = get_str(&mut bytes)?;
    let value = get_value(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(RuntimeError::Codec {
            reason: format!("{} trailing bytes after the payload", bytes.len()),
        });
    }
    Ok(Message {
        label: Label::new(label),
        value,
    })
}

pub(crate) fn put_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Unit => buf.put_u8(TAG_UNIT),
        Value::Nat(n) => {
            buf.put_u8(TAG_NAT);
            buf.put_u64(*n);
        }
        Value::Int(n) => {
            buf.put_u8(TAG_INT);
            buf.put_i64(*n);
        }
        Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            put_str(buf, s);
        }
        Value::Inl(inner) => {
            buf.put_u8(TAG_INL);
            put_value(buf, inner);
        }
        Value::Inr(inner) => {
            buf.put_u8(TAG_INR);
            put_value(buf, inner);
        }
        Value::Pair(a, b) => {
            buf.put_u8(TAG_PAIR);
            put_value(buf, a);
            put_value(buf, b);
        }
        Value::Seq(items) => {
            buf.put_u8(TAG_SEQ);
            buf.put_u32(u32::try_from(items.len()).unwrap_or(u32::MAX));
            for item in items {
                put_value(buf, item);
            }
        }
    }
}

pub(crate) fn get_value(bytes: &mut &[u8]) -> Result<Value> {
    let tag = get_u8(bytes)?;
    Ok(match tag {
        TAG_UNIT => Value::Unit,
        TAG_NAT => Value::Nat(get_u64(bytes)?),
        TAG_INT => Value::Int(get_u64(bytes)? as i64),
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_STR => Value::Str(get_str(bytes)?),
        TAG_INL => Value::inl(get_value(bytes)?),
        TAG_INR => Value::inr(get_value(bytes)?),
        TAG_PAIR => {
            let a = get_value(bytes)?;
            let b = get_value(bytes)?;
            Value::pair(a, b)
        }
        TAG_SEQ => {
            let len = get_u32(bytes)? as usize;
            let mut items = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                items.push(get_value(bytes)?);
            }
            Value::Seq(items)
        }
        other => {
            return Err(RuntimeError::Codec {
                reason: format!("unknown value tag {other}"),
            })
        }
    })
}

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(u32::try_from(s.len()).unwrap_or(u32::MAX));
    buf.put_slice(s.as_bytes());
}

pub(crate) fn get_str(bytes: &mut &[u8]) -> Result<String> {
    let len = get_u32(bytes)? as usize;
    if bytes.len() < len {
        return Err(RuntimeError::Codec {
            reason: "truncated string".to_owned(),
        });
    }
    let (head, rest) = bytes.split_at(len);
    let s = std::str::from_utf8(head)
        .map_err(|_| RuntimeError::Codec {
            reason: "string is not valid utf-8".to_owned(),
        })?
        .to_owned();
    *bytes = rest;
    Ok(s)
}

pub(crate) fn get_u8(bytes: &mut &[u8]) -> Result<u8> {
    if bytes.is_empty() {
        return Err(RuntimeError::Codec {
            reason: "truncated frame".to_owned(),
        });
    }
    let v = bytes[0];
    bytes.advance(1);
    Ok(v)
}

pub(crate) fn get_u32(bytes: &mut &[u8]) -> Result<u32> {
    if bytes.len() < 4 {
        return Err(RuntimeError::Codec {
            reason: "truncated integer".to_owned(),
        });
    }
    Ok(bytes.get_u32())
}

pub(crate) fn get_u64(bytes: &mut &[u8]) -> Result<u64> {
    if bytes.len() < 8 {
        return Err(RuntimeError::Codec {
            reason: "truncated integer".to_owned(),
        });
    }
    Ok(bytes.get_u64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: Value) {
        let msg = Message::new("some_label", value);
        let encoded = encode_message(&msg);
        let decoded = decode_message(&encoded).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn round_trips_every_value_shape() {
        round_trip(Value::Unit);
        round_trip(Value::Nat(u64::MAX));
        round_trip(Value::Int(-42));
        round_trip(Value::Bool(true));
        round_trip(Value::Bool(false));
        round_trip(Value::Str("héllo world".into()));
        round_trip(Value::inl(Value::Nat(1)));
        round_trip(Value::inr(Value::pair(Value::Bool(true), Value::Unit)));
        round_trip(Value::Seq(vec![Value::Nat(1), Value::Nat(2), Value::Nat(3)]));
        round_trip(Value::Seq(vec![]));
        round_trip(Value::pair(
            Value::Seq(vec![Value::Str("a".into())]),
            Value::inl(Value::Int(0)),
        ));
    }

    #[test]
    fn labels_with_unicode_round_trip() {
        let msg = Message::new("étiquette", Value::Unit);
        assert_eq!(decode_message(&encode_message(&msg)).unwrap(), msg);
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let msg = Message::new("l", Value::Nat(7));
        let encoded = encode_message(&msg);
        for cut in 0..encoded.len() {
            assert!(
                decode_message(&encoded[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let msg = Message::new("l", Value::Nat(7));
        let mut encoded = encode_message(&msg).to_vec();
        encoded.push(0);
        assert!(decode_message(&encoded).is_err());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        // A frame with a valid label and an invalid value tag.
        let mut buf = BytesMut::new();
        put_str(&mut buf, "l");
        buf.put_u8(200);
        assert!(decode_message(&buf).is_err());
    }
}
