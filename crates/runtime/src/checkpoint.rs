//! Durable session checkpoints: a live session serialized through the wire
//! codec and restored under re-validation.
//!
//! A compiled session is a tiny resumable value — per-role program counter
//! and slot array, the monitor's [`MonitorCursor`] position, and the frames
//! still in flight — and the batch plane already extracts exactly that
//! shape when it demotes a straggler ([`DemotedSession`]). This module
//! makes that shape *durable*: [`SessionCheckpoint::from_demoted`] captures
//! it, [`SessionCheckpoint::encode`]/[`SessionCheckpoint::decode`] move it
//! through the same self-describing binary codec the wire uses
//! ([`crate::codec`]), and [`SessionCheckpoint::into_demoted`] rebuilds a
//! `DemotedSession` that [`CompiledEndpointTask::resume`] and
//! [`CompiledMonitor::resume`] continue exactly where the checkpoint was
//! taken.
//!
//! Restoration is a trust boundary, not a deserializer: every index in the
//! checkpoint — program counters, slot counts, monitor states, queued
//! message ids, frame endpoints — is validated against the compiled
//! programs and transition tables it claims to resume
//! ([`zooid_cfsm::CompiledSystem::restore_cursor`] does the cursor half).
//! Bytes that decode but describe a state the protocol's tables do not
//! admit are refused with [`RuntimeError::Recovery`]; a corrupted or
//! hostile checkpoint never becomes a running session.
//!
//! [`MonitorCursor`]: zooid_cfsm::MonitorCursor

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};
use zooid_cfsm::CompiledSystem;
use zooid_mpst::common::intern::MsgId;
use zooid_mpst::{Action, Label, Role, Sort, Trace};
use zooid_proc::{Value, ValueAction};

use crate::cbatch::{DemotedEndpoint, DemotedSession};
use crate::cexec::{CompiledEndpointTask, EndpointProgram};
use crate::codec::{get_str, get_u32, get_u64, get_u8, get_value, put_str, put_value};
use crate::error::{Result, RuntimeError};
use crate::exec::{EndpointStatus, ExecOptions};
use crate::monitor::{CompiledMonitor, MonitorViolation};

/// Format magic leading every encoded checkpoint (`"ZCKP"`).
const MAGIC: u32 = 0x5A43_4B50;
/// Format version; bumped on any incompatible layout change.
const VERSION: u8 = 1;

/// One endpoint's serialized execution state.
#[derive(Debug, Clone, PartialEq)]
struct EndpointState {
    role: Role,
    pc: u32,
    slots: Vec<Value>,
    actions: Vec<ValueAction>,
    steps: u64,
    status: Option<EndpointStatus>,
}

/// A serializable snapshot of one live session: everything
/// [`CompiledEndpointTask::resume`] and [`CompiledMonitor::resume`] need to
/// continue it, in a form the codec can move to disk or across the wire.
///
/// The compiled programs themselves are **not** part of a checkpoint — they
/// are code, shared and cached per protocol, and the restoring side supplies
/// them to [`SessionCheckpoint::into_demoted`] (which verifies the
/// checkpoint actually fits them).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    token: u64,
    max_steps: Option<u64>,
    record_actions: bool,
    endpoints: Vec<EndpointState>,
    /// Monitor cursor: machine states in machine order.
    states: Vec<u32>,
    /// Monitor cursor: queued interned message ids per dense channel.
    queues: Vec<Vec<u32>>,
    trace: Vec<Action>,
    violations: Vec<(Action, u64, u64)>,
    accepted: u64,
    observed: u64,
    record_trace: bool,
    /// In-flight frames as `(from, to, label, value)` role indices, in
    /// per-channel delivery order.
    frames: Vec<(u32, u32, Label, Value)>,
}

impl SessionCheckpoint {
    /// Captures a demoted session's full resumable state. This is the one
    /// construction path: both the slab executor (via
    /// [`checkpoint_task`]-built [`DemotedSession`]s) and the columnar batch
    /// plane (via
    /// [`SessionBatch::demote_now`](crate::cbatch::SessionBatch::demote_now))
    /// produce `DemotedSession`s, so one capture covers both execution
    /// paths.
    pub fn from_demoted(demoted: &DemotedSession) -> Self {
        let monitor = &demoted.monitor;
        let cursor = monitor.cursor();
        SessionCheckpoint {
            token: demoted.token,
            max_steps: demoted.options.max_steps.map(|n| n as u64),
            record_actions: demoted.options.record_actions,
            endpoints: demoted
                .endpoints
                .iter()
                .map(|ep| EndpointState {
                    role: ep.role.clone(),
                    pc: ep.pc,
                    slots: ep.slots.clone(),
                    actions: ep.actions.clone(),
                    steps: ep.steps as u64,
                    status: ep.status.clone(),
                })
                .collect(),
            states: cursor.states().to_vec(),
            queues: cursor
                .queues()
                .iter()
                .map(|q| q.iter().map(|m| m.index() as u32).collect())
                .collect(),
            trace: monitor.trace().iter().cloned().collect(),
            violations: monitor
                .violations()
                .iter()
                .map(|v| (v.action.clone(), v.position as u64, v.trace_len as u64))
                .collect(),
            accepted: monitor.accepted() as u64,
            observed: monitor.observed() as u64,
            record_trace: monitor.records_trace(),
            frames: demoted.frames.clone(),
        }
    }

    /// The caller-supplied session token the checkpoint carries.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The roles of the checkpointed endpoints, in checkpoint order.
    pub fn roles(&self) -> impl Iterator<Item = &Role> {
        self.endpoints.iter().map(|ep| &ep.role)
    }

    /// Serializes the checkpoint with the wire codec: one-byte tags,
    /// big-endian integers, length-prefixed strings.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64(self.token);
        put_opt_u64(&mut buf, self.max_steps);
        buf.put_u8(u8::from(self.record_actions));
        buf.put_u32(self.endpoints.len() as u32);
        for ep in &self.endpoints {
            put_str(&mut buf, ep.role.name());
            buf.put_u32(ep.pc);
            buf.put_u32(ep.slots.len() as u32);
            for slot in &ep.slots {
                put_value(&mut buf, slot);
            }
            buf.put_u32(ep.actions.len() as u32);
            for action in &ep.actions {
                put_value_action(&mut buf, action);
            }
            buf.put_u64(ep.steps);
            put_status(&mut buf, ep.status.as_ref());
        }
        buf.put_u32(self.states.len() as u32);
        for &s in &self.states {
            buf.put_u32(s);
        }
        buf.put_u32(self.queues.len() as u32);
        for queue in &self.queues {
            buf.put_u32(queue.len() as u32);
            for &m in queue {
                buf.put_u32(m);
            }
        }
        buf.put_u32(self.trace.len() as u32);
        for action in &self.trace {
            put_action(&mut buf, action);
        }
        buf.put_u32(self.violations.len() as u32);
        for (action, position, trace_len) in &self.violations {
            put_action(&mut buf, action);
            buf.put_u64(*position);
            buf.put_u64(*trace_len);
        }
        buf.put_u64(self.accepted);
        buf.put_u64(self.observed);
        buf.put_u8(u8::from(self.record_trace));
        buf.put_u32(self.frames.len() as u32);
        for (from, to, label, value) in &self.frames {
            buf.put_u32(*from);
            buf.put_u32(*to);
            put_str(&mut buf, label.name());
            put_value(&mut buf, value);
        }
        buf.freeze()
    }

    /// Decodes a checkpoint.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Codec`] on truncated or malformed input, including
    /// trailing bytes — the checkpoint codec inherits the wire codec's
    /// strictness.
    pub fn decode(mut bytes: &[u8]) -> Result<Self> {
        let bytes = &mut bytes;
        if get_u32(bytes)? != MAGIC {
            return Err(RuntimeError::Codec {
                reason: "not a session checkpoint (bad magic)".to_owned(),
            });
        }
        let version = get_u8(bytes)?;
        if version != VERSION {
            return Err(RuntimeError::Codec {
                reason: format!("unsupported checkpoint version {version}"),
            });
        }
        let token = get_u64(bytes)?;
        let max_steps = get_opt_u64(bytes)?;
        let record_actions = get_bool(bytes)?;
        let n = get_u32(bytes)? as usize;
        let mut endpoints = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let role = Role::new(get_str(bytes)?);
            let pc = get_u32(bytes)?;
            let slot_count = get_u32(bytes)? as usize;
            let mut slots = Vec::with_capacity(slot_count.min(1024));
            for _ in 0..slot_count {
                slots.push(get_value(bytes)?);
            }
            let action_count = get_u32(bytes)? as usize;
            let mut actions = Vec::with_capacity(action_count.min(1024));
            for _ in 0..action_count {
                actions.push(get_value_action(bytes)?);
            }
            let steps = get_u64(bytes)?;
            let status = get_status(bytes)?;
            endpoints.push(EndpointState {
                role,
                pc,
                slots,
                actions,
                steps,
                status,
            });
        }
        let state_count = get_u32(bytes)? as usize;
        let mut states = Vec::with_capacity(state_count.min(1024));
        for _ in 0..state_count {
            states.push(get_u32(bytes)?);
        }
        let queue_count = get_u32(bytes)? as usize;
        let mut queues = Vec::with_capacity(queue_count.min(1024));
        for _ in 0..queue_count {
            let len = get_u32(bytes)? as usize;
            let mut queue = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                queue.push(get_u32(bytes)?);
            }
            queues.push(queue);
        }
        let trace_len = get_u32(bytes)? as usize;
        let mut trace = Vec::with_capacity(trace_len.min(1024));
        for _ in 0..trace_len {
            trace.push(get_action(bytes)?);
        }
        let violation_count = get_u32(bytes)? as usize;
        let mut violations = Vec::with_capacity(violation_count.min(1024));
        for _ in 0..violation_count {
            let action = get_action(bytes)?;
            let position = get_u64(bytes)?;
            let trace_len = get_u64(bytes)?;
            violations.push((action, position, trace_len));
        }
        let accepted = get_u64(bytes)?;
        let observed = get_u64(bytes)?;
        let record_trace = get_bool(bytes)?;
        let frame_count = get_u32(bytes)? as usize;
        let mut frames = Vec::with_capacity(frame_count.min(1024));
        for _ in 0..frame_count {
            let from = get_u32(bytes)?;
            let to = get_u32(bytes)?;
            let label = Label::new(get_str(bytes)?);
            let value = get_value(bytes)?;
            frames.push((from, to, label, value));
        }
        if !bytes.is_empty() {
            return Err(RuntimeError::Codec {
                reason: format!("{} trailing bytes after the checkpoint", bytes.len()),
            });
        }
        Ok(SessionCheckpoint {
            token,
            max_steps,
            record_actions,
            endpoints,
            states,
            queues,
            trace,
            violations,
            accepted,
            observed,
            record_trace,
            frames,
        })
    }

    /// Rebuilds the resumable session, re-validating every piece of the
    /// checkpoint against the compiled programs (one per endpoint, in
    /// checkpoint role order) and the protocol's compiled transition tables.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Recovery`] when the checkpoint does not fit the
    /// supplied programs and system: wrong role set, a program counter or
    /// slot array the program does not have, a monitor cursor the tables
    /// refuse ([`CompiledSystem::restore_cursor`]), inconsistent monitor
    /// counters, or frames between roles the session does not contain.
    pub fn into_demoted(
        self,
        programs: &[Arc<EndpointProgram>],
        system: &Arc<CompiledSystem>,
    ) -> Result<DemotedSession> {
        let refuse = |reason: String| Err(RuntimeError::Recovery { reason });
        if programs.len() != self.endpoints.len() {
            return refuse(format!(
                "checkpoint has {} endpoints but the protocol compiles {} programs",
                self.endpoints.len(),
                programs.len()
            ));
        }
        let n = self.endpoints.len() as u32;
        let mut endpoints = Vec::with_capacity(self.endpoints.len());
        for (ep, program) in self.endpoints.into_iter().zip(programs) {
            let compiled = program.program();
            if compiled.role() != &ep.role {
                return refuse(format!(
                    "checkpoint role `{}` does not match program role `{}`",
                    ep.role,
                    compiled.role()
                ));
            }
            if ep.pc as usize >= compiled.instrs().len() {
                return refuse(format!(
                    "program counter {} is outside `{}`'s instruction table",
                    ep.pc, ep.role
                ));
            }
            if ep.slots.len() != compiled.slot_count() {
                return refuse(format!(
                    "`{}` carries {} slots but its program declares {}",
                    ep.role,
                    ep.slots.len(),
                    compiled.slot_count()
                ));
            }
            endpoints.push(DemotedEndpoint {
                role: ep.role,
                program: Arc::clone(program),
                pc: ep.pc,
                slots: ep.slots,
                actions: ep.actions,
                steps: ep.steps as usize,
                status: ep.status,
            });
        }
        let queues: Vec<VecDeque<MsgId>> = self
            .queues
            .iter()
            .map(|q| {
                q.iter()
                    .map(|&m| MsgId::from_index(m as usize).expect("u32 index fits"))
                    .collect()
            })
            .collect();
        let Some(cursor) = system.restore_cursor(self.states, queues) else {
            return refuse(
                "monitor cursor does not fit the protocol's compiled tables".to_owned(),
            );
        };
        if self.accepted > self.observed {
            return refuse(format!(
                "monitor claims {} accepted actions out of {} observed",
                self.accepted, self.observed
            ));
        }
        if self.accepted + self.violations.len() as u64 != self.observed {
            return refuse(
                "monitor counters disagree with the recorded violations".to_owned(),
            );
        }
        for (from, to, _, _) in &self.frames {
            if *from >= n || *to >= n || from == to {
                return refuse(format!(
                    "in-flight frame between role indices {from} and {to} of {n} roles"
                ));
            }
        }
        let violations = self
            .violations
            .into_iter()
            .map(|(action, position, trace_len)| MonitorViolation {
                action,
                position: position as usize,
                trace_len: trace_len as usize,
            })
            .collect();
        let monitor = CompiledMonitor::resume(
            Arc::clone(system),
            cursor,
            Trace::new(self.trace),
            self.accepted as usize,
            violations,
            self.observed as usize,
            self.record_trace,
        );
        Ok(DemotedSession {
            token: self.token,
            options: ExecOptions {
                max_steps: self.max_steps.map(|n| n as usize),
                record_actions: self.record_actions,
            },
            endpoints,
            monitor,
            frames: self.frames,
        })
    }
}

/// Extracts one slab task's resumable state (the checkpoint counterpart of
/// what [`SessionBatch`](crate::cbatch::SessionBatch) extracts when it
/// demotes a session): the task keeps running, the extraction only clones.
pub fn checkpoint_task(task: &CompiledEndpointTask) -> DemotedEndpoint {
    DemotedEndpoint {
        role: task.role().clone(),
        program: Arc::clone(task.program()),
        pc: task.pc(),
        slots: task.slots().to_vec(),
        actions: task.actions().to_vec(),
        steps: task.steps(),
        status: task.status().cloned(),
    }
}

/// The *initial* certified checkpoint of a session that has not stepped
/// yet: every program at its entry point with unit-initialized slots, a
/// fresh monitor, no frames. The empty trace is trivially certified, so
/// this is the restart point of last resort when no later certified
/// checkpoint exists (e.g. a batch session that violated before its first
/// snapshot).
pub fn initial_demoted(
    token: u64,
    options: ExecOptions,
    programs: &[Arc<EndpointProgram>],
    system: &Arc<CompiledSystem>,
) -> DemotedSession {
    let endpoints = programs
        .iter()
        .map(|program| {
            let compiled = program.program();
            DemotedEndpoint {
                role: compiled.role().clone(),
                program: Arc::clone(program),
                pc: compiled.entry(),
                slots: vec![Value::Unit; compiled.slot_count()],
                actions: Vec::new(),
                steps: 0,
                status: None,
            }
        })
        .collect();
    let mut monitor = CompiledMonitor::new(Arc::clone(system));
    monitor.set_record_trace(options.record_actions);
    DemotedSession {
        token,
        options,
        endpoints,
        monitor,
        frames: Vec::new(),
    }
}

// ---------------------------------------------------------------------
// Sub-codecs shared with the write-ahead log
// ---------------------------------------------------------------------

const SORT_UNIT: u8 = 0;
const SORT_NAT: u8 = 1;
const SORT_INT: u8 = 2;
const SORT_BOOL: u8 = 3;
const SORT_STR: u8 = 4;
const SORT_SUM: u8 = 5;
const SORT_PROD: u8 = 6;
const SORT_SEQ: u8 = 7;

pub(crate) fn put_sort(buf: &mut BytesMut, sort: &Sort) {
    match sort {
        Sort::Unit => buf.put_u8(SORT_UNIT),
        Sort::Nat => buf.put_u8(SORT_NAT),
        Sort::Int => buf.put_u8(SORT_INT),
        Sort::Bool => buf.put_u8(SORT_BOOL),
        Sort::Str => buf.put_u8(SORT_STR),
        Sort::Sum(a, b) => {
            buf.put_u8(SORT_SUM);
            put_sort(buf, a);
            put_sort(buf, b);
        }
        Sort::Prod(a, b) => {
            buf.put_u8(SORT_PROD);
            put_sort(buf, a);
            put_sort(buf, b);
        }
        Sort::Seq(inner) => {
            buf.put_u8(SORT_SEQ);
            put_sort(buf, inner);
        }
    }
}

pub(crate) fn get_sort(bytes: &mut &[u8]) -> Result<Sort> {
    Ok(match get_u8(bytes)? {
        SORT_UNIT => Sort::Unit,
        SORT_NAT => Sort::Nat,
        SORT_INT => Sort::Int,
        SORT_BOOL => Sort::Bool,
        SORT_STR => Sort::Str,
        SORT_SUM => {
            let a = get_sort(bytes)?;
            let b = get_sort(bytes)?;
            Sort::Sum(Box::new(a), Box::new(b))
        }
        SORT_PROD => {
            let a = get_sort(bytes)?;
            let b = get_sort(bytes)?;
            Sort::Prod(Box::new(a), Box::new(b))
        }
        SORT_SEQ => Sort::Seq(Box::new(get_sort(bytes)?)),
        other => {
            return Err(RuntimeError::Codec {
                reason: format!("unknown sort tag {other}"),
            })
        }
    })
}

pub(crate) fn put_action(buf: &mut BytesMut, action: &Action) {
    buf.put_u8(u8::from(action.is_send()));
    put_str(buf, action.from().name());
    put_str(buf, action.to().name());
    put_str(buf, action.label().name());
    put_sort(buf, action.sort());
}

pub(crate) fn get_action(bytes: &mut &[u8]) -> Result<Action> {
    let is_send = get_bool(bytes)?;
    let from = Role::new(get_str(bytes)?);
    let to = Role::new(get_str(bytes)?);
    let label = Label::new(get_str(bytes)?);
    let sort = get_sort(bytes)?;
    Ok(if is_send {
        Action::send(from, to, label, sort)
    } else {
        Action::recv(to, from, label, sort)
    })
}

pub(crate) fn put_value_action(buf: &mut BytesMut, action: &ValueAction) {
    buf.put_u8(u8::from(action.is_send));
    put_str(buf, action.from.name());
    put_str(buf, action.to.name());
    put_str(buf, action.label.name());
    put_sort(buf, &action.sort);
    put_value(buf, &action.value);
}

pub(crate) fn get_value_action(bytes: &mut &[u8]) -> Result<ValueAction> {
    let is_send = get_bool(bytes)?;
    let from = Role::new(get_str(bytes)?);
    let to = Role::new(get_str(bytes)?);
    let label = Label::new(get_str(bytes)?);
    let sort = get_sort(bytes)?;
    let value = get_value(bytes)?;
    Ok(if is_send {
        ValueAction::send(from, to, label, sort, value)
    } else {
        ValueAction::recv(to, from, label, sort, value)
    })
}

const STATUS_RUNNING: u8 = 0;
const STATUS_FINISHED: u8 = 1;
const STATUS_STEP_LIMIT: u8 = 2;
const STATUS_STALLED: u8 = 3;
const STATUS_FAILED: u8 = 4;

fn put_status(buf: &mut BytesMut, status: Option<&EndpointStatus>) {
    match status {
        None => buf.put_u8(STATUS_RUNNING),
        Some(EndpointStatus::Finished) => buf.put_u8(STATUS_FINISHED),
        Some(EndpointStatus::StepLimitReached) => buf.put_u8(STATUS_STEP_LIMIT),
        Some(EndpointStatus::Stalled) => buf.put_u8(STATUS_STALLED),
        Some(EndpointStatus::Failed { error }) => {
            buf.put_u8(STATUS_FAILED);
            put_str(buf, error);
        }
    }
}

fn get_status(bytes: &mut &[u8]) -> Result<Option<EndpointStatus>> {
    Ok(match get_u8(bytes)? {
        STATUS_RUNNING => None,
        STATUS_FINISHED => Some(EndpointStatus::Finished),
        STATUS_STEP_LIMIT => Some(EndpointStatus::StepLimitReached),
        STATUS_STALLED => Some(EndpointStatus::Stalled),
        STATUS_FAILED => Some(EndpointStatus::Failed {
            error: get_str(bytes)?,
        }),
        other => {
            return Err(RuntimeError::Codec {
                reason: format!("unknown status tag {other}"),
            })
        }
    })
}

fn put_opt_u64(buf: &mut BytesMut, value: Option<u64>) {
    match value {
        None => buf.put_u8(0),
        Some(v) => {
            buf.put_u8(1);
            buf.put_u64(v);
        }
    }
}

fn get_opt_u64(bytes: &mut &[u8]) -> Result<Option<u64>> {
    match get_u8(bytes)? {
        0 => Ok(None),
        1 => Ok(Some(get_u64(bytes)?)),
        other => Err(RuntimeError::Codec {
            reason: format!("unknown option tag {other}"),
        }),
    }
}

fn get_bool(bytes: &mut &[u8]) -> Result<bool> {
    match get_u8(bytes)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(RuntimeError::Codec {
            reason: format!("unknown boolean tag {other}"),
        }),
    }
}
