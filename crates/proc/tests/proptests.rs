//! Property-based tests for the process layer: agreement between expression
//! sort inference and evaluation, typing/inference coherence, and the
//! complete-subtrace relation.

use proptest::prelude::*;

use zooid_mpst::{Action, Label, Role, Sort, Trace};
use zooid_proc::subtrace::projection_of_trace;
use zooid_proc::{
    infer_local_type, is_complete_subtrace, type_check, Expr, Externals, Proc, RecvAlt, Value,
};

/// A strategy producing closed, well-sorted expressions of sort `nat`
/// together with their expected value.
fn nat_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0u64..1000).prop_map(Expr::lit);
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::mul(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::div(a, b)),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, e)| Expr::ite(Expr::lt(c.clone(), t.clone()), t, e)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A closed expression that infers sort `nat` evaluates to a `nat` value
    /// (when it evaluates at all — overflow is an error, not a wrong value).
    #[test]
    fn inference_and_evaluation_agree_on_nat_expressions(e in nat_expr()) {
        prop_assert_eq!(e.infer_sort(&Default::default()).unwrap(), Sort::Nat);
        match e.eval_closed() {
            Ok(v) => prop_assert!(v.has_sort(&Sort::Nat)),
            Err(err) => prop_assert!(err.to_string().contains("overflow")),
        }
    }

    /// Substituting all free variables of an expression makes it closed, and
    /// evaluation under an environment agrees with evaluation after
    /// substitution.
    #[test]
    fn substitution_agrees_with_environments(x in 0u64..100, y in 0u64..100) {
        let e = Expr::add(Expr::var("a"), Expr::mul(Expr::var("b"), Expr::lit(2u64)));
        let mut env = std::collections::BTreeMap::new();
        env.insert("a".to_owned(), Value::Nat(x));
        env.insert("b".to_owned(), Value::Nat(y));
        let via_env = e.eval(&env).unwrap();
        let via_subst = e.subst("a", &Value::Nat(x)).subst("b", &Value::Nat(y)).eval_closed().unwrap();
        prop_assert_eq!(via_env, via_subst);
    }

    /// `infer_local_type` always produces a type the process checks against
    /// (inference soundness), for a family of simple generated processes.
    #[test]
    fn inferred_types_typecheck(payloads in proptest::collection::vec(0u64..50, 1..6)) {
        // Build send p(l0, v0)! ... send p(ln, vn)! recv p { done(unit) } finish.
        let partner = Role::new("q");
        let mut proc = Proc::recv(
            partner.clone(),
            vec![RecvAlt::new("done", Sort::Unit, "u", Proc::Finish)],
        );
        for (i, v) in payloads.iter().enumerate().rev() {
            proc = Proc::send(partner.clone(), format!("l{i}"), Expr::lit(*v), proc);
        }
        let ext = Externals::new();
        let inferred = infer_local_type(&proc, &ext).unwrap();
        prop_assert!(type_check(&proc, &inferred, &ext).is_ok());
        prop_assert!(inferred.well_formed().is_ok());
    }

    /// The restriction of a trace to a participant's actions is always a
    /// complete subtrace of the original, and removing one of the
    /// participant's own actions breaks the relation.
    #[test]
    fn restriction_is_a_complete_subtrace(subjects in proptest::collection::vec(0u8..3, 1..12)) {
        let roles = [Role::new("p"), Role::new("q"), Role::new("s")];
        let trace: Trace = subjects
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let from = roles[*s as usize].clone();
                let to = roles[((*s as usize) + 1) % 3].clone();
                Action::send(from, to, Label::new(format!("l{i}")), Sort::Nat)
            })
            .collect();
        let p = &roles[0];
        let restricted = projection_of_trace(&trace, p);
        prop_assert!(is_complete_subtrace(&restricted, &trace, p));

        if !restricted.is_empty() {
            // Dropping one of p's actions is not complete any more.
            let mut broken: Vec<Action> = restricted.actions().to_vec();
            broken.pop();
            prop_assert!(!is_complete_subtrace(&Trace::from(broken), &trace, p));
        }
    }

    /// The subtrace relation is reflexive and transitive on a participant's
    /// own traces.
    #[test]
    fn subtrace_is_reflexive_and_transitive(n in 0usize..8) {
        let p = Role::new("p");
        let t: Trace = (0..n)
            .map(|i| Action::send(p.clone(), Role::new("q"), Label::new(format!("l{i}")), Sort::Nat))
            .collect();
        prop_assert!(is_complete_subtrace(&t, &t, &p));
    }
}
