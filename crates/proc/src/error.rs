//! Error types for the process layer.

use std::fmt;

use zooid_mpst::{Label, Role, Sort};

/// A specialised `Result` for process-layer operations.
pub type Result<T> = std::result::Result<T, ProcError>;

/// Errors produced by expression evaluation, process typing and the process
/// semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProcError {
    /// An expression variable is not bound.
    UnboundVariable {
        /// The missing variable.
        name: String,
    },
    /// An expression or payload has a different sort than expected.
    SortMismatch {
        /// What the context required.
        expected: Sort,
        /// What was found.
        found: Sort,
        /// Where the mismatch occurred.
        context: String,
    },
    /// An arithmetic or logical operation was applied to values of the wrong
    /// shape.
    IllTypedOperation {
        /// Description of the offending operation.
        context: String,
    },
    /// Division or subtraction underflow/overflow on naturals.
    ArithmeticError {
        /// Description of the failure.
        context: String,
    },
    /// An external action was used but not declared (or not registered).
    UnknownExternal {
        /// The missing action name.
        name: String,
    },
    /// A process does not have the local type it was checked against.
    TypeError {
        /// Why the typing rule failed.
        reason: String,
    },
    /// A `send`/`recv` refers to a label that the local type does not offer.
    UnknownLabel {
        /// The offending label.
        label: Label,
        /// The communication partner.
        partner: Role,
    },
    /// A receive does not implement every alternative of its local type
    /// (rule `[p-ty-recv]` requires all of them).
    MissingAlternative {
        /// The label that is not handled.
        label: Label,
    },
    /// A jump refers to a recursion binder that is not in scope.
    UnboundJump {
        /// de Bruijn index of the jump.
        index: u32,
    },
    /// The process attempted a communication the runtime cannot perform
    /// (wrong state, closed peer, bad payload, ...).
    Stuck {
        /// Description of the attempted step.
        context: String,
    },
    /// An error bubbled up from the session-type layer (ill-formed or
    /// unprojectable protocol).
    Mpst(zooid_mpst::Error),
}

impl fmt::Display for ProcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcError::UnboundVariable { name } => write!(f, "unbound variable `{name}`"),
            ProcError::SortMismatch {
                expected,
                found,
                context,
            } => write!(f, "expected sort {expected} but found {found} in {context}"),
            ProcError::IllTypedOperation { context } => {
                write!(f, "ill-typed operation: {context}")
            }
            ProcError::ArithmeticError { context } => write!(f, "arithmetic error: {context}"),
            ProcError::UnknownExternal { name } => write!(f, "unknown external action `{name}`"),
            ProcError::TypeError { reason } => write!(f, "process is not well-typed: {reason}"),
            ProcError::UnknownLabel { label, partner } => {
                write!(f, "label `{label}` is not offered in the exchange with `{partner}`")
            }
            ProcError::MissingAlternative { label } => {
                write!(f, "receive does not handle the alternative `{label}`")
            }
            ProcError::UnboundJump { index } => {
                write!(f, "jump to an unbound recursion variable (index {index})")
            }
            ProcError::Stuck { context } => write!(f, "process is stuck: {context}"),
            ProcError::Mpst(e) => write!(f, "session-type error: {e}"),
        }
    }
}

impl std::error::Error for ProcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProcError::Mpst(e) => Some(e),
            _ => None,
        }
    }
}

impl From<zooid_mpst::Error> for ProcError {
    fn from(e: zooid_mpst::Error) -> Self {
        ProcError::Mpst(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_without_trailing_punctuation() {
        let cases = vec![
            ProcError::UnboundVariable { name: "x".into() },
            ProcError::SortMismatch {
                expected: Sort::Nat,
                found: Sort::Bool,
                context: "payload of send".into(),
            },
            ProcError::IllTypedOperation {
                context: "adding a bool".into(),
            },
            ProcError::ArithmeticError {
                context: "nat underflow".into(),
            },
            ProcError::UnknownExternal { name: "compute".into() },
            ProcError::TypeError {
                reason: "finish against a send type".into(),
            },
            ProcError::UnknownLabel {
                label: Label::new("l"),
                partner: Role::new("q"),
            },
            ProcError::MissingAlternative {
                label: Label::new("l2"),
            },
            ProcError::UnboundJump { index: 1 },
            ProcError::Stuck {
                context: "receive on a closed channel".into(),
            },
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ProcError>();
    }
}
