//! The process syntax `Proc` (Definition 4.1, `Proc.v`).

use std::fmt;

use serde::{Deserialize, Serialize};
use zooid_mpst::{Label, Role, Sort};

use crate::expr::Expr;

/// One alternative of a receiving process: the label it reacts to, the sort
/// of the payload, the variable the payload is bound to and the continuation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecvAlt {
    /// The label this alternative handles.
    pub label: Label,
    /// The sort of the payload.
    pub sort: Sort,
    /// The name the payload is bound to in the continuation.
    pub var: String,
    /// The continuation process.
    pub cont: Proc,
}

impl RecvAlt {
    /// Creates a receive alternative.
    pub fn new(
        label: impl Into<Label>,
        sort: Sort,
        var: impl Into<String>,
        cont: Proc,
    ) -> Self {
        RecvAlt {
            label: label.into(),
            sort,
            var: var.into(),
            cont,
        }
    }
}

/// A (core) Zooid process: the behaviour of a single participant.
///
/// ```text
/// proc ::= finish | jump X | loop X { e }
///        | recv p { l_i . e_i }_{i in I} | send p (l, e) . e
///        | read act_r (x. e) | write act_w e_v e | interact act_i e_v (x. e)
///        | if e then e else e
/// ```
///
/// The paper embeds processes in Gallina, so arbitrary host-language
/// expressions can appear between actions. Here the "ambient calculus" is the
/// deeply-embedded [`Expr`] language: conditionals are a process constructor
/// ([`Proc::Cond`], as in the Zooid surface syntax of Definition 4.3) and
/// payloads/conditions are [`Expr`]s. Recursion uses de Bruijn indices, like
/// local types, so that a well-typed process lines up binder-by-binder with
/// its local type.
///
/// # Examples
///
/// The §2.3 process for `Alice`:
/// `send Bob (l, x:nat)! recv Carol (l, y:nat)? finish`
///
/// ```
/// use zooid_proc::{Expr, Proc, RecvAlt};
/// use zooid_mpst::{Role, Sort};
///
/// let alice = Proc::send(
///     Role::new("Bob"), "l", Expr::lit(7u64),
///     Proc::recv(Role::new("Carol"), vec![RecvAlt::new("l", Sort::Nat, "y", Proc::Finish)]),
/// );
/// assert_eq!(alice.size(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Proc {
    /// The terminated process.
    Finish,
    /// A jump to the recursion binder with the given de Bruijn index.
    Jump(u32),
    /// A recursive process `loop X { body }`.
    Loop(Box<Proc>),
    /// `send p (l, e). cont`: send label `label` with payload `payload` to
    /// `to`, then continue.
    Send {
        /// The partner the message is sent to.
        to: Role,
        /// The label selecting the branch.
        label: Label,
        /// The payload expression.
        payload: Expr,
        /// The continuation.
        cont: Box<Proc>,
    },
    /// `recv p { l_i . e_i }`: wait for a message from `from` and branch on
    /// its label, binding the payload.
    Recv {
        /// The partner the message is expected from.
        from: Role,
        /// The handled alternatives.
        alts: Vec<RecvAlt>,
    },
    /// `if cond then then_branch else else_branch` — both branches must have
    /// the same local type.
    Cond {
        /// The boolean condition.
        cond: Expr,
        /// Taken when the condition evaluates to `true`.
        then_branch: Box<Proc>,
        /// Taken when the condition evaluates to `false`.
        else_branch: Box<Proc>,
    },
    /// `read act (x. cont)`: obtain a value from the environment and bind it.
    Read {
        /// Name of the registered external action.
        action: String,
        /// The variable the result is bound to.
        var: String,
        /// The continuation.
        cont: Box<Proc>,
    },
    /// `write act e cont`: hand a value to the environment.
    Write {
        /// Name of the registered external action.
        action: String,
        /// The argument expression.
        arg: Expr,
        /// The continuation.
        cont: Box<Proc>,
    },
    /// `interact act e (x. cont)`: hand a value to the environment and bind
    /// the response.
    Interact {
        /// Name of the registered external action.
        action: String,
        /// The argument expression.
        arg: Expr,
        /// The variable the response is bound to.
        var: String,
        /// The continuation.
        cont: Box<Proc>,
    },
}

impl Proc {
    /// Builds a `send` process.
    pub fn send(to: Role, label: impl Into<Label>, payload: Expr, cont: Proc) -> Proc {
        Proc::Send {
            to,
            label: label.into(),
            payload,
            cont: Box::new(cont),
        }
    }

    /// Builds a `recv` process from its alternatives.
    pub fn recv(from: Role, alts: Vec<RecvAlt>) -> Proc {
        Proc::Recv { from, alts }
    }

    /// Builds a single-alternative `recv` process.
    pub fn recv1(
        from: Role,
        label: impl Into<Label>,
        sort: Sort,
        var: impl Into<String>,
        cont: Proc,
    ) -> Proc {
        Proc::recv(from, vec![RecvAlt::new(label, sort, var, cont)])
    }

    /// Builds a `loop` process.
    pub fn loop_(body: Proc) -> Proc {
        Proc::Loop(Box::new(body))
    }

    /// Builds an `if` process.
    pub fn cond(cond: Expr, then_branch: Proc, else_branch: Proc) -> Proc {
        Proc::Cond {
            cond,
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
        }
    }

    /// Builds a `read` process.
    pub fn read(action: impl Into<String>, var: impl Into<String>, cont: Proc) -> Proc {
        Proc::Read {
            action: action.into(),
            var: var.into(),
            cont: Box::new(cont),
        }
    }

    /// Builds a `write` process.
    pub fn write(action: impl Into<String>, arg: Expr, cont: Proc) -> Proc {
        Proc::Write {
            action: action.into(),
            arg,
            cont: Box::new(cont),
        }
    }

    /// Builds an `interact` process.
    pub fn interact(
        action: impl Into<String>,
        arg: Expr,
        var: impl Into<String>,
        cont: Proc,
    ) -> Proc {
        Proc::Interact {
            action: action.into(),
            arg,
            var: var.into(),
            cont: Box::new(cont),
        }
    }

    /// Structural size of the process (number of process constructors).
    pub fn size(&self) -> usize {
        match self {
            Proc::Finish | Proc::Jump(_) => 1,
            Proc::Loop(body) => 1 + body.size(),
            Proc::Send { cont, .. }
            | Proc::Read { cont, .. }
            | Proc::Write { cont, .. }
            | Proc::Interact { cont, .. } => 1 + cont.size(),
            Proc::Recv { alts, .. } => 1 + alts.iter().map(|a| a.cont.size()).sum::<usize>(),
            Proc::Cond {
                then_branch,
                else_branch,
                ..
            } => 1 + then_branch.size() + else_branch.size(),
        }
    }

    /// Every communication partner mentioned by the process.
    pub fn partners(&self) -> Vec<Role> {
        let mut out = Vec::new();
        self.collect_partners(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_partners(&self, out: &mut Vec<Role>) {
        match self {
            Proc::Finish | Proc::Jump(_) => {}
            Proc::Loop(body) => body.collect_partners(out),
            Proc::Send { to, cont, .. } => {
                out.push(to.clone());
                cont.collect_partners(out);
            }
            Proc::Recv { from, alts } => {
                out.push(from.clone());
                for a in alts {
                    a.cont.collect_partners(out);
                }
            }
            Proc::Cond {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.collect_partners(out);
                else_branch.collect_partners(out);
            }
            Proc::Read { cont, .. } | Proc::Write { cont, .. } | Proc::Interact { cont, .. } => {
                cont.collect_partners(out);
            }
        }
    }

    /// Substitutes a value for a free expression variable throughout the
    /// process (used when a receive, `read` or `interact` binds a value).
    #[must_use]
    pub fn subst_value(&self, name: &str, value: &crate::value::Value) -> Proc {
        match self {
            Proc::Finish => Proc::Finish,
            Proc::Jump(i) => Proc::Jump(*i),
            Proc::Loop(body) => Proc::loop_(body.subst_value(name, value)),
            Proc::Send {
                to,
                label,
                payload,
                cont,
            } => Proc::Send {
                to: to.clone(),
                label: label.clone(),
                payload: payload.subst(name, value),
                cont: Box::new(cont.subst_value(name, value)),
            },
            Proc::Recv { from, alts } => Proc::Recv {
                from: from.clone(),
                alts: alts
                    .iter()
                    .map(|a| {
                        // The alternative's binder shadows the substituted
                        // variable in its continuation.
                        let cont = if a.var == name {
                            a.cont.clone()
                        } else {
                            a.cont.subst_value(name, value)
                        };
                        RecvAlt {
                            label: a.label.clone(),
                            sort: a.sort.clone(),
                            var: a.var.clone(),
                            cont,
                        }
                    })
                    .collect(),
            },
            Proc::Cond {
                cond,
                then_branch,
                else_branch,
            } => Proc::Cond {
                cond: cond.subst(name, value),
                then_branch: Box::new(then_branch.subst_value(name, value)),
                else_branch: Box::new(else_branch.subst_value(name, value)),
            },
            Proc::Read { action, var, cont } => Proc::Read {
                action: action.clone(),
                var: var.clone(),
                cont: Box::new(if var == name {
                    (**cont).clone()
                } else {
                    cont.subst_value(name, value)
                }),
            },
            Proc::Write { action, arg, cont } => Proc::Write {
                action: action.clone(),
                arg: arg.subst(name, value),
                cont: Box::new(cont.subst_value(name, value)),
            },
            Proc::Interact {
                action,
                arg,
                var,
                cont,
            } => Proc::Interact {
                action: action.clone(),
                arg: arg.subst(name, value),
                var: var.clone(),
                cont: Box::new(if var == name {
                    (**cont).clone()
                } else {
                    cont.subst_value(name, value)
                }),
            },
        }
    }

    /// Substitutes a process for jumps to the given de Bruijn index (used to
    /// unfold `loop`, rule `[p-step-loop]`).
    #[must_use]
    pub fn subst_jump(&self, depth: u32, repl: &Proc) -> Proc {
        match self {
            Proc::Finish => Proc::Finish,
            Proc::Jump(i) => {
                if *i == depth {
                    repl.clone()
                } else if *i > depth {
                    Proc::Jump(*i - 1)
                } else {
                    Proc::Jump(*i)
                }
            }
            Proc::Loop(body) => Proc::loop_(body.subst_jump(depth + 1, repl)),
            Proc::Send {
                to,
                label,
                payload,
                cont,
            } => Proc::Send {
                to: to.clone(),
                label: label.clone(),
                payload: payload.clone(),
                cont: Box::new(cont.subst_jump(depth, repl)),
            },
            Proc::Recv { from, alts } => Proc::Recv {
                from: from.clone(),
                alts: alts
                    .iter()
                    .map(|a| RecvAlt {
                        label: a.label.clone(),
                        sort: a.sort.clone(),
                        var: a.var.clone(),
                        cont: a.cont.subst_jump(depth, repl),
                    })
                    .collect(),
            },
            Proc::Cond {
                cond,
                then_branch,
                else_branch,
            } => Proc::Cond {
                cond: cond.clone(),
                then_branch: Box::new(then_branch.subst_jump(depth, repl)),
                else_branch: Box::new(else_branch.subst_jump(depth, repl)),
            },
            Proc::Read { action, var, cont } => Proc::Read {
                action: action.clone(),
                var: var.clone(),
                cont: Box::new(cont.subst_jump(depth, repl)),
            },
            Proc::Write { action, arg, cont } => Proc::Write {
                action: action.clone(),
                arg: arg.clone(),
                cont: Box::new(cont.subst_jump(depth, repl)),
            },
            Proc::Interact {
                action,
                arg,
                var,
                cont,
            } => Proc::Interact {
                action: action.clone(),
                arg: arg.clone(),
                var: var.clone(),
                cont: Box::new(cont.subst_jump(depth, repl)),
            },
        }
    }

    /// One unfolding of a `loop`: `loop { body }` becomes
    /// `body[jump 0 := loop { body }]`; other processes are unchanged.
    #[must_use]
    pub fn unfold_once(&self) -> Proc {
        match self {
            Proc::Loop(body) => body.subst_jump(0, self),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Proc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proc::Finish => f.write_str("finish"),
            Proc::Jump(i) => write!(f, "jump X{i}"),
            Proc::Loop(body) => write!(f, "loop {{ {body} }}"),
            Proc::Send {
                to,
                label,
                payload,
                cont,
            } => write!(f, "send {to}({label}, {payload})! {cont}"),
            Proc::Recv { from, alts } => {
                write!(f, "recv {from}{{")?;
                for (i, a) in alts.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{}({}: {}) ? {}", a.label, a.var, a.sort, a.cont)?;
                }
                f.write_str("}")
            }
            Proc::Cond {
                cond,
                then_branch,
                else_branch,
            } => write!(f, "if {cond} then {then_branch} else {else_branch}"),
            Proc::Read { action, var, cont } => write!(f, "read {action}({var}. {cont})"),
            Proc::Write { action, arg, cont } => write!(f, "write {action} {arg} {cont}"),
            Proc::Interact {
                action,
                arg,
                var,
                cont,
            } => write!(f, "interact {action} {arg} ({var}. {cont})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    /// The `procq` example of §4.1: a server that keeps adding `m` to the
    /// received number until the client quits.
    fn server(m: u64) -> Proc {
        Proc::loop_(Proc::recv(
            r("p"),
            vec![
                RecvAlt::new(
                    "l1",
                    Sort::Nat,
                    "x",
                    Proc::send(
                        r("p"),
                        "l1",
                        Expr::add(Expr::var("x"), Expr::lit(m)),
                        Proc::Jump(0),
                    ),
                ),
                RecvAlt::new("l2", Sort::Unit, "x", Proc::Finish),
            ],
        ))
    }

    #[test]
    fn size_and_partners() {
        let s = server(3);
        assert_eq!(s.size(), 5);
        assert_eq!(s.partners(), vec![r("p")]);
    }

    #[test]
    fn unfolding_a_loop_substitutes_jumps() {
        let s = server(3);
        let unfolded = s.unfold_once();
        // The unfolded process starts with the receive and the jump has been
        // replaced by the whole loop.
        match &unfolded {
            Proc::Recv { alts, .. } => match &alts[0].cont {
                Proc::Send { cont, .. } => assert_eq!(**cont, s),
                other => panic!("expected send, got {other}"),
            },
            other => panic!("expected recv, got {other}"),
        }
        // Non-loops unfold to themselves.
        assert_eq!(Proc::Finish.unfold_once(), Proc::Finish);
    }

    #[test]
    fn value_substitution_respects_binders() {
        // send q (l, x)! recv q { l(x: nat) ? send q (l, x)! finish }
        let p = Proc::send(
            r("q"),
            "l",
            Expr::var("x"),
            Proc::recv1(
                r("q"),
                "l",
                Sort::Nat,
                "x",
                Proc::send(r("q"), "l", Expr::var("x"), Proc::Finish),
            ),
        );
        let substituted = p.subst_value("x", &Value::Nat(1));
        match &substituted {
            Proc::Send { payload, cont, .. } => {
                assert_eq!(payload, &Expr::lit(1u64));
                // The inner x is re-bound by the receive, so it must *not*
                // have been substituted.
                match &**cont {
                    Proc::Recv { alts, .. } => match &alts[0].cont {
                        Proc::Send { payload, .. } => assert_eq!(payload, &Expr::var("x")),
                        other => panic!("unexpected {other}"),
                    },
                    other => panic!("unexpected {other}"),
                }
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn jump_substitution_adjusts_outer_indices() {
        // loop { if c then jump 0 else jump 1 }: unfolding replaces jump 0
        // and decrements jump 1 (it now refers to the next enclosing loop).
        let body = Proc::cond(Expr::lit(true), Proc::Jump(0), Proc::Jump(1));
        let looped = Proc::loop_(body);
        let unfolded = looped.unfold_once();
        match unfolded {
            Proc::Cond {
                then_branch,
                else_branch,
                ..
            } => {
                assert_eq!(*then_branch, looped);
                assert_eq!(*else_branch, Proc::Jump(0));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn display_is_readable() {
        let p = Proc::send(r("q"), "l", Expr::lit(1u64), Proc::Finish);
        assert_eq!(p.to_string(), "send q(l, 1)! finish");
    }

    #[test]
    fn external_constructors_build_the_expected_shape() {
        let p = Proc::read(
            "query",
            "x",
            Proc::write(
                "log",
                Expr::var("x"),
                Proc::interact("compute", Expr::var("x"), "y", Proc::Finish),
            ),
        );
        assert_eq!(p.size(), 4);
        assert!(p.partners().is_empty());
    }
}
