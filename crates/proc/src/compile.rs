//! Compilation of processes to flat instruction tables — the bytecode-over-AST
//! move applied to the data plane.
//!
//! [`crate::semantics::do_step`] and the tree-walking executors interpret a
//! [`Proc`] by structural recursion: every visible step re-normalises the
//! head, substitutes values through the whole continuation and (for loops)
//! rebuilds the unfolded tree. All of that work is *shape-directed* — it
//! depends only on the process, never on the values — so it can be done once.
//! [`CompiledProc::compile`] lowers a process into:
//!
//! * a dense array of [`Instr`]uctions addressed by program counter, with
//!   loop back-edges resolved at compile time (a `jump` is a `u32`, not a
//!   substitution);
//! * interned [`RoleId`]/[`LabelId`]/[`SortId`] ids for every send, receive
//!   and branch (a private [`Interner`] is used during compilation and kept
//!   as a read-only [`InternerSnapshot`]), so executors and monitors compare
//!   dense ids instead of hashing strings;
//! * value **slots** indexed by dense variable ids: a receive/`read`/
//!   `interact` binder writes its value into a pre-allocated slot and
//!   compiled expressions ([`CExpr`]) read slots directly — no name-keyed
//!   substitution, no environment maps.
//!
//! The result is executed by `zooid-runtime`'s compiled endpoint task: one
//! program counter plus one slot array per endpoint, stepping without
//! allocating in the steady state. The tree-walking executor remains the
//! behavioural oracle: compilation preserves the visible semantics exactly,
//! including error behaviour (unbound variables, unknown externals and
//! non-terminating internal reductions fail at the same points with the same
//! errors), which the differential suite in `zooid-runtime` checks.

use zooid_mpst::common::intern::{LabelId, RoleId, SortId};
use zooid_mpst::{Interner, InternerSnapshot, Role, Sort};

use crate::error::{ProcError, Result};
use crate::expr::{compare, numeric, Expr, SortEnv};
use crate::external::Externals;
use crate::proc::Proc;
use crate::value::Value;

/// A compiled expression: the payload/condition language of [`Expr`], with
/// variables resolved to dense slot indices at compile time.
///
/// Evaluation ([`CExpr::eval`]) reads bound values straight out of the
/// task's slot array — no `BTreeMap` environment, no substitution.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// A literal value.
    Lit(Value),
    /// A variable, resolved to the slot its binder writes.
    Slot(u32),
    /// A variable that no enclosing binder binds: evaluating it fails with
    /// [`ProcError::UnboundVariable`], exactly like the tree-walking
    /// executor evaluating the un-substituted name.
    Unbound(String),
    /// Addition (see [`Expr::Add`]).
    Add(Box<CExpr>, Box<CExpr>),
    /// Subtraction (truncated on naturals).
    Sub(Box<CExpr>, Box<CExpr>),
    /// Multiplication.
    Mul(Box<CExpr>, Box<CExpr>),
    /// Euclidean division (zero for zero divisors).
    Div(Box<CExpr>, Box<CExpr>),
    /// Strict "less than".
    Lt(Box<CExpr>, Box<CExpr>),
    /// "Less than or equal".
    Le(Box<CExpr>, Box<CExpr>),
    /// "Greater than or equal".
    Ge(Box<CExpr>, Box<CExpr>),
    /// Structural equality.
    Eq(Box<CExpr>, Box<CExpr>),
    /// Boolean conjunction.
    And(Box<CExpr>, Box<CExpr>),
    /// Boolean disjunction.
    Or(Box<CExpr>, Box<CExpr>),
    /// Boolean negation.
    Not(Box<CExpr>),
    /// Conditional expression.
    If(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    /// Pair construction.
    Pair(Box<CExpr>, Box<CExpr>),
    /// First projection.
    Fst(Box<CExpr>),
    /// Second projection.
    Snd(Box<CExpr>),
}

impl CExpr {
    /// Evaluates the expression against the task's slot array.
    ///
    /// # Errors
    ///
    /// Fails with the same [`ProcError`]s as [`Expr::eval`] on the
    /// corresponding source expression.
    pub fn eval(&self, slots: &[Value]) -> Result<Value> {
        self.eval_strided(slots, 1, 0)
    }

    /// Evaluates the expression against a **strided** slot column: slot `i`
    /// lives at `slots[i * stride + offset]`. This is how the columnar batch
    /// executor reads one session's variables out of a struct-of-arrays
    /// column shared by the whole batch (`stride` = batch capacity,
    /// `offset` = session index); `eval` is the `stride == 1` special case.
    pub fn eval_strided(&self, slots: &[Value], stride: usize, offset: usize) -> Result<Value> {
        match self {
            CExpr::Lit(v) => Ok(v.clone()),
            CExpr::Slot(i) => Ok(slots[*i as usize * stride + offset].clone()),
            CExpr::Unbound(name) => Err(ProcError::UnboundVariable { name: name.clone() }),
            CExpr::Add(a, b) => numeric(
                a.eval_strided(slots, stride, offset)?,
                b.eval_strided(slots, stride, offset)?,
                "+",
                |x, y| x.checked_add(y),
                |x, y| Some(x + y),
            ),
            CExpr::Sub(a, b) => numeric(
                a.eval_strided(slots, stride, offset)?,
                b.eval_strided(slots, stride, offset)?,
                "-",
                |x, y| Some(x.saturating_sub(y)),
                |x, y| Some(x - y),
            ),
            CExpr::Mul(a, b) => numeric(
                a.eval_strided(slots, stride, offset)?,
                b.eval_strided(slots, stride, offset)?,
                "*",
                |x, y| x.checked_mul(y),
                |x, y| Some(x * y),
            ),
            CExpr::Div(a, b) => numeric(
                a.eval_strided(slots, stride, offset)?,
                b.eval_strided(slots, stride, offset)?,
                "/",
                |x, y| Some(if y == 0 { 0 } else { x / y }),
                |x, y| Some(if y == 0 { 0 } else { x / y }),
            ),
            CExpr::Lt(a, b) => compare(
                a.eval_strided(slots, stride, offset)?,
                b.eval_strided(slots, stride, offset)?,
                |o| o == std::cmp::Ordering::Less,
            ),
            CExpr::Le(a, b) => compare(
                a.eval_strided(slots, stride, offset)?,
                b.eval_strided(slots, stride, offset)?,
                |o| o != std::cmp::Ordering::Greater,
            ),
            CExpr::Ge(a, b) => compare(
                a.eval_strided(slots, stride, offset)?,
                b.eval_strided(slots, stride, offset)?,
                |o| o != std::cmp::Ordering::Less,
            ),
            CExpr::Eq(a, b) => Ok(Value::Bool(
                a.eval_strided(slots, stride, offset)? == b.eval_strided(slots, stride, offset)?,
            )),
            CExpr::And(a, b) => Ok(Value::Bool(
                a.eval_strided(slots, stride, offset)?.as_bool()?
                    && b.eval_strided(slots, stride, offset)?.as_bool()?,
            )),
            CExpr::Or(a, b) => Ok(Value::Bool(
                a.eval_strided(slots, stride, offset)?.as_bool()?
                    || b.eval_strided(slots, stride, offset)?.as_bool()?,
            )),
            CExpr::Not(a) => Ok(Value::Bool(!a.eval_strided(slots, stride, offset)?.as_bool()?)),
            CExpr::If(c, t, e) => {
                if c.eval_strided(slots, stride, offset)?.as_bool()? {
                    t.eval_strided(slots, stride, offset)
                } else {
                    e.eval_strided(slots, stride, offset)
                }
            }
            CExpr::Pair(a, b) => Ok(Value::pair(
                a.eval_strided(slots, stride, offset)?,
                b.eval_strided(slots, stride, offset)?,
            )),
            CExpr::Fst(a) => match a.eval_strided(slots, stride, offset)? {
                Value::Pair(x, _) => Ok(*x),
                other => Err(ProcError::IllTypedOperation {
                    context: format!("fst of {other}"),
                }),
            },
            CExpr::Snd(a) => match a.eval_strided(slots, stride, offset)? {
                Value::Pair(_, y) => Ok(*y),
                other => Err(ProcError::IllTypedOperation {
                    context: format!("snd of {other}"),
                }),
            },
        }
    }
}

/// One alternative of a compiled receive.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// Interned id of the label this alternative handles.
    pub label: LabelId,
    /// Interned id of the declared payload sort.
    pub sort: SortId,
    /// Slot the payload is written into.
    pub slot: u32,
    /// Event id of the receive action performed by this arm (an index into
    /// [`CompiledProc::events`]).
    pub event: u32,
    /// Program counter of the continuation.
    pub next: u32,
}

/// One instruction of a compiled process.
///
/// Loops compile away entirely: a `jump` is a `next`/`then_pc`/`else_pc`
/// field pointing back at the loop head, so the executor never unfolds or
/// re-normalises anything.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// The terminated process.
    Finish,
    /// Send `label` with the evaluated `payload` to `peer`, continue at
    /// `next`.
    Send {
        /// Interned id of the partner role.
        peer: RoleId,
        /// Interned id of the message label.
        label: LabelId,
        /// The compiled payload expression.
        payload: CExpr,
        /// Event id of the send action (index into
        /// [`CompiledProc::events`]).
        event: u32,
        /// Program counter of the continuation.
        next: u32,
    },
    /// Wait for a message from `peer` and dispatch on its label.
    Recv {
        /// Interned id of the partner role.
        peer: RoleId,
        /// The handled alternatives.
        arms: Box<[Arm]>,
    },
    /// Branch on a boolean condition (an internal action).
    Cond {
        /// The compiled condition.
        cond: CExpr,
        /// Program counter when the condition is `true`.
        then_pc: u32,
        /// Program counter when the condition is `false`.
        else_pc: u32,
    },
    /// Call a `read` external action and bind its result.
    Read {
        /// Index into [`CompiledProc::action_names`].
        action: u32,
        /// Slot the result is written into.
        slot: u32,
        /// Program counter of the continuation.
        next: u32,
    },
    /// Call a `write` external action with the evaluated argument.
    Write {
        /// Index into [`CompiledProc::action_names`].
        action: u32,
        /// The compiled argument expression.
        arg: CExpr,
        /// Program counter of the continuation.
        next: u32,
    },
    /// Call an `interact` external action and bind its response.
    Interact {
        /// Index into [`CompiledProc::action_names`].
        action: u32,
        /// The compiled argument expression.
        arg: CExpr,
        /// Slot the response is written into.
        slot: u32,
        /// Program counter of the continuation.
        next: u32,
    },
}

/// Static metadata of one visible communication site (a send instruction or
/// one receive arm), used by executors and monitors to pre-resolve the
/// action the site performs.
#[derive(Debug, Clone, PartialEq)]
pub struct EventMeta {
    /// `true` for a send site, `false` for a receive arm.
    pub is_send: bool,
    /// Interned id of the partner role.
    pub peer: RoleId,
    /// Interned id of the message label.
    pub label: LabelId,
    /// The statically inferred payload sort of a send site (receive arms
    /// always know their declared sort). `None` when inference failed — the
    /// executor then resolves the action dynamically, exactly like the
    /// tree-walking path.
    pub static_sort: Option<SortId>,
}

/// A certified process lowered once into a flat instruction table.
///
/// # Examples
///
/// ```
/// use zooid_proc::{CompiledProc, Expr, Externals, Proc};
/// use zooid_mpst::Role;
///
/// // loop { send q (l, 1)! jump 0 } — the loop becomes a back-edge.
/// let p = Proc::loop_(Proc::send(Role::new("q"), "l", Expr::lit(1u64), Proc::Jump(0)));
/// let compiled = CompiledProc::compile(&p, &Role::new("p"), &Externals::new()).unwrap();
/// assert_eq!(compiled.instr_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledProc {
    role: Role,
    entry: u32,
    instrs: Vec<Instr>,
    events: Vec<EventMeta>,
    action_names: Vec<String>,
    slot_count: u32,
    /// Declared sort of each slot, `None` when unknown (externals without a
    /// declared signature).
    slot_sorts: Vec<Option<Sort>>,
    snapshot: InternerSnapshot,
}

impl CompiledProc {
    /// Lowers `proc` (playing `role`) into a compiled program.
    ///
    /// `externals` is consulted only for *declared signatures* (the result
    /// sorts of `read`/`interact` binders feed the static sort inference of
    /// later sends); implementations are irrelevant here and are supplied at
    /// run time. A program compiled against one `Externals` runs correctly
    /// with any other — missing signatures only disable static-sort hints.
    ///
    /// # Errors
    ///
    /// Fails with [`ProcError::UnboundJump`] on a jump without an enclosing
    /// loop, and [`ProcError::Stuck`] on a loop whose body can never reach
    /// an instruction (`loop { jump 0 }` and friends) — both of which the
    /// tree-walking executor would only discover at run time.
    pub fn compile(proc: &Proc, role: &Role, externals: &Externals) -> Result<CompiledProc> {
        let mut ctx = Compiler {
            interner: Interner::new(),
            instrs: Vec::new(),
            events: Vec::new(),
            action_names: Vec::new(),
            slot_sorts: Vec::new(),
            scope: Vec::new(),
            loop_stack: Vec::new(),
            externals,
        };
        let entry = ctx.compile_proc(proc)?;
        Ok(CompiledProc {
            role: role.clone(),
            entry,
            instrs: ctx.instrs,
            events: ctx.events,
            action_names: ctx.action_names,
            slot_count: u32::try_from(ctx.slot_sorts.len()).expect("slot table overflow"),
            slot_sorts: ctx.slot_sorts,
            snapshot: ctx.interner.snapshot(),
        })
    }

    /// The role the program plays.
    pub fn role(&self) -> &Role {
        &self.role
    }

    /// Program counter of the first instruction.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// The instruction table.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn instr_count(&self) -> usize {
        self.instrs.len()
    }

    /// Metadata of every visible communication site, indexed by event id.
    pub fn events(&self) -> &[EventMeta] {
        &self.events
    }

    /// Names of the external actions the program calls, indexed by the
    /// `action` field of [`Instr::Read`]/[`Instr::Write`]/[`Instr::Interact`].
    pub fn action_names(&self) -> &[String] {
        &self.action_names
    }

    /// Returns `true` if the program contains any external-action
    /// instruction (`read`/`write`/`interact`). Programs that do are not
    /// batch-eligible: externals run arbitrary host closures, which the
    /// columnar executor cannot step in lockstep.
    pub fn calls_externals(&self) -> bool {
        !self.action_names.is_empty()
    }

    /// Number of value slots a task running this program needs.
    pub fn slot_count(&self) -> usize {
        self.slot_count as usize
    }

    /// The declared sorts of every slot, indexed by slot id — the
    /// slot-layout metadata a columnar executor uses to lay value columns
    /// out per-slot across sessions.
    pub fn slot_sorts(&self) -> &[Option<Sort>] {
        &self.slot_sorts
    }

    /// The declared sort of a slot, when known (receive binders always are;
    /// `read`/`interact` binders only when their action declared a
    /// signature at compile time).
    pub fn slot_sort(&self, slot: u32) -> Option<&Sort> {
        self.slot_sorts.get(slot as usize).and_then(Option::as_ref)
    }

    /// The read-only snapshot resolving the program's interned ids back to
    /// roles, labels and sorts.
    pub fn snapshot(&self) -> &InternerSnapshot {
        &self.snapshot
    }
}

struct Compiler<'a> {
    interner: Interner,
    instrs: Vec<Instr>,
    events: Vec<EventMeta>,
    action_names: Vec<String>,
    slot_sorts: Vec<Option<Sort>>,
    /// Innermost-last map of in-scope variable names to slots.
    scope: Vec<(String, u32)>,
    /// Program counters of the enclosing loop heads, innermost last.
    loop_stack: Vec<u32>,
    externals: &'a Externals,
}

impl Compiler<'_> {
    fn compile_proc(&mut self, proc: &Proc) -> Result<u32> {
        match proc {
            Proc::Finish => {
                let pc = self.emit(Instr::Finish);
                Ok(pc)
            }
            Proc::Jump(i) => self
                .loop_stack
                .get(self.loop_stack.len().wrapping_sub(1 + *i as usize))
                .copied()
                .ok_or(ProcError::UnboundJump { index: *i }),
            Proc::Loop(body) => {
                // The body's first instruction lands at the current end of
                // the table; jumps back into the loop resolve to it.
                let head = u32::try_from(self.instrs.len()).expect("instruction table overflow");
                let before = self.instrs.len();
                self.loop_stack.push(head);
                let entry = self.compile_proc(body)?;
                self.loop_stack.pop();
                if self.instrs.len() == before {
                    // The body emitted nothing (`loop { jump k }` chains):
                    // the loop can never reach a communication.
                    return Err(ProcError::Stuck {
                        context: "recursion does not reach a communication".to_owned(),
                    });
                }
                Ok(entry)
            }
            Proc::Send {
                to,
                label,
                payload,
                cont,
            } => {
                let pc = self.emit(Instr::Finish); // placeholder
                let peer = self.interner.role_id(to);
                let label_id = self.interner.label_id(label);
                let cpayload = self.compile_expr(payload);
                let static_sort = self
                    .infer_static_sort(payload)
                    .map(|s| self.interner.sort_id(&s));
                let event = self.add_event(EventMeta {
                    is_send: true,
                    peer,
                    label: label_id,
                    static_sort,
                });
                let next = self.compile_proc(cont)?;
                self.instrs[pc as usize] = Instr::Send {
                    peer,
                    label: label_id,
                    payload: cpayload,
                    event,
                    next,
                };
                Ok(pc)
            }
            Proc::Recv { from, alts } => {
                let pc = self.emit(Instr::Finish); // placeholder
                let peer = self.interner.role_id(from);
                let mut arms = Vec::with_capacity(alts.len());
                for alt in alts {
                    let label_id = self.interner.label_id(&alt.label);
                    let sort_id = self.interner.sort_id(&alt.sort);
                    let slot = self.alloc_slot(Some(alt.sort.clone()));
                    let event = self.add_event(EventMeta {
                        is_send: false,
                        peer,
                        label: label_id,
                        static_sort: Some(sort_id),
                    });
                    self.scope.push((alt.var.clone(), slot));
                    let next = self.compile_proc(&alt.cont)?;
                    self.scope.pop();
                    arms.push(Arm {
                        label: label_id,
                        sort: sort_id,
                        slot,
                        event,
                        next,
                    });
                }
                self.instrs[pc as usize] = Instr::Recv {
                    peer,
                    arms: arms.into_boxed_slice(),
                };
                Ok(pc)
            }
            Proc::Cond {
                cond,
                then_branch,
                else_branch,
            } => {
                let pc = self.emit(Instr::Finish); // placeholder
                let ccond = self.compile_expr(cond);
                let then_pc = self.compile_proc(then_branch)?;
                let else_pc = self.compile_proc(else_branch)?;
                self.instrs[pc as usize] = Instr::Cond {
                    cond: ccond,
                    then_pc,
                    else_pc,
                };
                Ok(pc)
            }
            Proc::Read { action, var, cont } => {
                let pc = self.emit(Instr::Finish); // placeholder
                let action_id = self.action_id(action);
                let sort = self
                    .externals
                    .signature(action)
                    .map(|sig| sig.output.clone());
                let slot = self.alloc_slot(sort);
                self.scope.push((var.clone(), slot));
                let next = self.compile_proc(cont)?;
                self.scope.pop();
                self.instrs[pc as usize] = Instr::Read {
                    action: action_id,
                    slot,
                    next,
                };
                Ok(pc)
            }
            Proc::Write { action, arg, cont } => {
                let pc = self.emit(Instr::Finish); // placeholder
                let action_id = self.action_id(action);
                let carg = self.compile_expr(arg);
                let next = self.compile_proc(cont)?;
                self.instrs[pc as usize] = Instr::Write {
                    action: action_id,
                    arg: carg,
                    next,
                };
                Ok(pc)
            }
            Proc::Interact {
                action,
                arg,
                var,
                cont,
            } => {
                let pc = self.emit(Instr::Finish); // placeholder
                let action_id = self.action_id(action);
                let carg = self.compile_expr(arg);
                let sort = self
                    .externals
                    .signature(action)
                    .map(|sig| sig.output.clone());
                let slot = self.alloc_slot(sort);
                self.scope.push((var.clone(), slot));
                let next = self.compile_proc(cont)?;
                self.scope.pop();
                self.instrs[pc as usize] = Instr::Interact {
                    action: action_id,
                    arg: carg,
                    slot,
                    next,
                };
                Ok(pc)
            }
        }
    }

    fn emit(&mut self, instr: Instr) -> u32 {
        let pc = u32::try_from(self.instrs.len()).expect("instruction table overflow");
        self.instrs.push(instr);
        pc
    }

    fn add_event(&mut self, meta: EventMeta) -> u32 {
        let id = u32::try_from(self.events.len()).expect("event table overflow");
        self.events.push(meta);
        id
    }

    fn alloc_slot(&mut self, sort: Option<Sort>) -> u32 {
        let slot = u32::try_from(self.slot_sorts.len()).expect("slot table overflow");
        self.slot_sorts.push(sort);
        slot
    }

    fn action_id(&mut self, name: &str) -> u32 {
        if let Some(idx) = self.action_names.iter().position(|n| n == name) {
            return idx as u32;
        }
        let id = u32::try_from(self.action_names.len()).expect("action table overflow");
        self.action_names.push(name.to_owned());
        id
    }

    /// Resolves a variable name against the scope, innermost binder first.
    fn lookup(&self, name: &str) -> Option<u32> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, slot)| *slot)
    }

    fn compile_expr(&mut self, e: &Expr) -> CExpr {
        let bin = |ctx: &mut Self, a: &Expr, b: &Expr| {
            (Box::new(ctx.compile_expr(a)), Box::new(ctx.compile_expr(b)))
        };
        match e {
            Expr::Lit(v) => CExpr::Lit(v.clone()),
            Expr::Var(x) => match self.lookup(x) {
                Some(slot) => CExpr::Slot(slot),
                None => CExpr::Unbound(x.clone()),
            },
            Expr::Add(a, b) => {
                let (a, b) = bin(self, a, b);
                CExpr::Add(a, b)
            }
            Expr::Sub(a, b) => {
                let (a, b) = bin(self, a, b);
                CExpr::Sub(a, b)
            }
            Expr::Mul(a, b) => {
                let (a, b) = bin(self, a, b);
                CExpr::Mul(a, b)
            }
            Expr::Div(a, b) => {
                let (a, b) = bin(self, a, b);
                CExpr::Div(a, b)
            }
            Expr::Lt(a, b) => {
                let (a, b) = bin(self, a, b);
                CExpr::Lt(a, b)
            }
            Expr::Le(a, b) => {
                let (a, b) = bin(self, a, b);
                CExpr::Le(a, b)
            }
            Expr::Ge(a, b) => {
                let (a, b) = bin(self, a, b);
                CExpr::Ge(a, b)
            }
            Expr::Eq(a, b) => {
                let (a, b) = bin(self, a, b);
                CExpr::Eq(a, b)
            }
            Expr::And(a, b) => {
                let (a, b) = bin(self, a, b);
                CExpr::And(a, b)
            }
            Expr::Or(a, b) => {
                let (a, b) = bin(self, a, b);
                CExpr::Or(a, b)
            }
            Expr::Not(a) => CExpr::Not(Box::new(self.compile_expr(a))),
            Expr::If(c, t, e) => CExpr::If(
                Box::new(self.compile_expr(c)),
                Box::new(self.compile_expr(t)),
                Box::new(self.compile_expr(e)),
            ),
            Expr::Pair(a, b) => {
                let (a, b) = bin(self, a, b);
                CExpr::Pair(a, b)
            }
            Expr::Fst(a) => CExpr::Fst(Box::new(self.compile_expr(a))),
            Expr::Snd(a) => CExpr::Snd(Box::new(self.compile_expr(a))),
        }
    }

    /// Static sort of a payload expression under the declared sorts of the
    /// in-scope binders, or `None` when it cannot be determined.
    ///
    /// The executor uses this as a *hint*: when the runtime sort of the
    /// evaluated payload matches the hint, the pre-resolved interned action
    /// is used; otherwise it falls back to dynamic resolution. A `None` here
    /// is never wrong, only slower.
    fn infer_static_sort(&self, payload: &Expr) -> Option<Sort> {
        let mut env = SortEnv::new();
        for (name, slot) in &self.scope {
            match &self.slot_sorts[*slot as usize] {
                Some(sort) => {
                    env.insert(name.clone(), sort.clone());
                }
                None => {
                    env.remove(name);
                }
            }
        }
        payload.infer_sort(&env).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::RecvAlt;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    #[test]
    fn a_straight_line_process_compiles_to_a_straight_line_program() {
        let p = Proc::send(
            r("q"),
            "l",
            Expr::lit(7u64),
            Proc::recv1(r("q"), "m", Sort::Nat, "x", Proc::Finish),
        );
        let c = CompiledProc::compile(&p, &r("p"), &Externals::new()).unwrap();
        assert_eq!(c.entry(), 0);
        assert_eq!(c.instr_count(), 3);
        assert_eq!(c.slot_count(), 1);
        assert_eq!(c.events().len(), 2);
        assert!(c.events()[0].is_send);
        assert!(!c.events()[1].is_send);
        match &c.instrs()[0] {
            Instr::Send { next, .. } => assert_eq!(*next, 1),
            other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn loops_become_back_edges() {
        let p = Proc::loop_(Proc::send(r("q"), "tick", Expr::lit(0u64), Proc::Jump(0)));
        let c = CompiledProc::compile(&p, &r("p"), &Externals::new()).unwrap();
        assert_eq!(c.instr_count(), 1);
        match &c.instrs()[0] {
            Instr::Send { next, .. } => assert_eq!(*next, 0, "the jump resolves to the loop head"),
            other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn nested_loops_resolve_de_bruijn_indices() {
        // loop { recv q { a(x) ? jump 0 ; b(x) ? loop { send q (l, 1)! jump 1 } } }
        let p = Proc::loop_(Proc::recv(
            r("q"),
            vec![
                RecvAlt::new("a", Sort::Nat, "x", Proc::Jump(0)),
                RecvAlt::new(
                    "b",
                    Sort::Nat,
                    "x",
                    Proc::loop_(Proc::send(r("q"), "l", Expr::lit(1u64), Proc::Jump(1))),
                ),
            ],
        ));
        let c = CompiledProc::compile(&p, &r("p"), &Externals::new()).unwrap();
        // jump 1 from inside the inner loop points at the outer head (pc 0).
        match &c.instrs()[0] {
            Instr::Recv { arms, .. } => {
                assert_eq!(arms[0].next, 0);
                let inner = arms[1].next as usize;
                match &c.instrs()[inner] {
                    Instr::Send { next, .. } => assert_eq!(*next, 0),
                    other => panic!("expected send, got {other:?}"),
                }
            }
            other => panic!("expected recv, got {other:?}"),
        }
    }

    #[test]
    fn variables_resolve_to_slots_with_shadowing() {
        // recv q { l(x) ? recv q { l(x) ? send q (l, x)! finish } }: the
        // payload reads the inner binder's slot.
        let p = Proc::recv1(
            r("q"),
            "l",
            Sort::Nat,
            "x",
            Proc::recv1(
                r("q"),
                "l",
                Sort::Nat,
                "x",
                Proc::send(r("q"), "l", Expr::var("x"), Proc::Finish),
            ),
        );
        let c = CompiledProc::compile(&p, &r("p"), &Externals::new()).unwrap();
        assert_eq!(c.slot_count(), 2);
        let send_pc = match &c.instrs()[0] {
            Instr::Recv { arms, .. } => match &c.instrs()[arms[0].next as usize] {
                Instr::Recv { arms, .. } => arms[0].next as usize,
                other => panic!("expected recv, got {other:?}"),
            },
            other => panic!("expected recv, got {other:?}"),
        };
        match &c.instrs()[send_pc] {
            Instr::Send { payload, .. } => assert_eq!(payload, &CExpr::Slot(1)),
            other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn free_variables_compile_to_runtime_failures() {
        let p = Proc::send(r("q"), "l", Expr::var("ghost"), Proc::Finish);
        let c = CompiledProc::compile(&p, &r("p"), &Externals::new()).unwrap();
        match &c.instrs()[0] {
            Instr::Send { payload, .. } => {
                assert!(matches!(
                    payload.eval(&[]),
                    Err(ProcError::UnboundVariable { .. })
                ));
            }
            other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn unbound_jumps_and_unguarded_loops_are_compile_errors() {
        assert!(matches!(
            CompiledProc::compile(&Proc::Jump(0), &r("p"), &Externals::new()),
            Err(ProcError::UnboundJump { index: 0 })
        ));
        assert!(matches!(
            CompiledProc::compile(&Proc::loop_(Proc::Jump(0)), &r("p"), &Externals::new()),
            Err(ProcError::Stuck { .. })
        ));
        assert!(matches!(
            CompiledProc::compile(
                &Proc::loop_(Proc::loop_(Proc::Jump(1))),
                &r("p"),
                &Externals::new()
            ),
            Err(ProcError::Stuck { .. })
        ));
    }

    #[test]
    fn static_sorts_cover_the_common_cases() {
        // x bound at nat: x + 1 is statically nat.
        let p = Proc::recv1(
            r("q"),
            "l",
            Sort::Nat,
            "x",
            Proc::send(
                r("q"),
                "m",
                Expr::add(Expr::var("x"), Expr::lit(1u64)),
                Proc::Finish,
            ),
        );
        let c = CompiledProc::compile(&p, &r("p"), &Externals::new()).unwrap();
        let send_event = c.events().iter().find(|e| e.is_send).unwrap();
        let sort_id = send_event.static_sort.expect("statically known");
        assert_eq!(c.snapshot().sort(sort_id), &Sort::Nat);

        // A read binder without a declared signature defeats inference.
        let p = Proc::read(
            "mystery",
            "y",
            Proc::send(r("q"), "m", Expr::var("y"), Proc::Finish),
        );
        let c = CompiledProc::compile(&p, &r("p"), &Externals::new()).unwrap();
        let send_event = c.events().iter().find(|e| e.is_send).unwrap();
        assert!(send_event.static_sort.is_none());
    }

    #[test]
    fn slot_evaluation_matches_tree_evaluation() {
        let e = Expr::ite(
            Expr::ge(Expr::var("x"), Expr::lit(10u64)),
            Expr::mul(Expr::var("x"), Expr::lit(2u64)),
            Expr::lit(0u64),
        );
        let p = Proc::recv1(r("q"), "l", Sort::Nat, "x", Proc::send(r("q"), "m", e.clone(), Proc::Finish));
        let c = CompiledProc::compile(&p, &r("p"), &Externals::new()).unwrap();
        let payload = match &c.instrs().iter().find(|i| matches!(i, Instr::Send { .. })).unwrap() {
            Instr::Send { payload, .. } => payload.clone(),
            _ => unreachable!(),
        };
        for v in [Value::Nat(3), Value::Nat(12)] {
            let tree = e.subst("x", &v).eval_closed().unwrap();
            let compiled = payload.eval(&[v]).unwrap();
            assert_eq!(tree, compiled);
        }
    }

    #[test]
    fn external_action_names_are_deduplicated() {
        let p = Proc::write(
            "log",
            Expr::lit(1u64),
            Proc::write("log", Expr::lit(2u64), Proc::Finish),
        );
        let mut ext = Externals::new();
        ext.register_write("log", Sort::Nat, |_| {});
        let c = CompiledProc::compile(&p, &r("p"), &ext).unwrap();
        assert_eq!(c.action_names(), &["log".to_owned()]);
    }
}
