//! The labelled transition system for processes (Definition 4.4,
//! `do_step_proc` in `Proc.v`) and the erasure of value-carrying actions to
//! type-level actions.

use std::fmt;

use serde::{Deserialize, Serialize};
use zooid_mpst::{Action, Label, Role, Sort};

use crate::error::{ProcError, Result};
use crate::external::Externals;
use crate::proc::Proc;
use crate::value::Value;

/// A process-level action: like a type-level [`Action`] but carrying the
/// exchanged [`Value`] as well as its sort.
///
/// The paper's process LTS uses actions "with values instead of sorts"; the
/// *erasure* `|a|` forgets the value and keeps the sort, producing the
/// type-level action used by type preservation (Theorem 4.5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueAction {
    /// `true` for the sending half, `false` for the receiving half.
    pub is_send: bool,
    /// The sender of the underlying message.
    pub from: Role,
    /// The receiver of the underlying message.
    pub to: Role,
    /// The message label.
    pub label: Label,
    /// The sort of the payload.
    pub sort: Sort,
    /// The payload value.
    pub value: Value,
}

impl ValueAction {
    /// The send action `!pq(l, v)`.
    pub fn send(from: Role, to: Role, label: Label, sort: Sort, value: Value) -> Self {
        ValueAction {
            is_send: true,
            from,
            to,
            label,
            sort,
            value,
        }
    }

    /// The receive action `?qp(l, v)`.
    pub fn recv(at: Role, from: Role, label: Label, sort: Sort, value: Value) -> Self {
        ValueAction {
            is_send: false,
            from,
            to: at,
            label,
            sort,
            value,
        }
    }

    /// The participant performing the action (sender of a send, receiver of
    /// a receive).
    pub fn subject(&self) -> &Role {
        if self.is_send {
            &self.from
        } else {
            &self.to
        }
    }
}

impl fmt::Display for ValueAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_send {
            write!(f, "!{}{}({}, {})", self.from, self.to, self.label, self.value)
        } else {
            write!(f, "?{}{}({}, {})", self.to, self.from, self.label, self.value)
        }
    }
}

/// The erasure `|a|` of a process action: forget the value, keep the sort
/// (§4.3).
pub fn erase(action: &ValueAction) -> Action {
    if action.is_send {
        Action::send(
            action.from.clone(),
            action.to.clone(),
            action.label.clone(),
            action.sort.clone(),
        )
    } else {
        Action::recv(
            action.to.clone(),
            action.from.clone(),
            action.label.clone(),
            action.sort.clone(),
        )
    }
}

/// Maximum number of administrative reductions (`if`, `read`, `write`,
/// `interact`, `loop` unfoldings) performed while looking for the next
/// communication. A well-typed process can only perform finitely many of
/// them between communications; the bound protects against accidental
/// non-termination of user-supplied processes.
const ADMIN_FUEL: usize = 10_000;

/// Reduces the internal (non-communicating) actions at the head of a process
/// until it starts with `finish`, `send`, `recv`, `loop` or `jump`.
///
/// Internal actions are the conditionals and the external interactions; they
/// do not appear in traces (§4.1) and therefore commute with the visible LTS.
///
/// # Errors
///
/// Fails if an expression is ill-typed at runtime, an external action is not
/// registered, or the internal reduction does not terminate within a fixed
/// fuel bound.
pub fn admin_normalize(proc: &Proc, externals: &Externals) -> Result<Proc> {
    admin_normalize_owned(proc.clone(), externals)
}

/// Like [`admin_normalize`], but takes the process by value: when the head is
/// already a communication (the steady state of the executors) nothing is
/// cloned at all, and each internal reduction moves its continuation out of
/// its `Box` instead of deep-cloning it.
///
/// # Errors
///
/// Same as [`admin_normalize`].
pub fn admin_normalize_owned(mut current: Proc, externals: &Externals) -> Result<Proc> {
    for _ in 0..ADMIN_FUEL {
        match current {
            Proc::Cond {
                cond,
                then_branch,
                else_branch,
            } => {
                current = if cond.eval_closed()?.as_bool()? {
                    *then_branch
                } else {
                    *else_branch
                };
            }
            Proc::Read { action, var, cont } => {
                let result = externals.call(&action, Value::Unit)?;
                current = cont.subst_value(&var, &result);
            }
            Proc::Write { action, arg, cont } => {
                let value = arg.eval_closed()?;
                externals.call(&action, value)?;
                current = *cont;
            }
            Proc::Interact {
                action,
                arg,
                var,
                cont,
            } => {
                let value = arg.eval_closed()?;
                let result = externals.call(&action, value)?;
                current = cont.subst_value(&var, &result);
            }
            other => return Ok(other),
        }
    }
    Err(ProcError::Stuck {
        context: "internal actions did not terminate within the fuel bound".to_owned(),
    })
}

/// One step of the process LTS (Definition 4.4): attempts to perform the
/// visible action `action` from `proc`.
///
/// * `[p-step-send]` — a send process emits its message (the payload
///   expression is evaluated and must equal the action's value);
/// * `[p-step-recv]` — a receive process consumes a matching message and
///   binds its payload;
/// * `[p-step-loop]` — recursion is unfolded as needed.
///
/// Internal actions at the head are reduced first (they are invisible).
/// Returns `Ok(None)` when the action is not enabled.
///
/// # Errors
///
/// Fails on runtime errors of the internal reductions (see
/// [`admin_normalize`]).
pub fn do_step(proc: &Proc, action: &ValueAction, externals: &Externals) -> Result<Option<Proc>> {
    let mut current = admin_normalize(proc, externals)?;
    // [p-step-loop]: unfold recursion until a communication appears. Typing
    // guarantees loops are guarded, so this terminates for well-typed
    // processes; the fuel protects against ill-typed ones.
    for _ in 0..ADMIN_FUEL {
        match current {
            Proc::Loop(_) => {
                current = admin_normalize(&current.unfold_once(), externals)?;
            }
            _ => break,
        }
    }
    match &current {
        Proc::Finish | Proc::Jump(_) => Ok(None),
        Proc::Loop(_) => Err(ProcError::Stuck {
            context: "recursion does not reach a communication".to_owned(),
        }),
        Proc::Send {
            to,
            label,
            payload,
            cont,
        } => {
            if !action.is_send || &action.to != to || &action.label != label {
                return Ok(None);
            }
            let value = payload.eval_closed()?;
            if value != action.value || !value.has_sort(&action.sort) {
                return Ok(None);
            }
            Ok(Some((**cont).clone()))
        }
        Proc::Recv { from, alts } => {
            if action.is_send || &action.from != from {
                return Ok(None);
            }
            let Some(alt) = alts.iter().find(|a| a.label == action.label) else {
                return Ok(None);
            };
            if alt.sort != action.sort || !action.value.has_sort(&alt.sort) {
                return Ok(None);
            }
            Ok(Some(alt.cont.subst_value(&alt.var, &action.value)))
        }
        Proc::Cond { .. } | Proc::Read { .. } | Proc::Write { .. } | Proc::Interact { .. } => {
            unreachable!("admin_normalize removed internal actions")
        }
    }
}

/// What the process offers next, after reducing internal actions: either it
/// has terminated, or it wants to send one specific message, or it is ready
/// to receive one of several labels from a partner.
#[derive(Debug, Clone, PartialEq)]
pub enum NextCommunication {
    /// The process has terminated.
    Done,
    /// The process wants to emit exactly this action.
    Send(ValueAction),
    /// The process waits for a message from `from` with one of the listed
    /// `(label, sort)` alternatives.
    Receive {
        /// The expected sender.
        from: Role,
        /// The alternatives the process can handle.
        alternatives: Vec<(Label, Sort)>,
    },
}

/// Computes the next communication offered by a process, given the role that
/// executes it (needed to fill in the sender of emitted messages).
///
/// # Errors
///
/// Fails on runtime errors of the internal reductions and when a recursion
/// never reaches a communication.
pub fn next_communication(
    proc: &Proc,
    self_role: &Role,
    externals: &Externals,
) -> Result<NextCommunication> {
    let mut current = admin_normalize(proc, externals)?;
    for _ in 0..ADMIN_FUEL {
        match current {
            Proc::Loop(_) => current = admin_normalize(&current.unfold_once(), externals)?,
            _ => break,
        }
    }
    match &current {
        Proc::Finish => Ok(NextCommunication::Done),
        Proc::Jump(i) => Err(ProcError::UnboundJump { index: *i }),
        Proc::Loop(_) => Err(ProcError::Stuck {
            context: "recursion does not reach a communication".to_owned(),
        }),
        Proc::Send {
            to,
            label,
            payload,
            ..
        } => {
            let value = payload.eval_closed()?;
            let sort = payload.infer_sort(&Default::default())?;
            Ok(NextCommunication::Send(ValueAction::send(
                self_role.clone(),
                to.clone(),
                label.clone(),
                sort,
                value,
            )))
        }
        Proc::Recv { from, alts } => Ok(NextCommunication::Receive {
            from: from.clone(),
            alternatives: alts.iter().map(|a| (a.label.clone(), a.sort.clone())).collect(),
        }),
        _ => unreachable!("admin_normalize removed internal actions"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::proc::RecvAlt;

    fn r(name: &str) -> Role {
        Role::new(name)
    }
    fn l(name: &str) -> Label {
        Label::new(name)
    }

    #[test]
    fn erasure_forgets_values_and_keeps_sorts() {
        let va = ValueAction::send(r("p"), r("q"), l("l"), Sort::Nat, Value::Nat(7));
        assert_eq!(erase(&va), Action::send(r("p"), r("q"), l("l"), Sort::Nat));
        let vr = ValueAction::recv(r("q"), r("p"), l("l"), Sort::Nat, Value::Nat(7));
        assert_eq!(erase(&vr), Action::recv(r("q"), r("p"), l("l"), Sort::Nat));
        assert_eq!(va.subject(), &r("p"));
        assert_eq!(vr.subject(), &r("q"));
    }

    #[test]
    fn p_step_send_emits_the_evaluated_payload() {
        let p = Proc::send(r("q"), "l", Expr::add(Expr::lit(1u64), Expr::lit(2u64)), Proc::Finish);
        let good = ValueAction::send(r("p"), r("q"), l("l"), Sort::Nat, Value::Nat(3));
        let wrong_value = ValueAction::send(r("p"), r("q"), l("l"), Sort::Nat, Value::Nat(4));
        let ext = Externals::new();
        assert_eq!(do_step(&p, &good, &ext).unwrap(), Some(Proc::Finish));
        assert_eq!(do_step(&p, &wrong_value, &ext).unwrap(), None);
    }

    #[test]
    fn p_step_recv_binds_the_received_value() {
        // recv p { l(x:nat) ? send p (l2, x+1)! finish }
        let p = Proc::recv1(
            r("p"),
            "l",
            Sort::Nat,
            "x",
            Proc::send(r("p"), "l2", Expr::add(Expr::var("x"), Expr::lit(1u64)), Proc::Finish),
        );
        let ext = Externals::new();
        let recv = ValueAction::recv(r("q"), r("p"), l("l"), Sort::Nat, Value::Nat(9));
        let stepped = do_step(&p, &recv, &ext).unwrap().expect("recv enabled");
        // The continuation now sends 10.
        let send = ValueAction::send(r("q"), r("p"), l("l2"), Sort::Nat, Value::Nat(10));
        assert_eq!(do_step(&stepped, &send, &ext).unwrap(), Some(Proc::Finish));
        // A receive with an unknown label is not enabled.
        let unknown = ValueAction::recv(r("q"), r("p"), l("zzz"), Sort::Nat, Value::Nat(1));
        assert_eq!(do_step(&p, &unknown, &ext).unwrap(), None);
    }

    #[test]
    fn p_step_loop_unfolds_recursion() {
        // loop { send q (ping, 0)! jump 0 } can keep sending forever.
        let p = Proc::loop_(Proc::send(r("q"), "ping", Expr::lit(0u64), Proc::Jump(0)));
        let ext = Externals::new();
        let act = ValueAction::send(r("p"), r("q"), l("ping"), Sort::Nat, Value::Nat(0));
        let mut current = p.clone();
        for _ in 0..3 {
            current = do_step(&current, &act, &ext).unwrap().expect("send enabled");
        }
    }

    #[test]
    fn internal_actions_are_transparent_to_the_lts() {
        let mut ext = Externals::new();
        ext.register_interact("double", Sort::Nat, Sort::Nat, |v| {
            Value::Nat(v.as_nat().unwrap() * 2)
        });
        // if true then (interact double 21 (y. send q (l, y)! finish)) else finish
        let p = Proc::cond(
            Expr::lit(true),
            Proc::interact(
                "double",
                Expr::lit(21u64),
                "y",
                Proc::send(r("q"), "l", Expr::var("y"), Proc::Finish),
            ),
            Proc::Finish,
        );
        let act = ValueAction::send(r("p"), r("q"), l("l"), Sort::Nat, Value::Nat(42));
        assert_eq!(do_step(&p, &act, &ext).unwrap(), Some(Proc::Finish));
    }

    #[test]
    fn next_communication_reports_the_offer() {
        let ext = Externals::new();
        let send = Proc::send(r("q"), "l", Expr::lit(5u64), Proc::Finish);
        match next_communication(&send, &r("me"), &ext).unwrap() {
            NextCommunication::Send(a) => {
                assert_eq!(a.from, r("me"));
                assert_eq!(a.value, Value::Nat(5));
            }
            other => panic!("unexpected {other:?}"),
        }

        let recv = Proc::recv(
            r("p"),
            vec![
                RecvAlt::new("a", Sort::Nat, "x", Proc::Finish),
                RecvAlt::new("b", Sort::Unit, "y", Proc::Finish),
            ],
        );
        match next_communication(&recv, &r("me"), &ext).unwrap() {
            NextCommunication::Receive { from, alternatives } => {
                assert_eq!(from, r("p"));
                assert_eq!(alternatives.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }

        assert_eq!(
            next_communication(&Proc::Finish, &r("me"), &ext).unwrap(),
            NextCommunication::Done
        );
    }

    #[test]
    fn unregistered_externals_make_execution_fail() {
        let p = Proc::read("nope", "x", Proc::Finish);
        let ext = Externals::new();
        assert!(admin_normalize(&p, &ext).is_err());
    }

    #[test]
    fn finished_processes_perform_no_action() {
        let ext = Externals::new();
        let act = ValueAction::send(r("p"), r("q"), l("l"), Sort::Nat, Value::Nat(0));
        assert_eq!(do_step(&Proc::Finish, &act, &ext).unwrap(), None);
    }
}
