//! Executable counterparts of type preservation (Theorem 4.5) and of
//! *process traces are global traces* (Theorem 4.7,
//! `process_traces_are_global_types` in `Proc.v`).

use std::collections::BTreeSet;

use zooid_mpst::global::{global_traces_up_to, unravel_global, GlobalType};
use zooid_mpst::local::LocalType;
use zooid_mpst::{Action, Role, Trace};

use crate::error::{ProcError, Result};
use crate::external::Externals;
use crate::proc::Proc;
use crate::semantics::{admin_normalize, do_step, erase, ValueAction};
use crate::subtrace::is_complete_subtrace;
use crate::typing::type_check;
use crate::value::Value;

/// One step of the LTS of a *single* local type, as used in the statement of
/// Theorem 4.5 (`L --|a|--> L'`): the participant's own view of performing an
/// action, with recursion unfolded on demand.
///
/// Returns `None` when the action is not enabled by the type.
pub fn local_type_step(local: &LocalType, action: &Action) -> Option<LocalType> {
    let head = local.unfold_head();
    match &head {
        LocalType::Send { to, branches } if action.is_send() && action.to() == to => branches
            .iter()
            .find(|b| &b.label == action.label() && &b.sort == action.sort())
            .map(|b| b.cont.clone()),
        LocalType::Recv { from, branches } if action.is_recv() && action.from() == from => branches
            .iter()
            .find(|b| &b.label == action.label() && &b.sort == action.sort())
            .map(|b| b.cont.clone()),
        _ => None,
    }
}

/// The outcome of one of the bounded checkers in this module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreservationReport {
    /// Whether the property held on everything explored.
    pub holds: bool,
    /// Number of `(process, local type)` states explored.
    pub states_explored: usize,
    /// Description of the first violation, if any.
    pub counterexample: Option<String>,
}

/// Checks Theorem 4.5 (type preservation) for a process against its local
/// type: starting from `(proc, local)`, every visible step of the process is
/// matched by a step of the type, and the residual process is again
/// well-typed against the residual type. Exploration is bounded by `depth`
/// visible steps; receive branches are explored with a canonical value of
/// the expected sort.
///
/// # Errors
///
/// Fails if the initial process is not well-typed against `local`, or if a
/// runtime error (unregistered external, ill-typed expression) occurs during
/// exploration.
pub fn check_type_preservation(
    proc: &Proc,
    local: &LocalType,
    externals: &Externals,
    self_role: &Role,
    depth: usize,
) -> Result<PreservationReport> {
    type_check(proc, local, externals)?;
    let mut frontier = vec![(proc.clone(), local.clone())];
    let mut explored = 0usize;
    for _ in 0..depth {
        let mut next = Vec::new();
        for (p, l) in &frontier {
            explored += 1;
            for action in offered_actions(p, l, self_role, externals)? {
                let Some(p2) = do_step(p, &action, externals)? else {
                    continue;
                };
                let erased = erase(&action);
                let Some(l2) = local_type_step(l, &erased) else {
                    return Ok(PreservationReport {
                        holds: false,
                        states_explored: explored,
                        counterexample: Some(format!(
                            "the process performs {action} but its local type {l} cannot \
                             perform {erased}"
                        )),
                    });
                };
                if let Err(err) = type_check(&p2, &l2, externals) {
                    return Ok(PreservationReport {
                        holds: false,
                        states_explored: explored,
                        counterexample: Some(format!(
                            "after {action} the residual process is not typed by {l2}: {err}"
                        )),
                    });
                }
                next.push((p2, l2));
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    Ok(PreservationReport {
        holds: true,
        states_explored: explored,
        counterexample: None,
    })
}

/// The visible actions a process offers next (its send, or one receive per
/// declared alternative with a canonical payload), guided by its local type
/// when available so that the sender of received messages is filled in.
fn offered_actions(
    proc: &Proc,
    local: &LocalType,
    self_role: &Role,
    externals: &Externals,
) -> Result<Vec<ValueAction>> {
    let mut current = admin_normalize(proc, externals)?;
    let mut local = local.unfold_head();
    // Unfold process recursion together with the type.
    for _ in 0..64 {
        if matches!(current, Proc::Loop(_)) {
            current = admin_normalize(&current.unfold_once(), externals)?;
            local = local.unfold_head();
        } else {
            break;
        }
    }
    let mut out = Vec::new();
    match &current {
        Proc::Finish | Proc::Jump(_) => {}
        Proc::Send {
            to,
            label,
            payload,
            ..
        } => {
            let value = payload.eval_closed()?;
            let sort = match &local {
                LocalType::Send { branches, .. } => branches
                    .iter()
                    .find(|b| &b.label == label)
                    .map(|b| b.sort.clone()),
                _ => None,
            };
            let sort = sort.unwrap_or_else(|| default_sort_of(&value));
            out.push(ValueAction::send(
                self_role.clone(),
                to.clone(),
                label.clone(),
                sort,
                value,
            ));
        }
        Proc::Recv { from, alts } => {
            for alt in alts {
                out.push(ValueAction::recv(
                    self_role.clone(),
                    from.clone(),
                    alt.label.clone(),
                    alt.sort.clone(),
                    Value::default_of(&alt.sort),
                ));
            }
        }
        _ => unreachable!("admin_normalize removed internal actions"),
    }
    Ok(out)
}

fn default_sort_of(value: &Value) -> zooid_mpst::Sort {
    use zooid_mpst::Sort;
    match value {
        Value::Unit => Sort::Unit,
        Value::Nat(_) => Sort::Nat,
        Value::Int(_) => Sort::Int,
        Value::Bool(_) => Sort::Bool,
        Value::Str(_) => Sort::Str,
        Value::Inl(v) | Value::Inr(v) => Sort::sum(default_sort_of(v), Sort::Unit),
        Value::Pair(a, b) => Sort::prod(default_sort_of(a), default_sort_of(b)),
        Value::Seq(vs) => Sort::seq(vs.first().map(default_sort_of).unwrap_or(Sort::Unit)),
    }
}

/// Enumerates the erased traces a process can exhibit, up to `depth` visible
/// actions, exploring every declared receive alternative with a canonical
/// payload. This is the bounded counterpart of the paper's `trp` relation,
/// read through the erasure.
///
/// # Errors
///
/// Fails on runtime errors during the exploration (see
/// [`admin_normalize`](crate::semantics::admin_normalize)).
pub fn proc_traces_up_to(
    proc: &Proc,
    local: &LocalType,
    self_role: &Role,
    externals: &Externals,
    depth: usize,
) -> Result<BTreeSet<Trace>> {
    let mut out = BTreeSet::new();
    let mut frontier = vec![(proc.clone(), local.clone(), Trace::empty())];
    while let Some((p, l, trace)) = frontier.pop() {
        out.insert(trace.clone());
        if trace.len() >= depth {
            continue;
        }
        for action in offered_actions(&p, &l, self_role, externals)? {
            if let Some(p2) = do_step(&p, &action, externals)? {
                let erased = erase(&action);
                let l2 = local_type_step(&l, &erased).unwrap_or_else(|| l.clone());
                frontier.push((p2, l2, trace.snoc(erased)));
            }
        }
    }
    Ok(out)
}

/// Checks the bounded version of Theorem 4.7: every (erased, bounded) trace
/// of the process is a complete subtrace — for the role the process plays —
/// of some admissible trace of the global protocol.
///
/// `proc_depth` bounds the process traces; the global traces are explored up
/// to `proc_depth * participants` actions so the other roles have room to
/// interleave.
///
/// # Errors
///
/// Fails if the protocol is ill-formed, the process is not well-typed
/// against the projection of `global` onto `role`, or exploration hits a
/// runtime error.
pub fn check_process_traces_are_global(
    proc: &Proc,
    local: &LocalType,
    role: &Role,
    global: &GlobalType,
    externals: &Externals,
    proc_depth: usize,
) -> Result<PreservationReport> {
    type_check(proc, local, externals)?;
    let tree = unravel_global(global)?;
    let n_roles = global.participants().len().max(1);
    let global_depth = proc_depth * n_roles;
    let global_traces = global_traces_up_to(&tree, global_depth);
    let proc_traces = proc_traces_up_to(proc, local, role, externals, proc_depth)?;

    let mut explored = 0usize;
    for tp in &proc_traces {
        explored += 1;
        let contained = global_traces
            .iter()
            .any(|tg| is_complete_subtrace(tp, tg, role));
        if !contained {
            return Ok(PreservationReport {
                holds: false,
                states_explored: explored,
                counterexample: Some(format!(
                    "the process trace {tp} is not a complete subtrace of any global trace"
                )),
            });
        }
    }
    Ok(PreservationReport {
        holds: true,
        states_explored: explored,
        counterexample: None,
    })
}

/// Convenience wrapper: project the global type onto `role` and run
/// [`check_process_traces_are_global`] against that projection.
///
/// # Errors
///
/// See [`check_process_traces_are_global`]; additionally fails if the
/// projection onto `role` is undefined.
pub fn check_against_projection(
    proc: &Proc,
    role: &Role,
    global: &GlobalType,
    externals: &Externals,
    proc_depth: usize,
) -> Result<PreservationReport> {
    let local = zooid_mpst::projection::project(global, role).map_err(|e| ProcError::TypeError {
        reason: format!("the protocol is not projectable onto {role}: {e}"),
    })?;
    check_process_traces_are_global(proc, &local, role, global, externals, proc_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::proc::RecvAlt;
    use zooid_mpst::{Label, Sort};

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    /// The ping-pong protocol of §5.1.
    fn ping_pong() -> GlobalType {
        GlobalType::rec(GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (Label::new("l1"), Sort::Unit, GlobalType::End),
                (
                    Label::new("l2"),
                    Sort::Nat,
                    GlobalType::msg1(r("Bob"), r("Alice"), "l3", Sort::Nat, GlobalType::var(0)),
                ),
            ],
        ))
    }

    /// Bob, the ping-pong server: replies to every ping with the same number.
    fn bob() -> Proc {
        Proc::loop_(Proc::recv(
            r("Alice"),
            vec![
                RecvAlt::new("l1", Sort::Unit, "_x", Proc::Finish),
                RecvAlt::new(
                    "l2",
                    Sort::Nat,
                    "x",
                    Proc::send(r("Alice"), "l3", Expr::var("x"), Proc::Jump(0)),
                ),
            ],
        ))
    }

    fn bob_type() -> LocalType {
        zooid_mpst::projection::project(&ping_pong(), &r("Bob")).unwrap()
    }

    #[test]
    fn local_type_step_follows_the_type() {
        let l = bob_type();
        let recv_ping = Action::recv(r("Bob"), r("Alice"), Label::new("l2"), Sort::Nat);
        let after = local_type_step(&l, &recv_ping).expect("receive enabled");
        let send_pong = Action::send(r("Bob"), r("Alice"), Label::new("l3"), Sort::Nat);
        let after2 = local_type_step(&after, &send_pong).expect("send enabled");
        // Back at the top of the loop: receiving a quit is now possible.
        let recv_quit = Action::recv(r("Bob"), r("Alice"), Label::new("l1"), Sort::Unit);
        assert!(local_type_step(&after2, &recv_quit).is_some());
        // Actions not offered by the type are rejected.
        assert!(local_type_step(&l, &send_pong).is_none());
    }

    #[test]
    fn theorem_4_5_holds_for_the_ping_pong_server() {
        let report =
            check_type_preservation(&bob(), &bob_type(), &Externals::new(), &r("Bob"), 6).unwrap();
        assert!(report.holds, "{:?}", report.counterexample);
        assert!(report.states_explored > 1);
    }

    #[test]
    fn theorem_4_7_holds_for_the_ping_pong_server() {
        let report = check_against_projection(&bob(), &r("Bob"), &ping_pong(), &Externals::new(), 3)
            .unwrap();
        assert!(report.holds, "{:?}", report.counterexample);
    }

    #[test]
    fn ill_typed_processes_are_rejected_up_front() {
        // Bob answers with a boolean instead of a nat.
        let bad = Proc::loop_(Proc::recv(
            r("Alice"),
            vec![
                RecvAlt::new("l1", Sort::Unit, "_x", Proc::Finish),
                RecvAlt::new(
                    "l2",
                    Sort::Nat,
                    "x",
                    Proc::send(r("Alice"), "l3", Expr::lit(true), Proc::Jump(0)),
                ),
            ],
        ));
        assert!(check_type_preservation(&bad, &bob_type(), &Externals::new(), &r("Bob"), 3).is_err());
        assert!(
            check_against_projection(&bad, &r("Bob"), &ping_pong(), &Externals::new(), 3).is_err()
        );
    }

    #[test]
    fn proc_traces_contain_the_expected_prefixes() {
        let traces =
            proc_traces_up_to(&bob(), &bob_type(), &r("Bob"), &Externals::new(), 2).unwrap();
        // Bob's first action is a receive of either l1 or l2.
        let recv_quit = Action::recv(r("Bob"), r("Alice"), Label::new("l1"), Sort::Unit);
        let recv_ping = Action::recv(r("Bob"), r("Alice"), Label::new("l2"), Sort::Nat);
        assert!(traces.contains(&Trace::from(vec![recv_quit])));
        assert!(traces
            .iter()
            .any(|t| t.len() == 2 && t.actions()[0] == recv_ping));
    }

    #[test]
    fn a_process_for_one_role_does_not_check_against_another() {
        // Bob's implementation is not a complete implementation of Alice.
        let report = check_against_projection(&bob(), &r("Alice"), &ping_pong(), &Externals::new(), 3);
        assert!(report.is_err());
    }
}
