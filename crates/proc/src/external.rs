//! External actions: the counterpart of the OCaml functions a Zooid process
//! calls through `read`, `write` and `interact` (§4.1).
//!
//! External actions let a process exchange data with its environment without
//! exposing channels or the transport: they are *internal* actions that never
//! appear in traces and have no effect on the local type. Typing only needs
//! their signatures ([`ExternalSig`]); execution needs their implementations,
//! registered in an [`Externals`] registry.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use zooid_mpst::Sort;

use crate::error::{ProcError, Result};
use crate::value::Value;

/// The three kinds of environment interaction of Definition 4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExternalKind {
    /// `read`: `unit -> S` — obtain a value from the environment.
    Read,
    /// `write`: `S -> unit` — hand a value to the environment (print, log,
    /// persist, ...).
    Write,
    /// `interact`: `S -> S'` — hand a value to the environment and obtain a
    /// response.
    Interact,
}

impl fmt::Display for ExternalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExternalKind::Read => f.write_str("read"),
            ExternalKind::Write => f.write_str("write"),
            ExternalKind::Interact => f.write_str("interact"),
        }
    }
}

/// The signature of an external action: what it consumes and produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternalSig {
    /// The kind of interaction.
    pub kind: ExternalKind,
    /// Sort of the argument (always `unit` for `read`).
    pub input: Sort,
    /// Sort of the result (always `unit` for `write`).
    pub output: Sort,
}

impl ExternalSig {
    /// Signature of a `read` action producing a value of sort `output`.
    pub fn read(output: Sort) -> Self {
        ExternalSig {
            kind: ExternalKind::Read,
            input: Sort::Unit,
            output,
        }
    }

    /// Signature of a `write` action consuming a value of sort `input`.
    pub fn write(input: Sort) -> Self {
        ExternalSig {
            kind: ExternalKind::Write,
            input,
            output: Sort::Unit,
        }
    }

    /// Signature of an `interact` action of type `input -> output`.
    pub fn interact(input: Sort, output: Sort) -> Self {
        ExternalSig {
            kind: ExternalKind::Interact,
            input,
            output,
        }
    }
}

type ExternalFn = Arc<dyn Fn(Value) -> Value + Send + Sync>;

/// A registry of external actions: signatures (needed for typing) plus
/// implementations (needed for execution).
///
/// # Examples
///
/// ```
/// use zooid_proc::{Externals, Value};
/// use zooid_mpst::Sort;
///
/// let mut ext = Externals::new();
/// ext.register_interact("double", Sort::Nat, Sort::Nat,
///     |v| Value::Nat(v.as_nat().unwrap() * 2));
/// assert_eq!(ext.call("double", Value::Nat(21)).unwrap(), Value::Nat(42));
/// ```
#[derive(Clone, Default)]
pub struct Externals {
    sigs: BTreeMap<String, ExternalSig>,
    impls: BTreeMap<String, ExternalFn>,
}

impl Externals {
    /// An empty registry.
    pub fn new() -> Self {
        Externals::default()
    }

    /// Registers a `read` action producing values of sort `output`.
    pub fn register_read(
        &mut self,
        name: impl Into<String>,
        output: Sort,
        f: impl Fn() -> Value + Send + Sync + 'static,
    ) -> &mut Self {
        let name = name.into();
        self.sigs.insert(name.clone(), ExternalSig::read(output));
        self.impls.insert(name, Arc::new(move |_| f()));
        self
    }

    /// Registers a `write` action consuming values of sort `input`.
    pub fn register_write(
        &mut self,
        name: impl Into<String>,
        input: Sort,
        f: impl Fn(Value) + Send + Sync + 'static,
    ) -> &mut Self {
        let name = name.into();
        self.sigs.insert(name.clone(), ExternalSig::write(input));
        self.impls.insert(
            name,
            Arc::new(move |v| {
                f(v);
                Value::Unit
            }),
        );
        self
    }

    /// Registers an `interact` action of type `input -> output`.
    pub fn register_interact(
        &mut self,
        name: impl Into<String>,
        input: Sort,
        output: Sort,
        f: impl Fn(Value) -> Value + Send + Sync + 'static,
    ) -> &mut Self {
        let name = name.into();
        self.sigs
            .insert(name.clone(), ExternalSig::interact(input, output));
        self.impls.insert(name, Arc::new(f));
        self
    }

    /// Declares a signature without an implementation (enough for type
    /// checking; execution will fail if the action is actually called).
    pub fn declare(&mut self, name: impl Into<String>, sig: ExternalSig) -> &mut Self {
        self.sigs.insert(name.into(), sig);
        self
    }

    /// The signature of an action, if declared.
    pub fn signature(&self, name: &str) -> Option<&ExternalSig> {
        self.sigs.get(name)
    }

    /// Calls an action's implementation.
    ///
    /// # Errors
    ///
    /// [`ProcError::UnknownExternal`] if no implementation was registered,
    /// [`ProcError::SortMismatch`] if the argument does not inhabit the
    /// declared input sort.
    pub fn call(&self, name: &str, arg: Value) -> Result<Value> {
        let sig = self
            .sigs
            .get(name)
            .ok_or_else(|| ProcError::UnknownExternal { name: name.into() })?;
        if !arg.has_sort(&sig.input) {
            return Err(ProcError::IllTypedOperation {
                context: format!(
                    "argument {arg} of external action `{name}` does not have sort {}",
                    sig.input
                ),
            });
        }
        let f = self
            .impls
            .get(name)
            .ok_or_else(|| ProcError::UnknownExternal { name: name.into() })?;
        let result = f(arg);
        if !result.has_sort(&sig.output) {
            return Err(ProcError::IllTypedOperation {
                context: format!(
                    "result {result} of external action `{name}` does not have sort {}",
                    sig.output
                ),
            });
        }
        Ok(result)
    }

    /// The names of all declared actions.
    pub fn names(&self) -> Vec<&str> {
        self.sigs.keys().map(String::as_str).collect()
    }
}

impl fmt::Debug for Externals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Externals")
            .field("declared", &self.sigs.keys().collect::<Vec<_>>())
            .field("implemented", &self.impls.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc as StdArc;

    #[test]
    fn read_write_interact_round_trip() {
        let written = StdArc::new(AtomicU64::new(0));
        let written2 = StdArc::clone(&written);
        let mut ext = Externals::new();
        ext.register_read("answer", Sort::Nat, || Value::Nat(42));
        ext.register_write("log", Sort::Nat, move |v| {
            written2.store(v.as_nat().unwrap(), Ordering::SeqCst);
        });
        ext.register_interact("inc", Sort::Nat, Sort::Nat, |v| {
            Value::Nat(v.as_nat().unwrap() + 1)
        });

        assert_eq!(ext.call("answer", Value::Unit).unwrap(), Value::Nat(42));
        assert_eq!(ext.call("log", Value::Nat(7)).unwrap(), Value::Unit);
        assert_eq!(written.load(Ordering::SeqCst), 7);
        assert_eq!(ext.call("inc", Value::Nat(1)).unwrap(), Value::Nat(2));
        assert_eq!(ext.names().len(), 3);
    }

    #[test]
    fn unknown_actions_are_rejected() {
        let ext = Externals::new();
        assert!(matches!(
            ext.call("nope", Value::Unit),
            Err(ProcError::UnknownExternal { .. })
        ));
        assert!(ext.signature("nope").is_none());
    }

    #[test]
    fn argument_and_result_sorts_are_enforced() {
        let mut ext = Externals::new();
        ext.register_interact("id", Sort::Nat, Sort::Nat, |v| v);
        assert!(ext.call("id", Value::Bool(true)).is_err());

        // A buggy implementation returning the wrong sort is caught.
        ext.register_interact("bad", Sort::Nat, Sort::Bool, |v| v);
        assert!(ext.call("bad", Value::Nat(1)).is_err());
    }

    #[test]
    fn declared_but_unimplemented_actions_typecheck_but_do_not_run() {
        let mut ext = Externals::new();
        ext.declare("compute", ExternalSig::interact(Sort::Nat, Sort::Nat));
        assert!(ext.signature("compute").is_some());
        assert!(ext.call("compute", Value::Nat(1)).is_err());
    }

    #[test]
    fn signatures_expose_their_kinds() {
        assert_eq!(ExternalSig::read(Sort::Nat).kind, ExternalKind::Read);
        assert_eq!(ExternalSig::write(Sort::Nat).kind, ExternalKind::Write);
        assert_eq!(
            ExternalSig::interact(Sort::Nat, Sort::Bool).kind,
            ExternalKind::Interact
        );
        assert_eq!(ExternalKind::Read.to_string(), "read");
    }
}
