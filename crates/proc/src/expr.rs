//! A deeply-embedded expression language for message payloads and control
//! decisions.
//!
//! The paper shallow-embeds payload computations as Gallina terms; its typing
//! judgement treats them through the ambient typing judgement `Γ ⊢ e : T`.
//! Here the ambient language is a small first-order expression language with
//! the same role: it is sort-checked by [`Expr::infer_sort`] and evaluated by
//! [`Expr::eval`], and the process typing rules of Figure 5 call into it
//! exactly where the paper calls into Gallina typing.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use zooid_mpst::Sort;

use crate::error::{ProcError, Result};
use crate::value::Value;

/// An environment assigning sorts to expression variables (the `Γ` of the
/// typing rules).
pub type SortEnv = BTreeMap<String, Sort>;

/// An environment assigning values to expression variables, used during
/// evaluation.
pub type ValueEnv = BTreeMap<String, Value>;

/// A payload expression.
///
/// Expressions compute the values sent in messages, the conditions of
/// `if`-processes and the arguments of external actions. Variables are bound
/// by receives (`recv p (l, x : S) ? ...`), by `read` and by `interact`.
///
/// # Examples
///
/// ```
/// use zooid_proc::{Expr, Value};
///
/// // x + 1, where x was bound by an enclosing receive
/// let e = Expr::add(Expr::var("x"), Expr::lit(1u64));
/// let mut env = std::collections::BTreeMap::new();
/// env.insert("x".to_string(), Value::Nat(41));
/// assert_eq!(e.eval(&env).unwrap(), Value::Nat(42));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A variable bound by a receive, `read` or `interact`.
    Var(String),
    /// Addition on naturals or integers.
    Add(Box<Expr>, Box<Expr>),
    /// Truncated subtraction on naturals, ordinary subtraction on integers.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication on naturals or integers.
    Mul(Box<Expr>, Box<Expr>),
    /// Euclidean division (the paper's `divn`); division by zero yields zero,
    /// as in Coq's `div`.
    Div(Box<Expr>, Box<Expr>),
    /// Strict "less than" on naturals or integers.
    Lt(Box<Expr>, Box<Expr>),
    /// "Less than or equal" on naturals or integers.
    Le(Box<Expr>, Box<Expr>),
    /// "Greater than or equal" on naturals or integers.
    Ge(Box<Expr>, Box<Expr>),
    /// Structural equality of two expressions of the same sort.
    Eq(Box<Expr>, Box<Expr>),
    /// Boolean conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Boolean disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
    /// Conditional expression.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Pair construction.
    Pair(Box<Expr>, Box<Expr>),
    /// First projection of a pair.
    Fst(Box<Expr>),
    /// Second projection of a pair.
    Snd(Box<Expr>),
}

impl Expr {
    /// A literal expression.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Lit(value.into())
    }

    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// The unit literal.
    pub fn unit() -> Expr {
        Expr::Lit(Value::Unit)
    }

    /// `left + right`.
    pub fn add(left: Expr, right: Expr) -> Expr {
        Expr::Add(Box::new(left), Box::new(right))
    }

    /// `left - right` (truncated on naturals).
    pub fn sub(left: Expr, right: Expr) -> Expr {
        Expr::Sub(Box::new(left), Box::new(right))
    }

    /// `left * right`.
    pub fn mul(left: Expr, right: Expr) -> Expr {
        Expr::Mul(Box::new(left), Box::new(right))
    }

    /// `left / right` (0 when dividing by zero, as in Coq).
    pub fn div(left: Expr, right: Expr) -> Expr {
        Expr::Div(Box::new(left), Box::new(right))
    }

    /// `left < right`.
    pub fn lt(left: Expr, right: Expr) -> Expr {
        Expr::Lt(Box::new(left), Box::new(right))
    }

    /// `left <= right`.
    pub fn le(left: Expr, right: Expr) -> Expr {
        Expr::Le(Box::new(left), Box::new(right))
    }

    /// `left >= right`.
    pub fn ge(left: Expr, right: Expr) -> Expr {
        Expr::Ge(Box::new(left), Box::new(right))
    }

    /// `left == right`.
    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::Eq(Box::new(left), Box::new(right))
    }

    /// `left && right`.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::And(Box::new(left), Box::new(right))
    }

    /// `left || right`.
    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::Or(Box::new(left), Box::new(right))
    }

    /// `!inner`.
    pub fn not(inner: Expr) -> Expr {
        Expr::Not(Box::new(inner))
    }

    /// `if cond then then_branch else else_branch`.
    pub fn ite(cond: Expr, then_branch: Expr, else_branch: Expr) -> Expr {
        Expr::If(Box::new(cond), Box::new(then_branch), Box::new(else_branch))
    }

    /// `(left, right)`.
    pub fn pair(left: Expr, right: Expr) -> Expr {
        Expr::Pair(Box::new(left), Box::new(right))
    }

    /// `fst inner`.
    pub fn fst(inner: Expr) -> Expr {
        Expr::Fst(Box::new(inner))
    }

    /// `snd inner`.
    pub fn snd(inner: Expr) -> Expr {
        Expr::Snd(Box::new(inner))
    }

    /// The free variables of the expression.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Var(x) => out.push(x.clone()),
            Expr::Not(a) | Expr::Fst(a) | Expr::Snd(a) => a.collect_vars(out),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::Ge(a, b)
            | Expr::Eq(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Pair(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::If(c, t, e) => {
                c.collect_vars(out);
                t.collect_vars(out);
                e.collect_vars(out);
            }
        }
    }

    /// Substitutes a value for a variable (used when a receive binds its
    /// payload).
    #[must_use]
    pub fn subst(&self, name: &str, value: &Value) -> Expr {
        match self {
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Var(x) if x == name => Expr::Lit(value.clone()),
            Expr::Var(x) => Expr::Var(x.clone()),
            Expr::Add(a, b) => Expr::add(a.subst(name, value), b.subst(name, value)),
            Expr::Sub(a, b) => Expr::sub(a.subst(name, value), b.subst(name, value)),
            Expr::Mul(a, b) => Expr::mul(a.subst(name, value), b.subst(name, value)),
            Expr::Div(a, b) => Expr::div(a.subst(name, value), b.subst(name, value)),
            Expr::Lt(a, b) => Expr::lt(a.subst(name, value), b.subst(name, value)),
            Expr::Le(a, b) => Expr::le(a.subst(name, value), b.subst(name, value)),
            Expr::Ge(a, b) => Expr::ge(a.subst(name, value), b.subst(name, value)),
            Expr::Eq(a, b) => Expr::eq(a.subst(name, value), b.subst(name, value)),
            Expr::And(a, b) => Expr::and(a.subst(name, value), b.subst(name, value)),
            Expr::Or(a, b) => Expr::or(a.subst(name, value), b.subst(name, value)),
            Expr::Not(a) => Expr::not(a.subst(name, value)),
            Expr::If(c, t, e) => Expr::ite(
                c.subst(name, value),
                t.subst(name, value),
                e.subst(name, value),
            ),
            Expr::Pair(a, b) => Expr::pair(a.subst(name, value), b.subst(name, value)),
            Expr::Fst(a) => Expr::fst(a.subst(name, value)),
            Expr::Snd(a) => Expr::snd(a.subst(name, value)),
        }
    }

    /// Infers the sort of the expression under the given variable sorts
    /// (the ambient typing judgement `Γ ⊢ e : T` of Figure 5).
    ///
    /// # Errors
    ///
    /// Returns an error for unbound variables and ill-sorted operations.
    pub fn infer_sort(&self, env: &SortEnv) -> Result<Sort> {
        match self {
            Expr::Lit(v) => sort_of_value(v),
            Expr::Var(x) => env.get(x).cloned().ok_or_else(|| ProcError::UnboundVariable {
                name: x.clone(),
            }),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                let sa = a.infer_sort(env)?;
                let sb = b.infer_sort(env)?;
                if sa == sb && (sa == Sort::Nat || sa == Sort::Int) {
                    Ok(sa)
                } else {
                    Err(ProcError::IllTypedOperation {
                        context: format!("arithmetic on {sa} and {sb}"),
                    })
                }
            }
            Expr::Lt(a, b) | Expr::Le(a, b) | Expr::Ge(a, b) => {
                let sa = a.infer_sort(env)?;
                let sb = b.infer_sort(env)?;
                if sa == sb && (sa == Sort::Nat || sa == Sort::Int) {
                    Ok(Sort::Bool)
                } else {
                    Err(ProcError::IllTypedOperation {
                        context: format!("comparison on {sa} and {sb}"),
                    })
                }
            }
            Expr::Eq(a, b) => {
                let sa = a.infer_sort(env)?;
                let sb = b.infer_sort(env)?;
                if sa == sb {
                    Ok(Sort::Bool)
                } else {
                    Err(ProcError::IllTypedOperation {
                        context: format!("equality on {sa} and {sb}"),
                    })
                }
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                expect_sort(a, env, &Sort::Bool, "boolean operator")?;
                expect_sort(b, env, &Sort::Bool, "boolean operator")?;
                Ok(Sort::Bool)
            }
            Expr::Not(a) => {
                expect_sort(a, env, &Sort::Bool, "negation")?;
                Ok(Sort::Bool)
            }
            Expr::If(c, t, e) => {
                expect_sort(c, env, &Sort::Bool, "condition")?;
                let st = t.infer_sort(env)?;
                let se = e.infer_sort(env)?;
                if st == se {
                    Ok(st)
                } else {
                    Err(ProcError::IllTypedOperation {
                        context: format!("branches of a conditional have sorts {st} and {se}"),
                    })
                }
            }
            Expr::Pair(a, b) => Ok(Sort::prod(a.infer_sort(env)?, b.infer_sort(env)?)),
            Expr::Fst(a) => match a.infer_sort(env)? {
                Sort::Prod(sa, _) => Ok(*sa),
                other => Err(ProcError::IllTypedOperation {
                    context: format!("fst of a non-pair of sort {other}"),
                }),
            },
            Expr::Snd(a) => match a.infer_sort(env)? {
                Sort::Prod(_, sb) => Ok(*sb),
                other => Err(ProcError::IllTypedOperation {
                    context: format!("snd of a non-pair of sort {other}"),
                }),
            },
        }
    }

    /// Evaluates the expression under the given variable values.
    ///
    /// # Errors
    ///
    /// Returns an error for unbound variables and ill-typed operations.
    pub fn eval(&self, env: &ValueEnv) -> Result<Value> {
        match self {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Var(x) => env.get(x).cloned().ok_or_else(|| ProcError::UnboundVariable {
                name: x.clone(),
            }),
            Expr::Add(a, b) => numeric(a.eval(env)?, b.eval(env)?, "+", |x, y| x.checked_add(y), |x, y| Some(x + y)),
            Expr::Sub(a, b) => numeric(a.eval(env)?, b.eval(env)?, "-", |x, y| Some(x.saturating_sub(y)), |x, y| Some(x - y)),
            Expr::Mul(a, b) => numeric(a.eval(env)?, b.eval(env)?, "*", |x, y| x.checked_mul(y), |x, y| Some(x * y)),
            Expr::Div(a, b) => numeric(
                a.eval(env)?,
                b.eval(env)?,
                "/",
                |x, y| Some(if y == 0 { 0 } else { x / y }),
                |x, y| Some(if y == 0 { 0 } else { x / y }),
            ),
            Expr::Lt(a, b) => compare(a.eval(env)?, b.eval(env)?, |o| o == std::cmp::Ordering::Less),
            Expr::Le(a, b) => compare(a.eval(env)?, b.eval(env)?, |o| o != std::cmp::Ordering::Greater),
            Expr::Ge(a, b) => compare(a.eval(env)?, b.eval(env)?, |o| o != std::cmp::Ordering::Less),
            Expr::Eq(a, b) => Ok(Value::Bool(a.eval(env)? == b.eval(env)?)),
            Expr::And(a, b) => Ok(Value::Bool(a.eval(env)?.as_bool()? && b.eval(env)?.as_bool()?)),
            Expr::Or(a, b) => Ok(Value::Bool(a.eval(env)?.as_bool()? || b.eval(env)?.as_bool()?)),
            Expr::Not(a) => Ok(Value::Bool(!a.eval(env)?.as_bool()?)),
            Expr::If(c, t, e) => {
                if c.eval(env)?.as_bool()? {
                    t.eval(env)
                } else {
                    e.eval(env)
                }
            }
            Expr::Pair(a, b) => Ok(Value::pair(a.eval(env)?, b.eval(env)?)),
            Expr::Fst(a) => match a.eval(env)? {
                Value::Pair(x, _) => Ok(*x),
                other => Err(ProcError::IllTypedOperation {
                    context: format!("fst of {other}"),
                }),
            },
            Expr::Snd(a) => match a.eval(env)? {
                Value::Pair(_, y) => Ok(*y),
                other => Err(ProcError::IllTypedOperation {
                    context: format!("snd of {other}"),
                }),
            },
        }
    }

    /// Evaluates a closed expression (no free variables).
    ///
    /// # Errors
    ///
    /// See [`Expr::eval`].
    pub fn eval_closed(&self) -> Result<Value> {
        self.eval(&ValueEnv::new())
    }
}

fn expect_sort(e: &Expr, env: &SortEnv, expected: &Sort, context: &str) -> Result<()> {
    let found = e.infer_sort(env)?;
    if &found == expected {
        Ok(())
    } else {
        Err(ProcError::SortMismatch {
            expected: expected.clone(),
            found,
            context: context.to_owned(),
        })
    }
}

/// The sort of a literal value, when it is unambiguous. Injections take their
/// "obvious" sum sort with a unit on the other side (good enough for the
/// literal payloads used in practice; composite literals in protocols should
/// prefer explicit constructors in branches).
fn sort_of_value(v: &Value) -> Result<Sort> {
    Ok(match v {
        Value::Unit => Sort::Unit,
        Value::Nat(_) => Sort::Nat,
        Value::Int(_) => Sort::Int,
        Value::Bool(_) => Sort::Bool,
        Value::Str(_) => Sort::Str,
        Value::Inl(inner) => Sort::sum(sort_of_value(inner)?, Sort::Unit),
        Value::Inr(inner) => Sort::sum(Sort::Unit, sort_of_value(inner)?),
        Value::Pair(a, b) => Sort::prod(sort_of_value(a)?, sort_of_value(b)?),
        Value::Seq(vs) => match vs.first() {
            Some(first) => Sort::seq(sort_of_value(first)?),
            None => Sort::seq(Sort::Unit),
        },
    })
}

pub(crate) fn numeric(
    a: Value,
    b: Value,
    op: &str,
    on_nat: impl Fn(u64, u64) -> Option<u64>,
    on_int: impl Fn(i64, i64) -> Option<i64>,
) -> Result<Value> {
    match (a, b) {
        (Value::Nat(x), Value::Nat(y)) => on_nat(x, y).map(Value::Nat).ok_or_else(|| {
            ProcError::ArithmeticError {
                context: format!("nat overflow in {x} {op} {y}"),
            }
        }),
        (Value::Int(x), Value::Int(y)) => on_int(x, y).map(Value::Int).ok_or_else(|| {
            ProcError::ArithmeticError {
                context: format!("int overflow in {x} {op} {y}"),
            }
        }),
        (a, b) => Err(ProcError::IllTypedOperation {
            context: format!("{a} {op} {b}"),
        }),
    }
}

pub(crate) fn compare(a: Value, b: Value, pick: impl Fn(std::cmp::Ordering) -> bool) -> Result<Value> {
    match (&a, &b) {
        (Value::Nat(x), Value::Nat(y)) => Ok(Value::Bool(pick(x.cmp(y)))),
        (Value::Int(x), Value::Int(y)) => Ok(Value::Bool(pick(x.cmp(y)))),
        _ => Err(ProcError::IllTypedOperation {
            context: format!("comparison of {a} and {b}"),
        }),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Lt(a, b) => write!(f, "({a} < {b})"),
            Expr::Le(a, b) => write!(f, "({a} <= {b})"),
            Expr::Ge(a, b) => write!(f, "({a} >= {b})"),
            Expr::Eq(a, b) => write!(f, "({a} == {b})"),
            Expr::And(a, b) => write!(f, "({a} && {b})"),
            Expr::Or(a, b) => write!(f, "({a} || {b})"),
            Expr::Not(a) => write!(f, "!{a}"),
            Expr::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            Expr::Pair(a, b) => write!(f, "({a}, {b})"),
            Expr::Fst(a) => write!(f, "fst {a}"),
            Expr::Snd(a) => write!(f, "snd {a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with(name: &str, v: Value) -> ValueEnv {
        let mut env = ValueEnv::new();
        env.insert(name.to_owned(), v);
        env
    }

    #[test]
    fn arithmetic_on_nats_and_ints() {
        assert_eq!(
            Expr::add(Expr::lit(2u64), Expr::lit(3u64)).eval_closed().unwrap(),
            Value::Nat(5)
        );
        assert_eq!(
            Expr::mul(Expr::lit(-2i64), Expr::lit(3i64)).eval_closed().unwrap(),
            Value::Int(-6)
        );
        // Truncated subtraction on naturals.
        assert_eq!(
            Expr::sub(Expr::lit(2u64), Expr::lit(5u64)).eval_closed().unwrap(),
            Value::Nat(0)
        );
        // Division by zero yields zero, as in Coq's divn.
        assert_eq!(
            Expr::div(Expr::lit(7u64), Expr::lit(0u64)).eval_closed().unwrap(),
            Value::Nat(0)
        );
    }

    #[test]
    fn mixed_arithmetic_is_rejected() {
        let e = Expr::add(Expr::lit(1u64), Expr::lit(true));
        assert!(e.eval_closed().is_err());
        assert!(e.infer_sort(&SortEnv::new()).is_err());
    }

    #[test]
    fn comparisons_and_booleans() {
        assert_eq!(
            Expr::lt(Expr::lit(1u64), Expr::lit(2u64)).eval_closed().unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::ge(Expr::lit(1u64), Expr::lit(2u64)).eval_closed().unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::and(Expr::lit(true), Expr::not(Expr::lit(false))).eval_closed().unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::eq(Expr::lit("a"), Expr::lit("a")).eval_closed().unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn variables_are_looked_up_and_substituted() {
        let e = Expr::add(Expr::var("x"), Expr::lit(1u64));
        assert_eq!(e.eval(&env_with("x", Value::Nat(4))).unwrap(), Value::Nat(5));
        assert!(matches!(
            e.eval_closed(),
            Err(ProcError::UnboundVariable { .. })
        ));
        let closed = e.subst("x", &Value::Nat(4));
        assert_eq!(closed.eval_closed().unwrap(), Value::Nat(5));
        assert!(closed.free_vars().is_empty());
        assert_eq!(e.free_vars(), vec!["x".to_owned()]);
    }

    #[test]
    fn conditionals_pick_the_right_branch() {
        let e = Expr::ite(
            Expr::ge(Expr::var("x"), Expr::lit(10u64)),
            Expr::lit("big"),
            Expr::lit("small"),
        );
        assert_eq!(e.eval(&env_with("x", Value::Nat(12))).unwrap(), Value::Str("big".into()));
        assert_eq!(e.eval(&env_with("x", Value::Nat(2))).unwrap(), Value::Str("small".into()));
    }

    #[test]
    fn sort_inference_follows_the_structure() {
        let mut senv = SortEnv::new();
        senv.insert("x".to_owned(), Sort::Nat);
        let e = Expr::pair(Expr::var("x"), Expr::lt(Expr::var("x"), Expr::lit(3u64)));
        assert_eq!(e.infer_sort(&senv).unwrap(), Sort::prod(Sort::Nat, Sort::Bool));
        assert_eq!(Expr::fst(e.clone()).infer_sort(&senv).unwrap(), Sort::Nat);
        assert_eq!(Expr::snd(e).infer_sort(&senv).unwrap(), Sort::Bool);
    }

    #[test]
    fn pair_projections_evaluate() {
        let p = Expr::pair(Expr::lit(1u64), Expr::lit(false));
        assert_eq!(Expr::fst(p.clone()).eval_closed().unwrap(), Value::Nat(1));
        assert_eq!(Expr::snd(p).eval_closed().unwrap(), Value::Bool(false));
        assert!(Expr::fst(Expr::lit(3u64)).eval_closed().is_err());
    }

    #[test]
    fn conditional_branches_must_agree_on_sort() {
        let e = Expr::ite(Expr::lit(true), Expr::lit(1u64), Expr::lit(false));
        assert!(e.infer_sort(&SortEnv::new()).is_err());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::ite(
            Expr::ge(Expr::var("x"), Expr::lit(3u64)),
            Expr::lit(1u64),
            Expr::lit(0u64),
        );
        assert_eq!(e.to_string(), "(if (x >= 3) then 1 else 0)");
    }

    #[test]
    fn nat_overflow_is_an_error() {
        let e = Expr::add(Expr::lit(u64::MAX), Expr::lit(1u64));
        assert!(matches!(e.eval_closed(), Err(ProcError::ArithmeticError { .. })));
    }
}
