//! The process typing system `Γ ⊢lt e : L` (Definition 4.2, Figure 5,
//! `of_lt` in `Proc.v`).
//!
//! Typing is syntax-directed and decidable: [`type_check`] verifies that a
//! process implements a given local type, and [`infer_local_type`] computes
//! the *natural* local type of a process (the one in which every send is a
//! singleton internal choice). The Zooid DSL layer
//! ([`zooid-dsl`](https://docs.rs/zooid-dsl)) is responsible for aligning the
//! inferred type with a projection, using `skip` annotations and equality up
//! to unravelling, exactly as described in §4.2–§5.1 of the paper.

use zooid_mpst::common::branch::Branch;
use zooid_mpst::local::LocalType;

use crate::error::{ProcError, Result};
use crate::expr::SortEnv;
use crate::external::{ExternalKind, Externals};
use crate::proc::Proc;

/// The context of the typing judgement: the sorts of the free expression
/// variables (`Γ`) and the signatures of the external actions.
#[derive(Debug, Clone)]
pub struct TypingCtx<'a> {
    /// Sorts of the expression variables currently in scope.
    pub gamma: SortEnv,
    /// Declared external actions.
    pub externals: &'a Externals,
}

impl<'a> TypingCtx<'a> {
    /// An empty context over the given external declarations.
    pub fn new(externals: &'a Externals) -> Self {
        TypingCtx {
            gamma: SortEnv::new(),
            externals,
        }
    }

    fn bind(&self, var: &str, sort: zooid_mpst::Sort) -> TypingCtx<'a> {
        let mut gamma = self.gamma.clone();
        gamma.insert(var.to_owned(), sort);
        TypingCtx {
            gamma,
            externals: self.externals,
        }
    }
}

/// Checks `Γ ⊢lt proc : local` with an empty variable context.
///
/// # Errors
///
/// Returns a [`ProcError`] describing the first typing rule that fails.
///
/// # Examples
///
/// ```
/// use zooid_proc::{type_check, Expr, Externals, Proc, RecvAlt};
/// use zooid_mpst::local::LocalType;
/// use zooid_mpst::{Role, Sort};
///
/// // send Bob (l, 7)! finish  :  ![Bob]; l(nat). end
/// let p = Proc::send(Role::new("Bob"), "l", Expr::lit(7u64), Proc::Finish);
/// let l = LocalType::send1(Role::new("Bob"), "l", Sort::Nat, LocalType::End);
/// assert!(type_check(&p, &l, &Externals::new()).is_ok());
/// ```
pub fn type_check(proc: &Proc, local: &LocalType, externals: &Externals) -> Result<()> {
    check(proc, local, &TypingCtx::new(externals))
}

/// Checks `Γ ⊢lt proc : local` under an explicit context.
///
/// # Errors
///
/// Returns a [`ProcError`] describing the first typing rule that fails.
pub fn type_check_in(proc: &Proc, local: &LocalType, ctx: &TypingCtx<'_>) -> Result<()> {
    check(proc, local, ctx)
}

fn check(proc: &Proc, local: &LocalType, ctx: &TypingCtx<'_>) -> Result<()> {
    match proc {
        // [p-ty-end]
        Proc::Finish => match local {
            LocalType::End => Ok(()),
            other => Err(ProcError::TypeError {
                reason: format!("finish cannot implement the local type {other}"),
            }),
        },
        // [p-ty-jump]
        Proc::Jump(i) => match local {
            LocalType::Var(j) if i == j => Ok(()),
            other => Err(ProcError::TypeError {
                reason: format!("jump X{i} cannot implement the local type {other}"),
            }),
        },
        // [p-ty-loop]
        Proc::Loop(body) => match local {
            LocalType::Rec(lbody) => check(body, lbody, ctx),
            other => Err(ProcError::TypeError {
                reason: format!("loop cannot implement the non-recursive local type {other}"),
            }),
        },
        // [p-ty-send]
        Proc::Send {
            to,
            label,
            payload,
            cont,
        } => match local {
            LocalType::Send {
                to: lto,
                branches,
            } if lto == to => {
                let branch = find_branch(branches, label).ok_or_else(|| ProcError::UnknownLabel {
                    label: label.clone(),
                    partner: to.clone(),
                })?;
                let payload_sort = payload.infer_sort(&ctx.gamma)?;
                if payload_sort != branch.sort {
                    return Err(ProcError::SortMismatch {
                        expected: branch.sort.clone(),
                        found: payload_sort,
                        context: format!("payload of send {to}({label}, ...)"),
                    });
                }
                check(cont, &branch.cont, ctx)
            }
            other => Err(ProcError::TypeError {
                reason: format!("send to {to} cannot implement the local type {other}"),
            }),
        },
        // [p-ty-recv]: every alternative of the type must be implemented.
        Proc::Recv { from, alts } => match local {
            LocalType::Recv {
                from: lfrom,
                branches,
            } if lfrom == from => {
                if alts.len() != branches.len() {
                    return Err(ProcError::TypeError {
                        reason: format!(
                            "receive from {from} implements {} alternatives but its local type \
                             offers {}",
                            alts.len(),
                            branches.len()
                        ),
                    });
                }
                for branch in branches {
                    let alt = alts
                        .iter()
                        .find(|a| a.label == branch.label)
                        .ok_or_else(|| ProcError::MissingAlternative {
                            label: branch.label.clone(),
                        })?;
                    if alt.sort != branch.sort {
                        return Err(ProcError::SortMismatch {
                            expected: branch.sort.clone(),
                            found: alt.sort.clone(),
                            context: format!("payload of alternative {} of recv {from}", alt.label),
                        });
                    }
                    check(&alt.cont, &branch.cont, &ctx.bind(&alt.var, alt.sort.clone()))?;
                }
                Ok(())
            }
            other => Err(ProcError::TypeError {
                reason: format!("receive from {from} cannot implement the local type {other}"),
            }),
        },
        // if-then-else: both branches implement the same type (the paper
        // proves this admissible by case analysis on the Gallina term).
        Proc::Cond {
            cond,
            then_branch,
            else_branch,
        } => {
            let cond_sort = cond.infer_sort(&ctx.gamma)?;
            if cond_sort != zooid_mpst::Sort::Bool {
                return Err(ProcError::SortMismatch {
                    expected: zooid_mpst::Sort::Bool,
                    found: cond_sort,
                    context: "condition of an if-process".to_owned(),
                });
            }
            check(then_branch, local, ctx)?;
            check(else_branch, local, ctx)
        }
        // [p-ty-read]
        Proc::Read { action, var, cont } => {
            let sig = lookup_external(ctx, action, ExternalKind::Read)?;
            check(cont, local, &ctx.bind(var, sig.output.clone()))
        }
        // [p-ty-write]
        Proc::Write { action, arg, cont } => {
            let sig = lookup_external(ctx, action, ExternalKind::Write)?;
            let arg_sort = arg.infer_sort(&ctx.gamma)?;
            if arg_sort != sig.input {
                return Err(ProcError::SortMismatch {
                    expected: sig.input.clone(),
                    found: arg_sort,
                    context: format!("argument of write action `{action}`"),
                });
            }
            check(cont, local, ctx)
        }
        // [p-ty-interact]
        Proc::Interact {
            action,
            arg,
            var,
            cont,
        } => {
            let sig = lookup_external(ctx, action, ExternalKind::Interact)?;
            let arg_sort = arg.infer_sort(&ctx.gamma)?;
            if arg_sort != sig.input {
                return Err(ProcError::SortMismatch {
                    expected: sig.input.clone(),
                    found: arg_sort,
                    context: format!("argument of interact action `{action}`"),
                });
            }
            check(cont, local, &ctx.bind(var, sig.output.clone()))
        }
    }
}

fn lookup_external<'a>(
    ctx: &'a TypingCtx<'_>,
    name: &str,
    expected_kind: ExternalKind,
) -> Result<&'a crate::external::ExternalSig> {
    let sig = ctx
        .externals
        .signature(name)
        .ok_or_else(|| ProcError::UnknownExternal { name: name.into() })?;
    if sig.kind != expected_kind {
        return Err(ProcError::TypeError {
            reason: format!(
                "external action `{name}` is declared as {} but used as {expected_kind}",
                sig.kind
            ),
        });
    }
    Ok(sig)
}

fn find_branch<'a>(
    branches: &'a [Branch<LocalType>],
    label: &zooid_mpst::Label,
) -> Option<&'a Branch<LocalType>> {
    branches.iter().find(|b| &b.label == label)
}

/// Infers the *natural* local type of a process: the type whose internal
/// choices contain exactly the labels the process can actually send.
///
/// Because the paper's typing has no subtyping, this inferred type only
/// coincides with a projection when the process implements every alternative;
/// the DSL's `skip` construct exists precisely to extend the inferred type
/// with unimplemented alternatives (§4.2).
///
/// # Errors
///
/// Fails if the process is ill-sorted (e.g. the two branches of an `if`
/// would get different types).
pub fn infer_local_type(proc: &Proc, externals: &Externals) -> Result<LocalType> {
    infer(proc, &TypingCtx::new(externals))
}

fn infer(proc: &Proc, ctx: &TypingCtx<'_>) -> Result<LocalType> {
    match proc {
        Proc::Finish => Ok(LocalType::End),
        Proc::Jump(i) => Ok(LocalType::Var(*i)),
        Proc::Loop(body) => Ok(LocalType::rec(infer(body, ctx)?)),
        Proc::Send {
            to,
            label,
            payload,
            cont,
        } => {
            let sort = payload.infer_sort(&ctx.gamma)?;
            let cont_ty = infer(cont, ctx)?;
            Ok(LocalType::send1(to.clone(), label.clone(), sort, cont_ty))
        }
        Proc::Recv { from, alts } => {
            let mut branches = Vec::with_capacity(alts.len());
            for a in alts {
                let cont_ty = infer(&a.cont, &ctx.bind(&a.var, a.sort.clone()))?;
                branches.push((a.label.clone(), a.sort.clone(), cont_ty));
            }
            Ok(LocalType::recv(from.clone(), branches))
        }
        Proc::Cond {
            then_branch,
            else_branch,
            ..
        } => {
            let t = infer(then_branch, ctx)?;
            let e = infer(else_branch, ctx)?;
            if t == e {
                Ok(t)
            } else {
                Err(ProcError::TypeError {
                    reason: format!(
                        "the branches of an if-process have different local types: {t} and {e}"
                    ),
                })
            }
        }
        Proc::Read { action, var, cont } => {
            let sig = lookup_external(ctx, action, ExternalKind::Read)?;
            infer(cont, &ctx.bind(var, sig.output.clone()))
        }
        Proc::Write { action, cont, .. } => {
            lookup_external(ctx, action, ExternalKind::Write)?;
            infer(cont, ctx)
        }
        Proc::Interact {
            action, var, cont, ..
        } => {
            let sig = lookup_external(ctx, action, ExternalKind::Interact)?;
            infer(cont, &ctx.bind(var, sig.output.clone()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::proc::RecvAlt;
    use zooid_mpst::{Role, Sort};

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    /// The §4.1 server: loop { recv p { l1(x). send p (l1, x + m). jump
    /// ; l2(_). finish } }.
    fn server(m: u64) -> Proc {
        Proc::loop_(Proc::recv(
            r("p"),
            vec![
                RecvAlt::new(
                    "l1",
                    Sort::Nat,
                    "x",
                    Proc::send(
                        r("p"),
                        "l1",
                        Expr::add(Expr::var("x"), Expr::lit(m)),
                        Proc::Jump(0),
                    ),
                ),
                RecvAlt::new("l2", Sort::Unit, "_x", Proc::Finish),
            ],
        ))
    }

    /// The local type of the server:
    /// mu X. ?[p];{ l1(nat). ![p];l1(nat). X ; l2(unit). end }.
    fn server_type() -> LocalType {
        LocalType::rec(LocalType::recv(
            r("p"),
            vec![
                (
                    zooid_mpst::Label::new("l1"),
                    Sort::Nat,
                    LocalType::send1(r("p"), "l1", Sort::Nat, LocalType::var(0)),
                ),
                (zooid_mpst::Label::new("l2"), Sort::Unit, LocalType::End),
            ],
        ))
    }

    #[test]
    fn the_section_4_1_server_is_well_typed() {
        assert!(type_check(&server(5), &server_type(), &Externals::new()).is_ok());
    }

    #[test]
    fn inference_reconstructs_the_server_type() {
        let inferred = infer_local_type(&server(5), &Externals::new()).unwrap();
        assert_eq!(inferred, server_type());
    }

    #[test]
    fn p_ty_end_rejects_pending_communication() {
        let l = LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End);
        assert!(matches!(
            type_check(&Proc::Finish, &l, &Externals::new()),
            Err(ProcError::TypeError { .. })
        ));
    }

    #[test]
    fn p_ty_send_checks_partner_label_and_sort() {
        let l = LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End);
        let ok = Proc::send(r("q"), "l", Expr::lit(1u64), Proc::Finish);
        assert!(type_check(&ok, &l, &Externals::new()).is_ok());

        let wrong_partner = Proc::send(r("z"), "l", Expr::lit(1u64), Proc::Finish);
        assert!(type_check(&wrong_partner, &l, &Externals::new()).is_err());

        let wrong_label = Proc::send(r("q"), "m", Expr::lit(1u64), Proc::Finish);
        assert!(matches!(
            type_check(&wrong_label, &l, &Externals::new()),
            Err(ProcError::UnknownLabel { .. })
        ));

        let wrong_sort = Proc::send(r("q"), "l", Expr::lit(true), Proc::Finish);
        assert!(matches!(
            type_check(&wrong_sort, &l, &Externals::new()),
            Err(ProcError::SortMismatch { .. })
        ));
    }

    #[test]
    fn p_ty_recv_requires_every_alternative() {
        let l = LocalType::recv(
            r("p"),
            vec![
                (zooid_mpst::Label::new("a"), Sort::Nat, LocalType::End),
                (zooid_mpst::Label::new("b"), Sort::Unit, LocalType::End),
            ],
        );
        let full = Proc::recv(
            r("p"),
            vec![
                RecvAlt::new("a", Sort::Nat, "x", Proc::Finish),
                RecvAlt::new("b", Sort::Unit, "y", Proc::Finish),
            ],
        );
        assert!(type_check(&full, &l, &Externals::new()).is_ok());

        let partial = Proc::recv(r("p"), vec![RecvAlt::new("a", Sort::Nat, "x", Proc::Finish)]);
        assert!(type_check(&partial, &l, &Externals::new()).is_err());
    }

    #[test]
    fn received_variables_are_usable_in_continuations() {
        // recv p (l, x:nat) ? send p (l2, x*2)! finish
        let p = Proc::recv1(
            r("p"),
            "l",
            Sort::Nat,
            "x",
            Proc::send(
                r("p"),
                "l2",
                Expr::mul(Expr::var("x"), Expr::lit(2u64)),
                Proc::Finish,
            ),
        );
        let l = LocalType::recv1(
            r("p"),
            "l",
            Sort::Nat,
            LocalType::send1(r("p"), "l2", Sort::Nat, LocalType::End),
        );
        assert!(type_check(&p, &l, &Externals::new()).is_ok());
    }

    #[test]
    fn unbound_variables_are_rejected() {
        let p = Proc::send(r("q"), "l", Expr::var("ghost"), Proc::Finish);
        let l = LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End);
        assert!(matches!(
            type_check(&p, &l, &Externals::new()),
            Err(ProcError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn if_processes_require_both_branches_to_match_the_type() {
        let l = LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End);
        let good = Proc::cond(
            Expr::lit(true),
            Proc::send(r("q"), "l", Expr::lit(1u64), Proc::Finish),
            Proc::send(r("q"), "l", Expr::lit(2u64), Proc::Finish),
        );
        assert!(type_check(&good, &l, &Externals::new()).is_ok());

        let bad = Proc::cond(
            Expr::lit(true),
            Proc::send(r("q"), "l", Expr::lit(1u64), Proc::Finish),
            Proc::Finish,
        );
        assert!(type_check(&bad, &l, &Externals::new()).is_err());

        let bad_cond = Proc::cond(
            Expr::lit(3u64),
            Proc::send(r("q"), "l", Expr::lit(1u64), Proc::Finish),
            Proc::send(r("q"), "l", Expr::lit(2u64), Proc::Finish),
        );
        assert!(type_check(&bad_cond, &l, &Externals::new()).is_err());
    }

    #[test]
    fn external_actions_do_not_change_the_local_type() {
        let mut ext = Externals::new();
        ext.register_read("ask", Sort::Nat, || crate::value::Value::Nat(1));
        ext.register_write("log", Sort::Nat, |_| ());
        ext.register_interact("compute", Sort::Nat, Sort::Nat, |v| v);

        // read ask (x. write log x (interact compute x (y. send q (l, y)! finish)))
        let p = Proc::read(
            "ask",
            "x",
            Proc::write(
                "log",
                Expr::var("x"),
                Proc::interact(
                    "compute",
                    Expr::var("x"),
                    "y",
                    Proc::send(r("q"), "l", Expr::var("y"), Proc::Finish),
                ),
            ),
        );
        let l = LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End);
        assert!(type_check(&p, &l, &ext).is_ok());
        assert_eq!(infer_local_type(&p, &ext).unwrap(), l);
    }

    #[test]
    fn misused_external_kinds_are_rejected() {
        let mut ext = Externals::new();
        ext.register_read("ask", Sort::Nat, || crate::value::Value::Nat(1));
        // `ask` is a read action, not a write action.
        let p = Proc::write("ask", Expr::lit(1u64), Proc::Finish);
        assert!(type_check(&p, &LocalType::End, &ext).is_err());
        // Unknown actions are also rejected.
        let q = Proc::read("nope", "x", Proc::Finish);
        assert!(matches!(
            type_check(&q, &LocalType::End, &ext),
            Err(ProcError::UnknownExternal { .. })
        ));
    }

    #[test]
    fn loops_must_match_recursive_types() {
        let p = Proc::loop_(Proc::send(r("q"), "l", Expr::lit(1u64), Proc::Jump(0)));
        let l = LocalType::rec(LocalType::send1(r("q"), "l", Sort::Nat, LocalType::var(0)));
        assert!(type_check(&p, &l, &Externals::new()).is_ok());
        // Jump indices must line up.
        let bad = Proc::loop_(Proc::send(r("q"), "l", Expr::lit(1u64), Proc::Jump(1)));
        assert!(type_check(&bad, &l, &Externals::new()).is_err());
        // A loop against a non-recursive type fails.
        assert!(type_check(&p, &l.unfold_once(), &Externals::new()).is_err());
    }

    #[test]
    fn inference_fails_on_mismatched_if_branches() {
        let p = Proc::cond(
            Expr::lit(true),
            Proc::send(r("q"), "a", Expr::lit(1u64), Proc::Finish),
            Proc::send(r("q"), "b", Expr::lit(1u64), Proc::Finish),
        );
        assert!(infer_local_type(&p, &Externals::new()).is_err());
    }
}
