//! A session-typed process language: the `proc` layer of Zooid (§4.1–4.3 of
//! the paper, `Proc.v` in the Coq development).
//!
//! The crate provides:
//!
//! * [`value::Value`] — runtime values, one per payload [`Sort`];
//! * [`expr::Expr`] — a small, deeply-embedded expression language standing
//!   in for the paper's shallow embedding of Gallina terms (the paper's
//!   payload computations are opaque to its typing judgement too; a deep
//!   embedding keeps typing decidable in Rust — see `DESIGN.md`);
//! * [`external`] — registries of *external actions*, the counterpart of the
//!   OCaml functions invoked by `read`/`write`/`interact`;
//! * [`proc::Proc`] — the process syntax (Definition 4.1);
//! * [`typing`] — the typing judgement `Γ ⊢lt e : L` (Definition 4.2,
//!   Figure 5) as a decidable checker;
//! * [`semantics`] — the labelled transition system for processes
//!   (Definition 4.4) with value-carrying actions and their erasure;
//! * [`subtrace`] — the complete-subtrace relation (Definition 4.6);
//! * [`preservation`] — executable counterparts of type preservation
//!   (Theorem 4.5) and of *process traces are global traces* (Theorem 4.7).
//!
//! [`Sort`]: zooid_mpst::Sort

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compile;
pub mod error;
pub mod expr;
pub mod external;
pub mod preservation;
pub mod proc;
pub mod semantics;
pub mod subtrace;
pub mod typing;
pub mod value;

pub use compile::{CompiledProc, EventMeta};
pub use error::{ProcError, Result};
pub use expr::Expr;
pub use external::{ExternalKind, ExternalSig, Externals};
pub use proc::{Proc, RecvAlt};
pub use semantics::{erase, ValueAction};
pub use subtrace::is_complete_subtrace;
pub use typing::{infer_local_type, type_check, TypingCtx};
pub use value::Value;
