//! The complete-subtrace relation (Definition 4.6, `subtrace` in `Local.v`).

use zooid_mpst::{Role, Trace};

/// Decides `t1 ⪯p t2`: is `t1` a *complete subtrace* of `t2` for participant
/// `p`?
///
/// Every action of `t2` whose subject is `p` must occur in `t1`, in the same
/// relative position — i.e. `t1` is exactly `t2` with (some of) the actions
/// of *other* participants removed. This is the relation used by Theorem 4.7
/// to state that a well-typed process's trace is contained in a trace of the
/// global protocol.
///
/// Both traces are finite prefixes here; the coinductive relation of the
/// paper is approximated the same way as trace admissibility (see
/// [`Trace`]).
///
/// # Examples
///
/// ```
/// use zooid_mpst::{Action, Label, Role, Sort, Trace};
/// use zooid_proc::is_complete_subtrace;
///
/// let p = Role::new("p");
/// let a = Action::send(p.clone(), Role::new("q"), Label::new("l"), Sort::Nat);
/// let other = Action::send(Role::new("x"), Role::new("y"), Label::new("m"), Sort::Bool);
///
/// let global = Trace::from(vec![other.clone(), a.clone(), other.dual()]);
/// let local = Trace::from(vec![a.clone()]);
/// assert!(is_complete_subtrace(&local, &global, &p));
/// // Dropping p's own action is not allowed.
/// assert!(!is_complete_subtrace(&Trace::empty(), &global, &p));
/// ```
pub fn is_complete_subtrace(t1: &Trace, t2: &Trace, p: &Role) -> bool {
    subtrace(t1.actions(), t2.actions(), p)
}

fn subtrace(t1: &[zooid_mpst::Action], t2: &[zooid_mpst::Action], p: &Role) -> bool {
    match t2.split_first() {
        None => t1.is_empty(),
        Some((a2, rest2)) => {
            if a2.subject() != p {
                // Actions of other participants may be skipped.
                subtrace(t1, rest2, p)
            } else {
                // Actions of p must be matched exactly and in order.
                match t1.split_first() {
                    Some((a1, rest1)) => a1 == a2 && subtrace(rest1, rest2, p),
                    None => false,
                }
            }
        }
    }
}

/// Convenience: the restriction of `t` to the actions whose subject is `p`
/// is always a complete subtrace of `t`; this helper returns it.
pub fn projection_of_trace(t: &Trace, p: &Role) -> Trace {
    t.restrict_to_subject(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zooid_mpst::{Action, Label, Sort};

    fn p() -> Role {
        Role::new("p")
    }

    fn p_act(i: usize) -> Action {
        Action::send(p(), Role::new("q"), Label::new(format!("l{i}")), Sort::Nat)
    }

    fn other_act(i: usize) -> Action {
        Action::send(
            Role::new("x"),
            Role::new("y"),
            Label::new(format!("m{i}")),
            Sort::Nat,
        )
    }

    #[test]
    fn empty_is_subtrace_of_empty() {
        assert!(is_complete_subtrace(&Trace::empty(), &Trace::empty(), &p()));
    }

    #[test]
    fn other_participants_actions_may_be_skipped() {
        let t2 = Trace::from(vec![other_act(0), p_act(1), other_act(2), p_act(3)]);
        let t1 = Trace::from(vec![p_act(1), p_act(3)]);
        assert!(is_complete_subtrace(&t1, &t2, &p()));
        assert!(is_complete_subtrace(&Trace::empty(), &Trace::from(vec![other_act(0)]), &p()));
    }

    #[test]
    fn own_actions_cannot_be_skipped_or_reordered() {
        let t2 = Trace::from(vec![p_act(1), p_act(2)]);
        assert!(!is_complete_subtrace(&Trace::from(vec![p_act(2)]), &t2, &p()));
        assert!(!is_complete_subtrace(
            &Trace::from(vec![p_act(2), p_act(1)]),
            &t2,
            &p()
        ));
        assert!(is_complete_subtrace(&Trace::from(vec![p_act(1), p_act(2)]), &t2, &p()));
    }

    #[test]
    fn extra_actions_in_the_subtrace_are_rejected() {
        let t2 = Trace::from(vec![other_act(0)]);
        let t1 = Trace::from(vec![p_act(1)]);
        assert!(!is_complete_subtrace(&t1, &t2, &p()));
    }

    #[test]
    fn restriction_is_always_a_complete_subtrace() {
        let t = Trace::from(vec![other_act(0), p_act(1), p_act(2), other_act(3), p_act(4)]);
        let restricted = projection_of_trace(&t, &p());
        assert_eq!(restricted.len(), 3);
        assert!(is_complete_subtrace(&restricted, &t, &p()));
    }

    #[test]
    fn the_relation_is_sensitive_to_the_participant() {
        let q = Role::new("q");
        // q is the receiver of p's sends, so p's sends are not q-subject
        // actions and the empty trace is a complete q-subtrace.
        let t = Trace::from(vec![p_act(0)]);
        assert!(is_complete_subtrace(&Trace::empty(), &t, &q));
        assert!(!is_complete_subtrace(&Trace::empty(), &t, &p()));
    }
}
