//! Runtime values: one inhabitant shape per payload sort (`coq_ty` in the
//! Coq development).

use std::fmt;

use serde::{Deserialize, Serialize};
use zooid_mpst::Sort;

use crate::error::{ProcError, Result};

/// A runtime value exchanged in messages or manipulated by expressions.
///
/// Every value belongs to at least one [`Sort`]; [`Value::has_sort`] checks
/// membership and [`Value::default_of`] produces a canonical inhabitant of a
/// sort (used by the bounded explorers when a representative payload is
/// needed).
///
/// # Examples
///
/// ```
/// use zooid_proc::Value;
/// use zooid_mpst::Sort;
///
/// let v = Value::Pair(Box::new(Value::Nat(3)), Box::new(Value::Bool(true)));
/// assert!(v.has_sort(&Sort::prod(Sort::Nat, Sort::Bool)));
/// assert!(!v.has_sort(&Sort::Nat));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A natural number.
    Nat(u64),
    /// A signed integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// Left injection into a sum sort.
    Inl(Box<Value>),
    /// Right injection into a sum sort.
    Inr(Box<Value>),
    /// A pair.
    Pair(Box<Value>, Box<Value>),
    /// A finite sequence.
    Seq(Vec<Value>),
}

impl Value {
    /// Convenience constructor for pairs.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for left injections.
    pub fn inl(v: Value) -> Value {
        Value::Inl(Box::new(v))
    }

    /// Convenience constructor for right injections.
    pub fn inr(v: Value) -> Value {
        Value::Inr(Box::new(v))
    }

    /// Returns `true` if the value inhabits the given sort.
    pub fn has_sort(&self, sort: &Sort) -> bool {
        match (self, sort) {
            (Value::Unit, Sort::Unit) => true,
            (Value::Nat(_), Sort::Nat) => true,
            (Value::Int(_), Sort::Int) => true,
            (Value::Bool(_), Sort::Bool) => true,
            (Value::Str(_), Sort::Str) => true,
            (Value::Inl(v), Sort::Sum(a, _)) => v.has_sort(a),
            (Value::Inr(v), Sort::Sum(_, b)) => v.has_sort(b),
            (Value::Pair(a, b), Sort::Prod(sa, sb)) => a.has_sort(sa) && b.has_sort(sb),
            (Value::Seq(vs), Sort::Seq(elem)) => vs.iter().all(|v| v.has_sort(elem)),
            _ => false,
        }
    }

    /// A canonical inhabitant of the given sort (zero, `false`, the empty
    /// string/sequence, left injections, …).
    pub fn default_of(sort: &Sort) -> Value {
        match sort {
            Sort::Unit => Value::Unit,
            Sort::Nat => Value::Nat(0),
            Sort::Int => Value::Int(0),
            Sort::Bool => Value::Bool(false),
            Sort::Str => Value::Str(String::new()),
            Sort::Sum(a, _) => Value::inl(Value::default_of(a)),
            Sort::Prod(a, b) => Value::pair(Value::default_of(a), Value::default_of(b)),
            Sort::Seq(_) => Value::Seq(Vec::new()),
        }
    }

    /// Extracts a natural number.
    ///
    /// # Errors
    ///
    /// Returns [`ProcError::IllTypedOperation`] for non-`Nat` values.
    pub fn as_nat(&self) -> Result<u64> {
        match self {
            Value::Nat(n) => Ok(*n),
            other => Err(ProcError::IllTypedOperation {
                context: format!("expected a nat, found {other}"),
            }),
        }
    }

    /// Extracts a signed integer.
    ///
    /// # Errors
    ///
    /// Returns [`ProcError::IllTypedOperation`] for non-`Int` values.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(n) => Ok(*n),
            other => Err(ProcError::IllTypedOperation {
                context: format!("expected an int, found {other}"),
            }),
        }
    }

    /// Extracts a boolean.
    ///
    /// # Errors
    ///
    /// Returns [`ProcError::IllTypedOperation`] for non-`Bool` values.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ProcError::IllTypedOperation {
                context: format!("expected a bool, found {other}"),
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Nat(n) => write!(f, "{n}"),
            Value::Int(n) => write!(f, "{n}i"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Inl(v) => write!(f, "inl {v}"),
            Value::Inr(v) => write!(f, "inr {v}"),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::Seq(vs) => {
                f.write_str("[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Nat(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<()> for Value {
    fn from((): ()) -> Self {
        Value::Unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_values_have_base_sorts() {
        assert!(Value::Unit.has_sort(&Sort::Unit));
        assert!(Value::Nat(3).has_sort(&Sort::Nat));
        assert!(Value::Int(-2).has_sort(&Sort::Int));
        assert!(Value::Bool(true).has_sort(&Sort::Bool));
        assert!(Value::Str("hi".into()).has_sort(&Sort::Str));
        assert!(!Value::Nat(1).has_sort(&Sort::Int));
    }

    #[test]
    fn composite_values_follow_their_structure() {
        let sum = Sort::sum(Sort::Nat, Sort::Bool);
        assert!(Value::inl(Value::Nat(1)).has_sort(&sum));
        assert!(Value::inr(Value::Bool(false)).has_sort(&sum));
        assert!(!Value::inl(Value::Bool(true)).has_sort(&sum));

        let seq = Sort::seq(Sort::Nat);
        assert!(Value::Seq(vec![Value::Nat(1), Value::Nat(2)]).has_sort(&seq));
        assert!(!Value::Seq(vec![Value::Nat(1), Value::Bool(true)]).has_sort(&seq));
    }

    #[test]
    fn defaults_inhabit_their_sort() {
        for sort in [
            Sort::Unit,
            Sort::Nat,
            Sort::Int,
            Sort::Bool,
            Sort::Str,
            Sort::sum(Sort::Nat, Sort::Bool),
            Sort::prod(Sort::Unit, Sort::seq(Sort::Int)),
            Sort::seq(Sort::Nat),
        ] {
            assert!(
                Value::default_of(&sort).has_sort(&sort),
                "default of {sort} should inhabit it"
            );
        }
    }

    #[test]
    fn accessors_check_the_shape() {
        assert_eq!(Value::Nat(4).as_nat().unwrap(), 4);
        assert!(Value::Bool(true).as_nat().is_err());
        assert_eq!(Value::Int(-3).as_int().unwrap(), -3);
        assert!(Value::Nat(3).as_int().is_err());
        assert!(Value::Bool(true).as_bool().unwrap());
        assert!(Value::Unit.as_bool().is_err());
    }

    #[test]
    fn conversions_from_rust_types() {
        assert_eq!(Value::from(3u64), Value::Nat(3));
        assert_eq!(Value::from(-1i64), Value::Int(-1));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(()), Value::Unit);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Value::pair(Value::Nat(1), Value::Bool(true)).to_string(), "(1, true)");
        assert_eq!(Value::Seq(vec![Value::Nat(1)]).to_string(), "[1]");
        assert_eq!(Value::inl(Value::Unit).to_string(), "inl ()");
    }
}
