//! Protocol participants (also called *roles*).

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A participant of a multiparty protocol.
///
/// Roles are compared by name. They are cheap to clone (the name is reference
/// counted), so protocol descriptions can mention the same role many times
/// without repeated allocation.
///
/// # Examples
///
/// ```
/// use zooid_mpst::Role;
///
/// let alice = Role::new("Alice");
/// assert_eq!(alice.name(), "Alice");
/// assert_eq!(alice, Role::new("Alice"));
/// assert_ne!(alice, Role::new("Bob"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Role(Arc<str>);

impl Role {
    /// Creates a role with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Role(Arc::from(name.as_ref()))
    }

    /// Returns the role's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Role {
    fn from(name: &str) -> Self {
        Role::new(name)
    }
}

impl From<String> for Role {
    fn from(name: String) -> Self {
        Role::new(name)
    }
}

impl AsRef<str> for Role {
    fn as_ref(&self) -> &str {
        self.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_by_name() {
        assert_eq!(Role::new("p"), Role::new("p"));
        assert_ne!(Role::new("p"), Role::new("q"));
    }

    #[test]
    fn display_shows_name() {
        assert_eq!(Role::new("Seller").to_string(), "Seller");
    }

    #[test]
    fn conversions() {
        let a: Role = "A".into();
        let b: Role = String::from("A").into();
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), "A");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![Role::new("C"), Role::new("A"), Role::new("B")];
        v.sort();
        let names: Vec<_> = v.iter().map(Role::name).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }
}
