//! Protocol participants (also called *roles*).

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A participant of a multiparty protocol.
///
/// Roles are compared by name. They are cheap to clone (the name is reference
/// counted), so protocol descriptions can mention the same role many times
/// without repeated allocation.
///
/// # Examples
///
/// ```
/// use zooid_mpst::Role;
///
/// let alice = Role::new("Alice");
/// assert_eq!(alice.name(), "Alice");
/// assert_eq!(alice, Role::new("Alice"));
/// assert_ne!(alice, Role::new("Bob"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Role(Arc<str>);

impl Role {
    /// Creates a role with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Role(Arc::from(name.as_ref()))
    }

    /// Returns the role's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Role {
    fn from(name: &str) -> Self {
        Role::new(name)
    }
}

impl From<String> for Role {
    fn from(name: String) -> Self {
        Role::new(name)
    }
}

impl AsRef<str> for Role {
    fn as_ref(&self) -> &str {
        self.name()
    }
}

/// A compact set of roles, represented as a bitset over the role *indices* of
/// some role table (a [`GlobalTree`]'s sorted participant list, or an
/// [`Interner`]'s role table).
///
/// The hot paths of the semantics and the checkers key visited-state sets on
/// `(node, blocked-roles)` pairs and test membership per branch; a bitset
/// makes those inserts and tests word operations instead of `BTreeSet<Role>`
/// clones and string comparisons. The words vector never keeps trailing zero
/// words, so structural equality and hashing are canonical.
///
/// [`GlobalTree`]: crate::global::GlobalTree
/// [`Interner`]: crate::common::intern::Interner
///
/// # Examples
///
/// ```
/// use zooid_mpst::RoleSet;
///
/// let mut blocked = RoleSet::new();
/// assert!(blocked.insert(3));
/// assert!(!blocked.insert(3));
/// assert!(blocked.contains(3) && !blocked.contains(65));
/// assert_eq!(blocked.len(), 1);
/// ```
// No serde derives: deserialization could construct a value violating the
// no-trailing-zero-words invariant the derived `Eq`/`Hash` depend on. Nothing
// serializes role sets today; add a normalising `Deserialize` if that changes.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoleSet {
    /// Bits 0–63. Kept inline so sets over up to 64 roles never allocate —
    /// the common case for every protocol family in the benchmarks.
    first: u64,
    /// Bits 64+, in 64-bit words; never keeps trailing zero words (so the
    /// derived `Eq`/`Hash` are canonical).
    rest: Vec<u64>,
}

impl RoleSet {
    /// The empty set.
    pub fn new() -> Self {
        RoleSet::default()
    }

    /// Inserts the role with the given index; returns `true` if it was not
    /// already present.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        if index < 64 {
            let bit = 1u64 << index;
            let fresh = self.first & bit == 0;
            self.first |= bit;
            return fresh;
        }
        let (word, bit) = ((index - 64) / 64, 1u64 << (index % 64));
        if self.rest.len() <= word {
            self.rest.resize(word + 1, 0);
        }
        let fresh = self.rest[word] & bit == 0;
        self.rest[word] |= bit;
        fresh
    }

    /// Removes the role with the given index; returns `true` if it was
    /// present.
    pub fn remove(&mut self, index: usize) -> bool {
        if index < 64 {
            let bit = 1u64 << index;
            let present = self.first & bit != 0;
            self.first &= !bit;
            return present;
        }
        let (word, bit) = ((index - 64) / 64, 1u64 << (index % 64));
        if self.rest.len() <= word || self.rest[word] & bit == 0 {
            return false;
        }
        self.rest[word] &= !bit;
        while self.rest.last() == Some(&0) {
            self.rest.pop();
        }
        true
    }

    /// Returns `true` if the role with the given index is in the set.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        if index < 64 {
            return self.first & (1u64 << index) != 0;
        }
        let (word, bit) = ((index - 64) / 64, 1u64 << (index % 64));
        self.rest.get(word).is_some_and(|w| w & bit != 0)
    }

    /// Number of roles in the set.
    pub fn len(&self) -> usize {
        self.first.count_ones() as usize
            + self.rest.iter().map(|w| w.count_ones() as usize).sum::<usize>()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.first == 0 && self.rest.is_empty()
    }

    /// Adds every role of `other` to `self`.
    pub fn union_with(&mut self, other: &RoleSet) {
        self.first |= other.first;
        if self.rest.len() < other.rest.len() {
            self.rest.resize(other.rest.len(), 0);
        }
        for (w, o) in self.rest.iter_mut().zip(&other.rest) {
            *w |= o;
        }
    }

    /// Returns `true` if every role of `self` is in `other`.
    #[inline]
    pub fn is_subset(&self, other: &RoleSet) -> bool {
        self.first & other.first == self.first
            && self
                .rest
                .iter()
                .enumerate()
                .all(|(i, w)| other.rest.get(i).copied().unwrap_or(0) & w == *w)
    }

    /// Iterates over the indices in the set, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let first = self.first;
        (0..64)
            .filter(move |b| first & (1 << b) != 0)
            .chain(self.rest.iter().enumerate().flat_map(|(wi, &w)| {
                (0..64).filter_map(move |b| (w & (1 << b) != 0).then_some(64 + wi * 64 + b))
            }))
    }
}

impl FromIterator<usize> for RoleSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = RoleSet::new();
        for i in iter {
            set.insert(i);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_by_name() {
        assert_eq!(Role::new("p"), Role::new("p"));
        assert_ne!(Role::new("p"), Role::new("q"));
    }

    #[test]
    fn display_shows_name() {
        assert_eq!(Role::new("Seller").to_string(), "Seller");
    }

    #[test]
    fn conversions() {
        let a: Role = "A".into();
        let b: Role = String::from("A").into();
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), "A");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![Role::new("C"), Role::new("A"), Role::new("B")];
        v.sort();
        let names: Vec<_> = v.iter().map(Role::name).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }

    #[test]
    fn role_set_insert_contains_remove() {
        let mut s = RoleSet::new();
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(63) && s.contains(64));
        assert!(!s.contains(1) && !s.contains(128));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn role_set_equality_is_canonical_across_word_boundaries() {
        // Inserting and removing a high index must not leave trailing zero
        // words behind that would break Eq/Hash.
        let mut a = RoleSet::new();
        a.insert(2);
        let mut b = RoleSet::new();
        b.insert(2);
        b.insert(200);
        b.remove(200);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |s: &RoleSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn role_set_union_subset_iter() {
        let a: RoleSet = [1usize, 5, 70].into_iter().collect();
        let b: RoleSet = [5usize].into_iter().collect();
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        let mut c = b.clone();
        c.union_with(&a);
        assert_eq!(c, a);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5, 70]);
    }

    #[test]
    fn role_set_scales_past_128_roles() {
        let mut s = RoleSet::new();
        for i in 0..300 {
            s.insert(i);
        }
        assert_eq!(s.len(), 300);
        assert!(s.contains(299));
    }
}
