//! Common building blocks shared by global types, local types, processes and
//! the operational semantics.
//!
//! This corresponds to the `Common/` folder of the Coq development
//! (`Common/AtomSets.v`, `Common/Actions.v`, `Common/Action.v`).

pub mod actions;
pub mod arena;
pub mod branch;
pub mod intern;
pub mod label;
pub mod role;
pub mod sort;
pub mod trace;
