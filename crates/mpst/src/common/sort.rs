//! Payload sorts (the paper's `mty`, Definition 3.1 / A.1).

use std::fmt;

use serde::{Deserialize, Serialize};

/// The sort (payload type) of a message.
///
/// Sorts describe the values exchanged in messages: base types (`nat`, `int`,
/// `bool`, `unit`, `string`) and their closure under sums, products and
/// sequences, exactly as in Definition A.1 of the paper (with `unit` and
/// `string` added because the paper's examples use `unit` payloads and the
/// runtime benefits from a string base type).
///
/// # Examples
///
/// ```
/// use zooid_mpst::Sort;
///
/// let pair = Sort::prod(Sort::Nat, Sort::Bool);
/// assert_eq!(pair.to_string(), "(nat * bool)");
/// assert!(pair.contains(&Sort::Nat));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Sort {
    /// The one-value type; used for pure signals such as `Quit(unit)`.
    Unit,
    /// Natural numbers.
    Nat,
    /// Signed integers.
    Int,
    /// Booleans.
    Bool,
    /// Character strings (a convenience base sort used by the runtime).
    Str,
    /// Disjoint union of two sorts.
    Sum(Box<Sort>, Box<Sort>),
    /// Pair of two sorts.
    Prod(Box<Sort>, Box<Sort>),
    /// Finite sequences of a sort.
    Seq(Box<Sort>),
}

impl Sort {
    /// Builds the sum sort `left + right`.
    pub fn sum(left: Sort, right: Sort) -> Self {
        Sort::Sum(Box::new(left), Box::new(right))
    }

    /// Builds the product sort `left * right`.
    pub fn prod(left: Sort, right: Sort) -> Self {
        Sort::Prod(Box::new(left), Box::new(right))
    }

    /// Builds the sequence sort `seq elem`.
    pub fn seq(elem: Sort) -> Self {
        Sort::Seq(Box::new(elem))
    }

    /// Returns `true` if `self` is a base (non-composite) sort.
    pub fn is_base(&self) -> bool {
        matches!(
            self,
            Sort::Unit | Sort::Nat | Sort::Int | Sort::Bool | Sort::Str
        )
    }

    /// Returns `true` if `other` occurs anywhere inside `self` (including
    /// `self` itself).
    pub fn contains(&self, other: &Sort) -> bool {
        if self == other {
            return true;
        }
        match self {
            Sort::Sum(a, b) | Sort::Prod(a, b) => a.contains(other) || b.contains(other),
            Sort::Seq(a) => a.contains(other),
            _ => false,
        }
    }

    /// Structural size of the sort (number of constructors). Used by the
    /// generators and the effort report.
    pub fn size(&self) -> usize {
        match self {
            Sort::Sum(a, b) | Sort::Prod(a, b) => 1 + a.size() + b.size(),
            Sort::Seq(a) => 1 + a.size(),
            _ => 1,
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Unit => f.write_str("unit"),
            Sort::Nat => f.write_str("nat"),
            Sort::Int => f.write_str("int"),
            Sort::Bool => f.write_str("bool"),
            Sort::Str => f.write_str("string"),
            Sort::Sum(a, b) => write!(f, "({a} + {b})"),
            Sort::Prod(a, b) => write!(f, "({a} * {b})"),
            Sort::Seq(a) => write!(f, "seq {a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_sorts_are_base() {
        for s in [Sort::Unit, Sort::Nat, Sort::Int, Sort::Bool, Sort::Str] {
            assert!(s.is_base(), "{s} should be base");
        }
        assert!(!Sort::sum(Sort::Nat, Sort::Bool).is_base());
        assert!(!Sort::seq(Sort::Nat).is_base());
    }

    #[test]
    fn display_round_trips_structure() {
        let s = Sort::prod(Sort::seq(Sort::Nat), Sort::sum(Sort::Bool, Sort::Unit));
        assert_eq!(s.to_string(), "(seq nat * (bool + unit))");
    }

    #[test]
    fn contains_finds_nested_sorts() {
        let s = Sort::prod(Sort::seq(Sort::Nat), Sort::Bool);
        assert!(s.contains(&Sort::Nat));
        assert!(s.contains(&Sort::seq(Sort::Nat)));
        assert!(!s.contains(&Sort::Int));
    }

    #[test]
    fn size_counts_constructors() {
        assert_eq!(Sort::Nat.size(), 1);
        assert_eq!(Sort::prod(Sort::Nat, Sort::seq(Sort::Bool)).size(), 4);
    }
}
