//! Execution traces (Definition 3.18 / `Common/Action.v`).

use std::fmt;
use std::ops::Deref;

use serde::{Deserialize, Serialize};

use crate::common::actions::Action;
use crate::common::role::Role;

/// A finite execution trace: a sequence of [`Action`]s.
///
/// The paper's traces (Definition 3.18) are *coinductive*, i.e. possibly
/// infinite streams. Every decision procedure in this crate works with finite
/// prefixes of those streams: a [`Trace`] is such a finite prefix. Infinite
/// behaviours (recursive protocols) are handled by bounding the prefix length
/// and, where needed, by lasso detection on the underlying finite-state
/// configuration graphs.
///
/// # Examples
///
/// ```
/// use zooid_mpst::{Action, Label, Role, Sort, Trace};
///
/// let a = Action::send(Role::new("p"), Role::new("q"), Label::new("l"), Sort::Nat);
/// let t = Trace::from(vec![a.clone(), a.dual()]);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.to_string(), "!pq(l, nat) # ?qp(l, nat) # []");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Trace(Vec<Action>);

impl Trace {
    /// The empty trace `[]`.
    pub fn empty() -> Self {
        Trace(Vec::new())
    }

    /// Creates a trace from a sequence of actions.
    pub fn new(actions: impl IntoIterator<Item = Action>) -> Self {
        Trace(actions.into_iter().collect())
    }

    /// Number of actions in the trace.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the trace contains no action.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The actions of the trace, in order.
    pub fn actions(&self) -> &[Action] {
        &self.0
    }

    /// Appends an action at the end of the trace.
    pub fn push(&mut self, action: Action) {
        self.0.push(action);
    }

    /// Returns the trace `a # self` (the paper's cons).
    pub fn cons(action: Action, rest: &Trace) -> Trace {
        let mut v = Vec::with_capacity(rest.len() + 1);
        v.push(action);
        v.extend_from_slice(&rest.0);
        Trace(v)
    }

    /// Returns a new trace extended with `action` (builder style).
    #[must_use]
    pub fn snoc(&self, action: Action) -> Trace {
        let mut v = self.0.clone();
        v.push(action);
        Trace(v)
    }

    /// Restriction of the trace to the actions whose subject is `role`
    /// (used by the complete-subtrace relation, Definition 4.6).
    pub fn restrict_to_subject(&self, role: &Role) -> Trace {
        Trace(
            self.0
                .iter()
                .filter(|a| a.subject() == role)
                .cloned()
                .collect(),
        )
    }

    /// Returns `true` if `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &Trace) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// Iterates over the actions of the trace.
    pub fn iter(&self) -> std::slice::Iter<'_, Action> {
        self.0.iter()
    }
}

impl Deref for Trace {
    type Target = [Action];

    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl From<Vec<Action>> for Trace {
    fn from(actions: Vec<Action>) -> Self {
        Trace(actions)
    }
}

impl FromIterator<Action> for Trace {
    fn from_iter<I: IntoIterator<Item = Action>>(iter: I) -> Self {
        Trace(iter.into_iter().collect())
    }
}

impl Extend<Action> for Trace {
    fn extend<I: IntoIterator<Item = Action>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl IntoIterator for Trace {
    type Item = Action;
    type IntoIter = std::vec::IntoIter<Action>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Action;
    type IntoIter = std::slice::Iter<'a, Action>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.0 {
            write!(f, "{a} # ")?;
        }
        f.write_str("[]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::label::Label;
    use crate::common::sort::Sort;

    fn act(i: usize) -> Action {
        Action::send(
            Role::new("p"),
            Role::new("q"),
            Label::new(format!("l{i}")),
            Sort::Nat,
        )
    }

    #[test]
    fn empty_trace_is_empty() {
        assert!(Trace::empty().is_empty());
        assert_eq!(Trace::empty().len(), 0);
        assert_eq!(Trace::empty().to_string(), "[]");
    }

    #[test]
    fn cons_prepends() {
        let t = Trace::from(vec![act(1)]);
        let t2 = Trace::cons(act(0), &t);
        assert_eq!(t2.actions()[0], act(0));
        assert_eq!(t2.actions()[1], act(1));
    }

    #[test]
    fn snoc_appends() {
        let t = Trace::from(vec![act(0)]).snoc(act(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.actions()[1], act(1));
    }

    #[test]
    fn restriction_keeps_only_subject_actions() {
        let p_sends = act(0);
        let q_recvs = p_sends.dual();
        let t = Trace::from(vec![p_sends.clone(), q_recvs.clone()]);
        assert_eq!(
            t.restrict_to_subject(&Role::new("p")),
            Trace::from(vec![p_sends])
        );
        assert_eq!(
            t.restrict_to_subject(&Role::new("q")),
            Trace::from(vec![q_recvs])
        );
        assert!(t.restrict_to_subject(&Role::new("r")).is_empty());
    }

    #[test]
    fn prefix_check() {
        let t = Trace::from(vec![act(0), act(1), act(2)]);
        assert!(Trace::from(vec![act(0)]).is_prefix_of(&t));
        assert!(Trace::empty().is_prefix_of(&t));
        assert!(!Trace::from(vec![act(1)]).is_prefix_of(&t));
        assert!(!t.is_prefix_of(&Trace::from(vec![act(0)])));
    }

    #[test]
    fn collects_from_iterator() {
        let t: Trace = (0..3).map(act).collect();
        assert_eq!(t.len(), 3);
        let back: Vec<Action> = t.clone().into_iter().collect();
        assert_eq!(back.len(), 3);
        assert_eq!(t.iter().count(), 3);
    }
}
