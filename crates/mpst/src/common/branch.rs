//! Labelled branches of a choice, shared by global types, local types,
//! semantic trees and processes.

use serde::{Deserialize, Serialize};

use crate::common::label::Label;
use crate::common::sort::Sort;
use crate::error::{Error, Result};

/// One alternative of a choice: a label, the sort of its payload and a
/// continuation.
///
/// Global messages, local send/receive types, tree nodes and processes all
/// carry a non-empty list of `Branch`es with pairwise distinct labels
/// (Definition 3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Branch<T> {
    /// The label selecting this alternative.
    pub label: Label,
    /// The sort of the payload carried by a message with this label.
    pub sort: Sort,
    /// What the protocol (or process) continues as after this alternative.
    pub cont: T,
}

impl<T> Branch<T> {
    /// Creates a branch.
    pub fn new(label: impl Into<Label>, sort: Sort, cont: T) -> Self {
        Branch {
            label: label.into(),
            sort,
            cont,
        }
    }

    /// Maps the continuation, keeping label and sort.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Branch<U> {
        Branch {
            label: self.label,
            sort: self.sort,
            cont: f(self.cont),
        }
    }

    /// Maps the continuation by reference, keeping label and sort.
    pub fn map_ref<U>(&self, f: impl FnOnce(&T) -> U) -> Branch<U> {
        Branch {
            label: self.label.clone(),
            sort: self.sort.clone(),
            cont: f(&self.cont),
        }
    }
}

impl<T> From<(Label, Sort, T)> for Branch<T> {
    fn from((label, sort, cont): (Label, Sort, T)) -> Self {
        Branch { label, sort, cont }
    }
}

/// Converts a list of `(label, sort, continuation)` triples into branches.
pub fn branches_from<T>(items: impl IntoIterator<Item = (Label, Sort, T)>) -> Vec<Branch<T>> {
    items.into_iter().map(Branch::from).collect()
}

/// Checks the side conditions the paper imposes on every choice:
/// the branch list is non-empty and all labels are pairwise distinct.
///
/// # Errors
///
/// Returns [`Error::EmptyChoice`] or [`Error::DuplicateLabel`].
pub fn check_branches<T>(branches: &[Branch<T>]) -> Result<()> {
    if branches.is_empty() {
        return Err(Error::EmptyChoice);
    }
    for (i, b) in branches.iter().enumerate() {
        if branches[..i].iter().any(|b2| b2.label == b.label) {
            return Err(Error::DuplicateLabel {
                label: b.label.clone(),
            });
        }
    }
    Ok(())
}

/// Looks up the branch with the given label (the paper's `find_cont`).
pub fn find_branch<'a, T>(branches: &'a [Branch<T>], label: &Label) -> Option<&'a Branch<T>> {
    branches.iter().find(|b| &b.label == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_rejects_empty_choice() {
        let empty: Vec<Branch<u32>> = Vec::new();
        assert_eq!(check_branches(&empty), Err(Error::EmptyChoice));
    }

    #[test]
    fn check_rejects_duplicate_labels() {
        let bs = vec![
            Branch::new("l", Sort::Nat, 0u32),
            Branch::new("l", Sort::Bool, 1u32),
        ];
        assert!(matches!(
            check_branches(&bs),
            Err(Error::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn check_accepts_distinct_labels() {
        let bs = vec![
            Branch::new("l1", Sort::Nat, 0u32),
            Branch::new("l2", Sort::Nat, 1u32),
        ];
        assert!(check_branches(&bs).is_ok());
    }

    #[test]
    fn find_branch_by_label() {
        let bs = vec![
            Branch::new("a", Sort::Nat, 1u32),
            Branch::new("b", Sort::Bool, 2u32),
        ];
        assert_eq!(find_branch(&bs, &Label::new("b")).map(|b| b.cont), Some(2));
        assert_eq!(find_branch(&bs, &Label::new("z")).map(|b| b.cont), None);
    }

    #[test]
    fn map_preserves_label_and_sort() {
        let b = Branch::new("a", Sort::Nat, 1u32).map(|x| x + 1);
        assert_eq!(b.cont, 2);
        assert_eq!(b.label, Label::new("a"));
        assert_eq!(b.sort, Sort::Nat);
        let b2 = b.map_ref(|x| x * 2);
        assert_eq!(b2.cont, 4);
    }
}
