//! Communication actions (the paper's `act`, §3.4 / `Common/Actions.v`).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::common::label::Label;
use crate::common::role::Role;
use crate::common::sort::Sort;

/// Whether an action is the sending or the receiving half of a message
/// exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ActionKind {
    /// `!pq(l, S)`: the sender enqueues the message.
    Send,
    /// `?qp(l, S)`: the receiver dequeues the message.
    Recv,
}

impl fmt::Display for ActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionKind::Send => f.write_str("!"),
            ActionKind::Recv => f.write_str("?"),
        }
    }
}

/// A basic action of the asynchronous semantics (§3.4).
///
/// An action records the two endpoints of a message exchange, its label and
/// its payload sort, plus whether it is the *send* half (`!pq(l,S)`, performed
/// by the sender `p`) or the *receive* half (`?qp(l,S)`, performed by the
/// receiver `q`).
///
/// The *subject* of an action (Definition in `Common/Actions.v`) is the
/// participant performing it: the sender for a send action, the receiver for
/// a receive action.
///
/// # Examples
///
/// ```
/// use zooid_mpst::{Action, Label, Role, Sort};
///
/// let a = Action::send(Role::new("p"), Role::new("q"), Label::new("l"), Sort::Nat);
/// assert_eq!(a.subject(), &Role::new("p"));
/// assert_eq!(a.to_string(), "!pq(l, nat)");
///
/// let b = Action::recv(Role::new("q"), Role::new("p"), Label::new("l"), Sort::Nat);
/// assert_eq!(b.subject(), &Role::new("q"));
/// assert_eq!(b.to_string(), "?qp(l, nat)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Action {
    kind: ActionKind,
    from: Role,
    to: Role,
    label: Label,
    sort: Sort,
}

impl Action {
    /// The send action `!pq(l, S)`: `from` sends label `label` with payload
    /// sort `sort` to `to`.
    pub fn send(from: Role, to: Role, label: Label, sort: Sort) -> Self {
        Action {
            kind: ActionKind::Send,
            from,
            to,
            label,
            sort,
        }
    }

    /// The receive action `?qp(l, S)`: `at` receives from `from` the label
    /// `label` with payload sort `sort`.
    pub fn recv(at: Role, from: Role, label: Label, sort: Sort) -> Self {
        Action {
            kind: ActionKind::Recv,
            from,
            to: at,
            label,
            sort,
        }
    }

    /// The kind of the action (send or receive).
    pub fn kind(&self) -> ActionKind {
        self.kind
    }

    /// The sending participant of the underlying message.
    pub fn from(&self) -> &Role {
        &self.from
    }

    /// The receiving participant of the underlying message.
    pub fn to(&self) -> &Role {
        &self.to
    }

    /// The message label.
    pub fn label(&self) -> &Label {
        &self.label
    }

    /// The payload sort.
    pub fn sort(&self) -> &Sort {
        &self.sort
    }

    /// The *subject* of the action: the participant that performs it.
    ///
    /// For a send action this is the sender, for a receive action the
    /// receiver (the paper swaps the argument order in receive actions so
    /// that the subject always comes first; we expose it as a method
    /// instead).
    pub fn subject(&self) -> &Role {
        match self.kind {
            ActionKind::Send => &self.from,
            ActionKind::Recv => &self.to,
        }
    }

    /// Returns `true` if the action is a send.
    pub fn is_send(&self) -> bool {
        self.kind == ActionKind::Send
    }

    /// Returns `true` if the action is a receive.
    pub fn is_recv(&self) -> bool {
        self.kind == ActionKind::Recv
    }

    /// The matching dual action: the receive corresponding to a send and
    /// vice versa.
    ///
    /// # Examples
    ///
    /// ```
    /// use zooid_mpst::{Action, Label, Role, Sort};
    /// let snd = Action::send(Role::new("p"), Role::new("q"), Label::new("l"), Sort::Nat);
    /// let rcv = Action::recv(Role::new("q"), Role::new("p"), Label::new("l"), Sort::Nat);
    /// assert_eq!(snd.dual(), rcv);
    /// assert_eq!(rcv.dual(), snd);
    /// ```
    pub fn dual(&self) -> Action {
        Action {
            kind: match self.kind {
                ActionKind::Send => ActionKind::Recv,
                ActionKind::Recv => ActionKind::Send,
            },
            from: self.from.clone(),
            to: self.to.clone(),
            label: self.label.clone(),
            sort: self.sort.clone(),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ActionKind::Send => write!(f, "!{}{}({}, {})", self.from, self.to, self.label, self.sort),
            ActionKind::Recv => write!(f, "?{}{}({}, {})", self.to, self.from, self.label, self.sort),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Role {
        Role::new("p")
    }
    fn q() -> Role {
        Role::new("q")
    }
    fn l() -> Label {
        Label::new("l")
    }

    #[test]
    fn subject_of_send_is_sender() {
        let a = Action::send(p(), q(), l(), Sort::Nat);
        assert_eq!(a.subject(), &p());
        assert!(a.is_send());
        assert!(!a.is_recv());
    }

    #[test]
    fn subject_of_recv_is_receiver() {
        let a = Action::recv(q(), p(), l(), Sort::Nat);
        assert_eq!(a.subject(), &q());
        assert!(a.is_recv());
    }

    #[test]
    fn dual_is_involutive() {
        let a = Action::send(p(), q(), l(), Sort::Bool);
        assert_eq!(a.dual().dual(), a);
        assert_ne!(a.dual(), a);
    }

    #[test]
    fn accessors_expose_components() {
        let a = Action::recv(q(), p(), l(), Sort::Int);
        assert_eq!(a.from(), &p());
        assert_eq!(a.to(), &q());
        assert_eq!(a.label(), &l());
        assert_eq!(a.sort(), &Sort::Int);
        assert_eq!(a.kind(), ActionKind::Recv);
    }

    #[test]
    fn display_follows_paper_notation() {
        let snd = Action::send(p(), q(), l(), Sort::Nat);
        let rcv = snd.dual();
        assert_eq!(snd.to_string(), "!pq(l, nat)");
        assert_eq!(rcv.to_string(), "?qp(l, nat)");
    }
}
