//! Hash-consed interning of global and local session types.
//!
//! The hot paths of the pipeline — unravelling (`unravel`), projection
//! (`projection`) and the trace-equivalence checkers (`trace_equiv`) — all
//! operate on recursive type terms. Represented naively (`Box`-based
//! [`GlobalType`] / [`LocalType`]), every unfolding step deep-clones a term
//! and every memo-table lookup deep-hashes one, which makes those paths
//! quadratic in protocol size before the actual algorithm even starts.
//!
//! An [`Interner`] is an arena that assigns each *structurally distinct* type
//! node a dense `u32` id ([`TypeId`] for global terms, [`LTypeId`] for local
//! terms) and stores its children as ids. Interning gives us, for free:
//!
//! * **O(1) structural equality** — two interned terms are structurally equal
//!   iff their ids are equal (checked by the property tests);
//! * **cheap memoisation** — unfolding, substitution and projection memo
//!   tables are keyed on ids instead of deep terms;
//! * **maximal sharing** — substitution and unfolding reuse every subterm
//!   they do not touch, so a chain of unfoldings costs the size of the
//!   *changed* spine only;
//! * **per-node metadata** — each interned node carries its free-variable
//!   mask, participant set and whether it contains a recursion binder,
//!   computed once bottom-up at intern time and reused by every later pass.
//!
//! The interner also owns a role table mapping [`Role`]s to dense indices
//! ([`RoleId`]), which is what [`RoleSet`] bitsets are indexed by.
//!
//! [`GlobalType`]: crate::global::GlobalType
//! [`LocalType`]: crate::local::LocalType

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::common::branch::Branch;
use crate::common::label::Label;
use crate::common::role::{Role, RoleSet};
use crate::common::sort::Sort;
use crate::error::{Error, Result};
use crate::global::syntax::GlobalType;
use crate::local::syntax::LocalType;

/// A fast, non-cryptographic hasher (the rustc-hash / FxHash algorithm).
///
/// The interner's maps are keyed on small ids and short strings and sit on
/// the hot paths of unravelling and projection; SipHash's DoS resistance
/// buys nothing there and costs a measurable constant factor.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Index of a role in an [`Interner`]'s role table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoleId(pub(crate) u32);

impl RoleId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a label in an [`Interner`]'s label table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(pub(crate) u32);

impl LabelId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a sort in an [`Interner`]'s sort table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SortId(pub(crate) u32);

impl SortId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of an interned `(label, sort)` message payload in an [`Interner`]'s
/// message table. Two messages carry the same id iff their label and payload
/// sort are both equal, so channel contents and CFSM actions can be compared
/// and hashed as single `u32`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub(crate) u32);

impl MsgId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a message id from a raw index, as produced by
    /// [`MsgId::index`]. The result is only meaningful against the interner
    /// (or snapshot) the index came from; callers restoring persisted state
    /// must bounds-check it against that table before trusting it.
    pub fn from_index(index: usize) -> Option<MsgId> {
        u32::try_from(index).ok().map(MsgId)
    }
}

/// One alternative of an interned choice: everything is a dense id, so
/// hashing and comparing terms never touches a string or a recursive sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IBranch<T> {
    /// The interned label selecting this alternative.
    pub label: LabelId,
    /// The interned payload sort.
    pub sort: SortId,
    /// The interned continuation.
    pub cont: T,
}

/// Id of an interned global-type node. Equal ids ⟺ structurally equal terms
/// (within one interner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(u32);

impl TypeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Id of an interned local-type node. Equal ids ⟺ structurally equal terms
/// (within one interner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LTypeId(u32);

impl LTypeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned global-type node; children are [`TypeId`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GTerm {
    /// `end`.
    End,
    /// A recursion variable (de Bruijn index).
    Var(u32),
    /// `mu X. body`.
    Rec(TypeId),
    /// `from -> to : { l_i(S_i). G_i }`.
    Msg {
        /// The sending participant.
        from: RoleId,
        /// The receiving participant.
        to: RoleId,
        /// The alternatives; shared so re-interning reuses the allocation.
        branches: Arc<[IBranch<TypeId>]>,
    },
}

/// An interned local-type node; children are [`LTypeId`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LTerm {
    /// `end`.
    End,
    /// A recursion variable (de Bruijn index).
    Var(u32),
    /// `mu X. body`.
    Rec(LTypeId),
    /// Internal choice `![to] ; { l_i(S_i). L_i }`.
    Send {
        /// The partner the message is sent to.
        to: RoleId,
        /// The alternatives.
        branches: Arc<[IBranch<LTypeId>]>,
    },
    /// External choice `?[from] ; { l_i(S_i). L_i }`.
    Recv {
        /// The partner the message is expected from.
        from: RoleId,
        /// The alternatives.
        branches: Arc<[IBranch<LTypeId>]>,
    },
}

/// What the leaves of a binder-free subterm look like; used by projection to
/// prune subtrees a role does not occur in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafKind {
    /// Every leaf is `end`.
    AllEnd,
    /// Every leaf is the recursion variable with this de Bruijn index.
    AllVar(u32),
    /// Leaves differ (or the subterm contains a binder).
    Mixed,
}

/// Per-node metadata, computed bottom-up when the node is interned.
#[derive(Debug, Clone)]
struct GMeta {
    /// Bit `i` set ⟺ de Bruijn index `i` occurs free. Binder nesting beyond
    /// 128 is rejected at intern time (far beyond any practical protocol).
    free_mask: u128,
    /// The participants occurring anywhere in the subterm.
    parts: RoleSet,
    /// Whether the subterm contains a `mu` binder anywhere.
    has_rec: bool,
    /// The shape of the subterm's leaves (meaningful when `has_rec` is
    /// `false`).
    leaf: LeafKind,
}

#[derive(Debug, Clone)]
struct LMeta {
    free_mask: u128,
}

/// A read-only, `Send + Sync` snapshot of an [`Interner`]'s scalar lookup
/// tables (roles, labels, sorts and `(label, sort)` messages).
///
/// The parallel CFSM explorer shares one compiled system across N worker
/// threads; the workers decode configurations and resolve observed actions
/// through this snapshot instead of the live interner, so they never touch
/// (or contend on) the hash-consing maps. The tables are behind `Arc`s:
/// taking a snapshot is a handful of allocations at compile time, and
/// cloning one afterwards is reference counting only.
///
/// A snapshot deliberately does **not** expose the type-term arenas or any
/// interning method — it can resolve and look up what was already interned,
/// nothing more.
#[derive(Debug, Clone)]
pub struct InternerSnapshot {
    roles: Arc<[Role]>,
    role_ids: Arc<FxHashMap<Role, RoleId>>,
    labels: Arc<[Label]>,
    label_ids: Arc<FxHashMap<Label, LabelId>>,
    sorts: Arc<[Sort]>,
    sort_ids: Arc<FxHashMap<Sort, SortId>>,
    msgs: Arc<[(LabelId, SortId)]>,
    msg_ids: Arc<FxHashMap<(LabelId, SortId), MsgId>>,
}

impl InternerSnapshot {
    /// The role with the given index.
    #[inline]
    pub fn role(&self, id: RoleId) -> &Role {
        &self.roles[id.index()]
    }

    /// The index of a role interned before the snapshot was taken.
    pub fn lookup_role(&self, role: &Role) -> Option<RoleId> {
        self.role_ids.get(role).copied()
    }

    /// The role table, in interning order.
    pub fn roles(&self) -> &[Role] {
        &self.roles
    }

    /// The label with the given index.
    #[inline]
    pub fn label(&self, id: LabelId) -> &Label {
        &self.labels[id.index()]
    }

    /// The index of a label interned before the snapshot was taken.
    pub fn lookup_label(&self, label: &Label) -> Option<LabelId> {
        self.label_ids.get(label).copied()
    }

    /// The sort with the given index.
    #[inline]
    pub fn sort(&self, id: SortId) -> &Sort {
        &self.sorts[id.index()]
    }

    /// The index of a sort interned before the snapshot was taken.
    pub fn lookup_sort(&self, sort: &Sort) -> Option<SortId> {
        self.sort_ids.get(sort).copied()
    }

    /// The `(label, sort)` pair behind a message id.
    #[inline]
    pub fn msg(&self, id: MsgId) -> (LabelId, SortId) {
        self.msgs[id.index()]
    }

    /// The id of a `(label, sort)` message interned before the snapshot was
    /// taken.
    pub fn lookup_msg(&self, label: LabelId, sort: SortId) -> Option<MsgId> {
        self.msg_ids.get(&(label, sort)).copied()
    }

    /// Number of distinct `(label, sort)` messages in the snapshot.
    pub fn msg_len(&self) -> usize {
        self.msgs.len()
    }
}

/// A hash-consing arena for global and local session types.
///
/// # Examples
///
/// ```
/// use zooid_mpst::common::intern::Interner;
/// use zooid_mpst::global::GlobalType;
/// use zooid_mpst::{Role, Sort};
///
/// let mut interner = Interner::new();
/// let g = GlobalType::msg1(Role::new("p"), Role::new("q"), "l", Sort::Nat, GlobalType::End);
/// let a = interner.intern_global(&g);
/// let b = interner.intern_global(&g.clone());
/// assert_eq!(a, b); // structural equality is id equality
/// ```
#[derive(Debug, Default)]
pub struct Interner {
    roles: Vec<Role>,
    role_ids: FxHashMap<Role, RoleId>,
    labels: Vec<Label>,
    label_ids: FxHashMap<Label, LabelId>,
    sorts: Vec<Sort>,
    sort_ids: FxHashMap<Sort, SortId>,
    msgs: Vec<(LabelId, SortId)>,
    msg_ids: FxHashMap<(LabelId, SortId), MsgId>,

    gterms: Vec<GTerm>,
    gmeta: Vec<GMeta>,
    gdedup: FxHashMap<GTerm, TypeId>,

    lterms: Vec<LTerm>,
    lmeta: Vec<LMeta>,
    ldedup: FxHashMap<LTerm, LTypeId>,

    /// Memoised head-normal forms (`unfold_head`).
    hnf_memo: FxHashMap<TypeId, TypeId>,
    /// Memoised substitutions `t[depth := repl]`.
    subst_memo: FxHashMap<(TypeId, u32, TypeId), TypeId>,
    /// Local-side counterparts of the two memo tables above.
    lhnf_memo: FxHashMap<LTypeId, LTypeId>,
    lsubst_memo: FxHashMap<(LTypeId, u32, LTypeId), LTypeId>,

    /// One-entry caches for the table lookups: protocol terms mention the
    /// same role/label/sort in long runs, and a pointer-equality hit skips
    /// the map probe (and its string hash) entirely.
    role_cache: [Option<(Role, RoleId)>; 2],
    label_cache: Option<(Label, LabelId)>,
    sort_cache: Option<(Sort, SortId)>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    // ------------------------------------------------------------------
    // Roles, labels, sorts
    // ------------------------------------------------------------------

    /// Interns a role, returning its dense index.
    pub fn role_id(&mut self, role: &Role) -> RoleId {
        for slot in &self.role_cache {
            if let Some((cached, id)) = slot {
                if cached == role {
                    return *id;
                }
            }
        }
        let id = if let Some(&id) = self.role_ids.get(role) {
            id
        } else {
            let id = RoleId(u32::try_from(self.roles.len()).expect("role table overflow"));
            self.roles.push(role.clone());
            self.role_ids.insert(role.clone(), id);
            id
        };
        self.role_cache.swap(0, 1);
        self.role_cache[0] = Some((role.clone(), id));
        id
    }

    /// The role with the given index.
    #[inline]
    pub fn role(&self, id: RoleId) -> &Role {
        &self.roles[id.index()]
    }

    /// The index of an already-interned role.
    pub fn lookup_role(&self, role: &Role) -> Option<RoleId> {
        self.role_ids.get(role).copied()
    }

    /// The role table, in interning order.
    pub fn roles(&self) -> &[Role] {
        &self.roles
    }

    /// Interns a label, returning its dense index.
    pub fn label_id(&mut self, label: &Label) -> LabelId {
        if let Some((cached, id)) = &self.label_cache {
            if cached == label {
                return *id;
            }
        }
        let id = if let Some(&id) = self.label_ids.get(label) {
            id
        } else {
            let id = LabelId(u32::try_from(self.labels.len()).expect("label table overflow"));
            self.labels.push(label.clone());
            self.label_ids.insert(label.clone(), id);
            id
        };
        self.label_cache = Some((label.clone(), id));
        id
    }

    /// The label with the given index.
    #[inline]
    pub fn label(&self, id: LabelId) -> &Label {
        &self.labels[id.index()]
    }

    /// Interns a sort, returning its dense index.
    pub fn sort_id(&mut self, sort: &Sort) -> SortId {
        if let Some((cached, id)) = &self.sort_cache {
            if cached == sort {
                return *id;
            }
        }
        let id = if let Some(&id) = self.sort_ids.get(sort) {
            id
        } else {
            let id = SortId(u32::try_from(self.sorts.len()).expect("sort table overflow"));
            self.sorts.push(sort.clone());
            self.sort_ids.insert(sort.clone(), id);
            id
        };
        self.sort_cache = Some((sort.clone(), id));
        id
    }

    /// The sort with the given index.
    #[inline]
    pub fn sort(&self, id: SortId) -> &Sort {
        &self.sorts[id.index()]
    }

    /// Interns a `(label, sort)` message payload, returning its dense index.
    ///
    /// Message ids are what the CFSM engine stores in channel buffers and
    /// transition tables: comparing a queued message against an expected one
    /// is a single `u32` comparison instead of two string/sort comparisons.
    pub fn msg_id(&mut self, label: LabelId, sort: SortId) -> MsgId {
        if let Some(&id) = self.msg_ids.get(&(label, sort)) {
            return id;
        }
        let id = MsgId(u32::try_from(self.msgs.len()).expect("message table overflow"));
        self.msgs.push((label, sort));
        self.msg_ids.insert((label, sort), id);
        id
    }

    /// The `(label, sort)` pair behind a message id.
    #[inline]
    pub fn msg(&self, id: MsgId) -> (LabelId, SortId) {
        self.msgs[id.index()]
    }

    /// The index of an already-interned label, without interning.
    ///
    /// Read-only lookups let shared artifacts (e.g. a compiled CFSM system
    /// behind an `Arc`) resolve observed labels to ids on the hot path
    /// without requiring `&mut self`.
    pub fn lookup_label(&self, label: &Label) -> Option<LabelId> {
        self.label_ids.get(label).copied()
    }

    /// The index of an already-interned sort, without interning.
    pub fn lookup_sort(&self, sort: &Sort) -> Option<SortId> {
        self.sort_ids.get(sort).copied()
    }

    /// The id of an already-interned `(label, sort)` message, without
    /// interning.
    pub fn lookup_msg(&self, label: LabelId, sort: SortId) -> Option<MsgId> {
        self.msg_ids.get(&(label, sort)).copied()
    }

    /// Number of distinct `(label, sort)` messages interned so far.
    pub fn msg_len(&self) -> usize {
        self.msgs.len()
    }

    /// Takes a read-only, `Send + Sync` [`InternerSnapshot`] of the scalar
    /// lookup tables (roles, labels, sorts, messages) as they stand now.
    ///
    /// Entries interned after the snapshot are invisible to it; the CFSM
    /// engine takes the snapshot once compilation has interned everything
    /// the transition tables can ever mention.
    pub fn snapshot(&self) -> InternerSnapshot {
        InternerSnapshot {
            roles: self.roles.clone().into(),
            role_ids: Arc::new(self.role_ids.clone()),
            labels: self.labels.clone().into(),
            label_ids: Arc::new(self.label_ids.clone()),
            sorts: self.sorts.clone().into(),
            sort_ids: Arc::new(self.sort_ids.clone()),
            msgs: self.msgs.clone().into(),
            msg_ids: Arc::new(self.msg_ids.clone()),
        }
    }

    // ------------------------------------------------------------------
    // Global terms
    // ------------------------------------------------------------------

    /// Number of distinct global-type nodes interned so far.
    pub fn global_len(&self) -> usize {
        self.gterms.len()
    }

    /// Interns (hash-conses) a global node built from already-interned
    /// children.
    pub fn mk_global(&mut self, term: GTerm) -> TypeId {
        if let Some(&id) = self.gdedup.get(&term) {
            return id;
        }
        let meta = self.compute_gmeta(&term);
        let id = TypeId(u32::try_from(self.gterms.len()).expect("interner overflow"));
        self.gterms.push(term.clone());
        self.gmeta.push(meta);
        self.gdedup.insert(term, id);
        id
    }

    fn compute_gmeta(&mut self, term: &GTerm) -> GMeta {
        match term {
            GTerm::End => GMeta {
                free_mask: 0,
                parts: RoleSet::new(),
                has_rec: false,
                leaf: LeafKind::AllEnd,
            },
            GTerm::Var(i) => {
                assert!(*i < 128, "recursion nesting beyond 128 binders is unsupported");
                GMeta {
                    free_mask: 1u128 << i,
                    parts: RoleSet::new(),
                    has_rec: false,
                    leaf: LeafKind::AllVar(*i),
                }
            }
            GTerm::Rec(body) => {
                let m = &self.gmeta[body.index()];
                GMeta {
                    free_mask: m.free_mask >> 1,
                    parts: m.parts.clone(),
                    has_rec: true,
                    leaf: LeafKind::Mixed,
                }
            }
            GTerm::Msg { from, to, branches } => {
                let mut free_mask = 0u128;
                let mut parts = RoleSet::new();
                parts.insert(from.index());
                parts.insert(to.index());
                let mut has_rec = false;
                let mut leaf: Option<LeafKind> = None;
                for b in branches.iter() {
                    let m = &self.gmeta[b.cont.index()];
                    free_mask |= m.free_mask;
                    parts.union_with(&m.parts);
                    has_rec |= m.has_rec;
                    leaf = match leaf {
                        None => Some(m.leaf),
                        Some(l) if l == m.leaf => Some(l),
                        Some(_) => Some(LeafKind::Mixed),
                    };
                }
                GMeta {
                    free_mask,
                    parts,
                    has_rec,
                    leaf: if has_rec {
                        LeafKind::Mixed
                    } else {
                        leaf.unwrap_or(LeafKind::AllEnd)
                    },
                }
            }
        }
    }

    /// Interns a [`GlobalType`] bottom-up.
    pub fn intern_global(&mut self, g: &GlobalType) -> TypeId {
        match g {
            GlobalType::End => self.mk_global(GTerm::End),
            GlobalType::Var(i) => self.mk_global(GTerm::Var(*i)),
            GlobalType::Rec(body) => {
                let body = self.intern_global(body);
                self.mk_global(GTerm::Rec(body))
            }
            GlobalType::Msg { from, to, branches } => {
                let from = self.role_id(from);
                let to = self.role_id(to);
                let bs: Vec<IBranch<TypeId>> = branches
                    .iter()
                    .map(|b| IBranch {
                        label: self.label_id(&b.label),
                        sort: self.sort_id(&b.sort),
                        cont: self.intern_global(&b.cont),
                    })
                    .collect();
                self.mk_global(GTerm::Msg {
                    from,
                    to,
                    branches: bs.into(),
                })
            }
        }
    }

    /// The node behind an id.
    #[inline]
    pub fn global(&self, id: TypeId) -> &GTerm {
        &self.gterms[id.index()]
    }

    /// The free-variable mask of a global term (bit `i` ⟺ index `i` free).
    #[inline]
    pub fn global_free_mask(&self, id: TypeId) -> u128 {
        self.gmeta[id.index()].free_mask
    }

    /// The participants occurring in the subterm, as a [`RoleSet`] over this
    /// interner's role table.
    #[inline]
    pub fn global_parts(&self, id: TypeId) -> &RoleSet {
        &self.gmeta[id.index()].parts
    }

    /// Whether the subterm contains a recursion binder.
    #[inline]
    pub fn global_has_rec(&self, id: TypeId) -> bool {
        self.gmeta[id.index()].has_rec
    }

    /// The shape of the subterm's leaves (meaningful when
    /// [`Interner::global_has_rec`] is `false`).
    #[inline]
    pub fn global_leaf_kind(&self, id: TypeId) -> LeafKind {
        self.gmeta[id.index()].leaf
    }

    /// Checks the `g_precond` of the Coq development on an interned term,
    /// mirroring [`GlobalType::well_formed`]: guarded, closed, and every
    /// choice non-empty with pairwise distinct labels and distinct
    /// sender/receiver.
    ///
    /// Each *distinct* subterm is checked once — on hash-consed input this is
    /// linear in the number of distinct nodes, not in the syntax size.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition, with the same error values (and
    /// checking order) as [`GlobalType::well_formed`].
    pub fn well_formed_global(&self, t: TypeId) -> Result<()> {
        if !self.guarded_global(t) {
            return Err(Error::Unguarded {
                context: self.resolve_global(t).to_string(),
            });
        }
        let mask = self.global_free_mask(t);
        if mask != 0 {
            return Err(Error::UnboundVariable {
                index: mask.trailing_zeros(),
            });
        }
        let mut visited = vec![false; self.gterms.len()];
        self.check_choices_global(t, &mut visited)
    }

    fn guarded_global(&self, t: TypeId) -> bool {
        match self.global(t) {
            GTerm::End | GTerm::Var(_) => true,
            GTerm::Rec(body) => !self.pure_rec_global(*body) && self.guarded_global(*body),
            GTerm::Msg { branches, .. } => {
                branches.iter().all(|b| self.guarded_global(b.cont))
            }
        }
    }

    fn pure_rec_global(&self, t: TypeId) -> bool {
        match self.global(t) {
            GTerm::Var(_) => true,
            GTerm::Rec(body) => self.pure_rec_global(*body),
            _ => false,
        }
    }

    fn check_choices_global(&self, t: TypeId, visited: &mut [bool]) -> Result<()> {
        if visited[t.index()] {
            return Ok(());
        }
        visited[t.index()] = true;
        match self.global(t) {
            GTerm::End | GTerm::Var(_) => Ok(()),
            GTerm::Rec(body) => self.check_choices_global(*body, visited),
            GTerm::Msg { from, to, branches } => {
                if from == to {
                    return Err(Error::SelfCommunication {
                        role: self.role(*from).clone(),
                    });
                }
                if branches.is_empty() {
                    return Err(Error::EmptyChoice);
                }
                for (i, b) in branches.iter().enumerate() {
                    if branches[..i].iter().any(|b2| b2.label == b.label) {
                        return Err(Error::DuplicateLabel {
                            label: self.label(b.label).clone(),
                        });
                    }
                }
                for b in branches.iter() {
                    self.check_choices_global(b.cont, visited)?;
                }
                Ok(())
            }
        }
    }

    /// Reconstructs the (boxed) [`GlobalType`] behind an id.
    pub fn resolve_global(&self, id: TypeId) -> GlobalType {
        match self.global(id) {
            GTerm::End => GlobalType::End,
            GTerm::Var(i) => GlobalType::Var(*i),
            GTerm::Rec(body) => GlobalType::Rec(Box::new(self.resolve_global(*body))),
            GTerm::Msg { from, to, branches } => GlobalType::Msg {
                from: self.role(*from).clone(),
                to: self.role(*to).clone(),
                branches: branches
                    .iter()
                    .map(|b| Branch {
                        label: self.label(b.label).clone(),
                        sort: self.sort(b.sort).clone(),
                        cont: self.resolve_global(b.cont),
                    })
                    .collect(),
            },
        }
    }

    /// Capture-avoiding substitution `t[depth := repl]` with the same
    /// convention as [`GlobalType::subst_top`]: `repl` is closed, so it is
    /// never shifted; free variables of `t` above `depth` are decremented.
    ///
    /// Memoised per `(t, depth, repl)`; subterms with no free variable at or
    /// above `depth` are returned unchanged (maximal sharing).
    pub fn subst_global(&mut self, t: TypeId, depth: u32, repl: TypeId) -> TypeId {
        // No free variable ≥ depth: nothing to replace or decrement.
        if self.gmeta[t.index()].free_mask >> depth == 0 {
            return t;
        }
        if let Some(&r) = self.subst_memo.get(&(t, depth, repl)) {
            return r;
        }
        let result = match self.global(t).clone() {
            GTerm::End => t,
            GTerm::Var(i) => {
                if i == depth {
                    repl
                } else if i > depth {
                    self.mk_global(GTerm::Var(i - 1))
                } else {
                    t
                }
            }
            GTerm::Rec(body) => {
                let body = self.subst_global(body, depth + 1, repl);
                self.mk_global(GTerm::Rec(body))
            }
            GTerm::Msg { from, to, branches } => {
                let bs: Vec<IBranch<TypeId>> = branches
                    .iter()
                    .map(|b| IBranch {
                        label: b.label,
                        sort: b.sort,
                        cont: self.subst_global(b.cont, depth, repl),
                    })
                    .collect();
                self.mk_global(GTerm::Msg {
                    from,
                    to,
                    branches: bs.into(),
                })
            }
        };
        self.subst_memo.insert((t, depth, repl), result);
        result
    }

    /// One step of recursion unfolding: `mu X. G ↦ G[X := mu X. G]`; other
    /// constructors are returned unchanged.
    pub fn unfold_once_global(&mut self, t: TypeId) -> TypeId {
        match *self.global(t) {
            GTerm::Rec(body) => self.subst_global(body, 0, t),
            _ => t,
        }
    }

    /// The equi-recursive head-normal form: unfolds leading `mu` binders
    /// until the head constructor is `End` or `Msg`. Memoised per id.
    ///
    /// # Panics
    ///
    /// Panics if the term is unguarded or not closed (callers are expected to
    /// check [`GlobalType::well_formed`] first), mirroring
    /// [`GlobalType::unfold_head`].
    pub fn unfold_head_global(&mut self, t: TypeId) -> TypeId {
        if let Some(&h) = self.hnf_memo.get(&t) {
            return h;
        }
        let mut chain = vec![t];
        let mut current = t;
        let mut fuel = self.gterms.len() + 1;
        while matches!(self.global(current), GTerm::Rec(_)) {
            assert!(fuel > 0, "unfold_head: unguarded or open recursion");
            fuel -= 1;
            current = self.unfold_once_global(current);
            if let Some(&h) = self.hnf_memo.get(&current) {
                current = h;
                break;
            }
            chain.push(current);
        }
        assert!(
            !matches!(self.global(current), GTerm::Var(_)),
            "unfold_head reached a free variable; type was not closed"
        );
        for step in chain {
            self.hnf_memo.insert(step, current);
        }
        current
    }

    // ------------------------------------------------------------------
    // Local terms
    // ------------------------------------------------------------------

    /// Number of distinct local-type nodes interned so far.
    pub fn local_len(&self) -> usize {
        self.lterms.len()
    }

    /// Interns (hash-conses) a local node built from already-interned
    /// children.
    pub fn mk_local(&mut self, term: LTerm) -> LTypeId {
        if let Some(&id) = self.ldedup.get(&term) {
            return id;
        }
        let free_mask = match &term {
            LTerm::End => 0,
            LTerm::Var(i) => {
                assert!(*i < 128, "recursion nesting beyond 128 binders is unsupported");
                1u128 << i
            }
            LTerm::Rec(body) => self.lmeta[body.index()].free_mask >> 1,
            LTerm::Send { branches, .. } | LTerm::Recv { branches, .. } => branches
                .iter()
                .fold(0, |m, b| m | self.lmeta[b.cont.index()].free_mask),
        };
        let id = LTypeId(u32::try_from(self.lterms.len()).expect("interner overflow"));
        self.lterms.push(term.clone());
        self.lmeta.push(LMeta { free_mask });
        self.ldedup.insert(term, id);
        id
    }

    /// Interns a [`LocalType`] bottom-up.
    pub fn intern_local(&mut self, l: &LocalType) -> LTypeId {
        match l {
            LocalType::End => self.mk_local(LTerm::End),
            LocalType::Var(i) => self.mk_local(LTerm::Var(*i)),
            LocalType::Rec(body) => {
                let body = self.intern_local(body);
                self.mk_local(LTerm::Rec(body))
            }
            LocalType::Send { to, branches } => {
                let to = self.role_id(to);
                let bs = self.intern_lbranches(branches);
                self.mk_local(LTerm::Send { to, branches: bs })
            }
            LocalType::Recv { from, branches } => {
                let from = self.role_id(from);
                let bs = self.intern_lbranches(branches);
                self.mk_local(LTerm::Recv { from, branches: bs })
            }
        }
    }

    fn intern_lbranches(&mut self, branches: &[Branch<LocalType>]) -> Arc<[IBranch<LTypeId>]> {
        branches
            .iter()
            .map(|b| IBranch {
                label: self.label_id(&b.label),
                sort: self.sort_id(&b.sort),
                cont: self.intern_local(&b.cont),
            })
            .collect::<Vec<_>>()
            .into()
    }

    /// The node behind an id.
    #[inline]
    pub fn local(&self, id: LTypeId) -> &LTerm {
        &self.lterms[id.index()]
    }

    /// The free-variable mask of a local term.
    #[inline]
    pub fn local_free_mask(&self, id: LTypeId) -> u128 {
        self.lmeta[id.index()].free_mask
    }

    /// Reconstructs the (boxed) [`LocalType`] behind an id.
    pub fn resolve_local(&self, id: LTypeId) -> LocalType {
        match self.local(id) {
            LTerm::End => LocalType::End,
            LTerm::Var(i) => LocalType::Var(*i),
            LTerm::Rec(body) => LocalType::Rec(Box::new(self.resolve_local(*body))),
            LTerm::Send { to, branches } => LocalType::Send {
                to: self.role(*to).clone(),
                branches: self.resolve_lbranches(branches),
            },
            LTerm::Recv { from, branches } => LocalType::Recv {
                from: self.role(*from).clone(),
                branches: self.resolve_lbranches(branches),
            },
        }
    }

    fn resolve_lbranches(&self, branches: &[IBranch<LTypeId>]) -> Vec<Branch<LocalType>> {
        branches
            .iter()
            .map(|b| Branch {
                label: self.label(b.label).clone(),
                sort: self.sort(b.sort).clone(),
                cont: self.resolve_local(b.cont),
            })
            .collect()
    }

    /// Capture-avoiding substitution on local terms, mirroring
    /// [`Interner::subst_global`] (memoised per `(t, depth, repl)`).
    pub fn subst_local(&mut self, t: LTypeId, depth: u32, repl: LTypeId) -> LTypeId {
        if self.lmeta[t.index()].free_mask >> depth == 0 {
            return t;
        }
        if let Some(&r) = self.lsubst_memo.get(&(t, depth, repl)) {
            return r;
        }
        let result = match self.local(t).clone() {
            LTerm::End => t,
            LTerm::Var(i) => {
                if i == depth {
                    repl
                } else if i > depth {
                    self.mk_local(LTerm::Var(i - 1))
                } else {
                    t
                }
            }
            LTerm::Rec(body) => {
                let body = self.subst_local(body, depth + 1, repl);
                self.mk_local(LTerm::Rec(body))
            }
            LTerm::Send { to, branches } => {
                let bs = self.subst_lbranches(&branches, depth, repl);
                self.mk_local(LTerm::Send { to, branches: bs })
            }
            LTerm::Recv { from, branches } => {
                let bs = self.subst_lbranches(&branches, depth, repl);
                self.mk_local(LTerm::Recv { from, branches: bs })
            }
        };
        self.lsubst_memo.insert((t, depth, repl), result);
        result
    }

    fn subst_lbranches(
        &mut self,
        branches: &[IBranch<LTypeId>],
        depth: u32,
        repl: LTypeId,
    ) -> Arc<[IBranch<LTypeId>]> {
        branches
            .iter()
            .map(|b| IBranch {
                label: b.label,
                sort: b.sort,
                cont: self.subst_local(b.cont, depth, repl),
            })
            .collect::<Vec<_>>()
            .into()
    }

    /// One step of recursion unfolding on local terms.
    pub fn unfold_once_local(&mut self, t: LTypeId) -> LTypeId {
        match *self.local(t) {
            LTerm::Rec(body) => self.subst_local(body, 0, t),
            _ => t,
        }
    }

    /// The equi-recursive head-normal form of a local term. Memoised per id.
    ///
    /// # Panics
    ///
    /// Panics if the term is unguarded or not closed.
    pub fn unfold_head_local(&mut self, t: LTypeId) -> LTypeId {
        if let Some(&h) = self.lhnf_memo.get(&t) {
            return h;
        }
        let mut chain = vec![t];
        let mut current = t;
        let mut fuel = self.lterms.len() + 1;
        while matches!(self.local(current), LTerm::Rec(_)) {
            assert!(fuel > 0, "unfold_head: unguarded or open recursion");
            fuel -= 1;
            current = self.unfold_once_local(current);
            if let Some(&h) = self.lhnf_memo.get(&current) {
                current = h;
                break;
            }
            chain.push(current);
        }
        assert!(
            !matches!(self.local(current), LTerm::Var(_)),
            "unfold_head reached a free variable; type was not closed"
        );
        for step in chain {
            self.lhnf_memo.insert(step, current);
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::sort::Sort;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn simple_loop() -> GlobalType {
        GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::var(0),
        ))
    }

    #[test]
    fn interning_is_idempotent_and_shares_subterms() {
        let mut int = Interner::new();
        let g = simple_loop();
        let a = int.intern_global(&g);
        let before = int.global_len();
        let b = int.intern_global(&g.clone());
        assert_eq!(a, b);
        assert_eq!(int.global_len(), before, "re-interning allocates nothing");
    }

    #[test]
    fn structural_equality_is_id_equality() {
        let mut int = Interner::new();
        let g1 = GlobalType::msg1(r("p"), r("q"), "l", Sort::Nat, GlobalType::End);
        let g2 = GlobalType::msg1(r("p"), r("q"), "l", Sort::Nat, GlobalType::End);
        let g3 = GlobalType::msg1(r("p"), r("q"), "m", Sort::Nat, GlobalType::End);
        assert_eq!(int.intern_global(&g1), int.intern_global(&g2));
        assert_ne!(int.intern_global(&g1), int.intern_global(&g3));
    }

    #[test]
    fn resolve_round_trips() {
        let mut int = Interner::new();
        let g = simple_loop();
        let id = int.intern_global(&g);
        assert_eq!(int.resolve_global(id), g);
        let l = LocalType::rec(LocalType::send1(r("q"), "l", Sort::Nat, LocalType::var(0)));
        let lid = int.intern_local(&l);
        assert_eq!(int.resolve_local(lid), l);
    }

    #[test]
    fn metadata_tracks_free_vars_parts_and_rec() {
        let mut int = Interner::new();
        let open = GlobalType::msg1(r("p"), r("q"), "l", Sort::Nat, GlobalType::var(3));
        let id = int.intern_global(&open);
        assert_eq!(int.global_free_mask(id), 1 << 3);
        assert!(!int.global_has_rec(id));
        let closed = int.intern_global(&simple_loop());
        assert_eq!(int.global_free_mask(closed), 0);
        assert!(int.global_has_rec(closed));
        let p = int.lookup_role(&r("p")).unwrap();
        let q = int.lookup_role(&r("q")).unwrap();
        assert!(int.global_parts(closed).contains(p.index()));
        assert!(int.global_parts(closed).contains(q.index()));
        assert_eq!(int.global_parts(closed).len(), 2);
    }

    #[test]
    fn unfolding_agrees_with_the_boxed_implementation() {
        let mut int = Interner::new();
        let g = simple_loop();
        let id = int.intern_global(&g);
        let unfolded = int.unfold_once_global(id);
        assert_eq!(int.resolve_global(unfolded), g.unfold_once());
        // Head-normalisation strips all leading binders.
        let hnf = int.unfold_head_global(id);
        assert_eq!(int.resolve_global(hnf), g.unfold_head());
        // And is idempotent + memoised.
        assert_eq!(int.unfold_head_global(hnf), hnf);
        assert_eq!(int.unfold_head_global(id), hnf);
    }

    #[test]
    fn substitution_shares_untouched_subterms() {
        let mut int = Interner::new();
        // p->q:l(nat).end contains no free vars: substituting under it is
        // the identity, not a copy.
        let g = GlobalType::msg1(r("p"), r("q"), "l", Sort::Nat, GlobalType::End);
        let id = int.intern_global(&g);
        let end = int.mk_global(GTerm::End);
        assert_eq!(int.subst_global(id, 0, end), id);
    }

    #[test]
    fn message_ids_are_dense_and_deduplicated() {
        let mut int = Interner::new();
        let l1 = int.label_id(&Label::new("ping"));
        let l2 = int.label_id(&Label::new("pong"));
        let nat = int.sort_id(&Sort::Nat);
        let bool_ = int.sort_id(&Sort::Bool);
        let a = int.msg_id(l1, nat);
        let b = int.msg_id(l1, nat);
        let c = int.msg_id(l2, nat);
        let d = int.msg_id(l1, bool_);
        assert_eq!(a, b, "same (label, sort) interns to the same id");
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(c, d);
        assert_eq!(int.msg_len(), 3);
        assert_eq!(int.msg(a), (l1, nat));
        assert_eq!(int.msg(d), (l1, bool_));
    }

    #[test]
    fn snapshots_are_send_sync_and_resolve_interned_entries() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InternerSnapshot>();

        let mut int = Interner::new();
        let p = int.role_id(&r("p"));
        let l = int.label_id(&Label::new("ping"));
        let nat = int.sort_id(&Sort::Nat);
        let m = int.msg_id(l, nat);
        let snap = int.snapshot();
        assert_eq!(snap.role(p), &r("p"));
        assert_eq!(snap.lookup_role(&r("p")), Some(p));
        assert_eq!(snap.lookup_role(&r("zzz")), None);
        assert_eq!(snap.label(l), &Label::new("ping"));
        assert_eq!(snap.lookup_label(&Label::new("ping")), Some(l));
        assert_eq!(snap.sort(nat), &Sort::Nat);
        assert_eq!(snap.lookup_sort(&Sort::Bool), None);
        assert_eq!(snap.msg(m), (l, nat));
        assert_eq!(snap.lookup_msg(l, nat), Some(m));
        assert_eq!(snap.msg_len(), 1);
        assert_eq!(snap.roles(), &[r("p")]);
        // Entries interned after the snapshot are invisible to it.
        let q = int.role_id(&r("q"));
        assert_eq!(snap.lookup_role(&r("q")), None);
        assert_eq!(int.role(q), &r("q"));
    }

    #[test]
    fn local_unfold_head_matches_boxed() {
        let mut int = Interner::new();
        let l = LocalType::rec(LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::var(0)));
        let id = int.intern_local(&l);
        let hnf = int.unfold_head_local(id);
        assert_eq!(int.resolve_local(hnf), l.unfold_head());
    }
}
