//! Node identifiers for the graph representation of semantic trees.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a node inside a semantic-tree arena.
///
/// Semantic trees ([`GlobalTree`], [`LocalTree`]) are stored as arenas of
/// nodes; a `NodeId` is only meaningful together with the arena that produced
/// it.
///
/// [`GlobalTree`]: crate::global::GlobalTree
/// [`LocalTree`]: crate::local::LocalTree
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub(crate) fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("semantic tree with more than u32::MAX nodes"))
    }

    /// The raw index of the node inside its arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        let id = NodeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "#7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(3), NodeId::new(3));
    }
}
