//! Message labels.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A message label, used to select among the branches of a choice.
///
/// Within a single choice all labels must be pairwise distinct (Definition
/// 3.1); this is enforced by the well-formedness checks on [`GlobalType`] and
/// [`LocalType`].
///
/// [`GlobalType`]: crate::global::GlobalType
/// [`LocalType`]: crate::local::LocalType
///
/// # Examples
///
/// ```
/// use zooid_mpst::Label;
///
/// let accept = Label::new("Accept");
/// assert_eq!(accept.name(), "Accept");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Label(Arc<str>);

impl Label {
    /// Creates a label with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Label(Arc::from(name.as_ref()))
    }

    /// Returns the label's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Label {
    fn from(name: &str) -> Self {
        Label::new(name)
    }
}

impl From<String> for Label {
    fn from(name: String) -> Self {
        Label::new(name)
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        self.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_by_name() {
        assert_eq!(Label::new("l"), Label::new("l"));
        assert_ne!(Label::new("l1"), Label::new("l2"));
    }

    #[test]
    fn display_shows_name() {
        assert_eq!(Label::new("Quote").to_string(), "Quote");
    }

    #[test]
    fn conversions() {
        let a: Label = "x".into();
        let b: Label = String::from("x").into();
        assert_eq!(a, b);
    }
}
