//! Executable counterparts of the step-correspondence and trace-equivalence
//! theorems (Theorems 3.16, 3.17 and 3.21, `TraceEquiv.v`).
//!
//! The paper proves, for every global tree `Gc` with one-shot projection
//! `(E, Q)`:
//!
//! * **step soundness** (Theorem 3.16) — every step of the global tree can be
//!   matched by the environment, preserving the projection;
//! * **step completeness** (Theorem 3.17) — every step of the environment can
//!   be matched by the global tree, preserving the projection;
//! * **trace equivalence** (Theorem 3.21) — the two transition systems admit
//!   exactly the same traces.
//!
//! In a proof assistant these are once-and-for-all theorems; here they become
//! decision procedures that *verify each instance*: given a protocol, the
//! checkers explore every configuration reachable within a bound and verify
//! the matching-step conditions, and the trace-equivalence checker compares
//! the bounded trace sets of the two semantics. The property-based tests and
//! the benchmark harness run these checkers over both the paper's protocols
//! and randomly generated ones.

use std::collections::{BTreeSet, VecDeque};

use crate::common::arena::NodeId;
use crate::common::intern::FxHashMap;
use crate::common::label::Label;
use crate::common::role::Role;
use crate::common::sort::Sort;
use crate::common::trace::Trace;
use crate::error::Result;
use crate::global::prefix::GlobalPrefix;
use crate::global::semantics::{enabled_global_actions, global_step, global_traces_up_to};
use crate::global::syntax::GlobalType;
use crate::global::tree::GlobalTree;
use crate::global::unravel::unravel_global;
use crate::local::semantics::{
    enabled_local_actions, local_step, local_traces_up_to, Configuration,
};
use crate::projection::eproject::{one_shot_projection, one_shot_projection_holds};

/// The outcome of one of the bounded theorem checkers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Whether the property held on every configuration explored.
    pub holds: bool,
    /// Number of `(global state, local configuration)` pairs explored.
    pub states_explored: usize,
    /// Human-readable description of the first violation found, if any.
    pub counterexample: Option<String>,
}

impl CheckReport {
    fn success(states_explored: usize) -> Self {
        CheckReport {
            holds: true,
            states_explored,
            counterexample: None,
        }
    }

    fn failure(states_explored: usize, counterexample: String) -> Self {
        CheckReport {
            holds: false,
            states_explored,
            counterexample: Some(counterexample),
        }
    }
}

/// Which of the two step-correspondence directions to check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Theorem 3.16: global steps are matched by the environment.
    Soundness,
    /// Theorem 3.17: environment steps are matched by the global tree.
    Completeness,
}

/// Checks Theorem 3.16 (step soundness) for the protocol `global`, exploring
/// every configuration reachable in at most `depth` steps.
///
/// # Errors
///
/// Fails if the protocol is ill-formed or not projectable (the theorem's
/// hypotheses).
pub fn check_step_soundness(global: &GlobalType, depth: usize) -> Result<CheckReport> {
    check_direction(global, depth, Direction::Soundness)
}

/// Checks Theorem 3.17 (step completeness) for the protocol `global`,
/// exploring every configuration reachable in at most `depth` steps.
///
/// # Errors
///
/// Fails if the protocol is ill-formed or not projectable.
pub fn check_step_completeness(global: &GlobalType, depth: usize) -> Result<CheckReport> {
    check_direction(global, depth, Direction::Completeness)
}

/// The identity of a product state `(global prefix, configuration)`, used to
/// key visited-state maps.
///
/// The environment's trees are fixed for the whole run (only the cursor of
/// each endpoint moves), so a configuration is identified by its per-role
/// cursor positions plus the queue contents. The prefix is shared with the
/// worklist through an `Arc` (hashed and compared by content) so keying a
/// state never deep-clones it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ProductKey {
    prefix: std::sync::Arc<GlobalPrefix>,
    cursors: Vec<NodeId>,
    queues: Vec<(Role, Role, Vec<(Label, Sort)>)>,
}

fn product_key(prefix: &std::sync::Arc<GlobalPrefix>, config: &Configuration) -> ProductKey {
    ProductKey {
        prefix: std::sync::Arc::clone(prefix),
        cursors: config.env.iter().map(|(_, ep)| ep.current()).collect(),
        queues: config
            .queues
            .iter()
            .map(|((from, to), msgs)| {
                (from.clone(), to.clone(), msgs.iter().cloned().collect())
            })
            .collect(),
    }
}

/// Visited map for bounded product explorations: state → largest number of
/// remaining steps it has been expanded with. A state is re-expanded only
/// when reached again with *more* remaining depth, which keeps the bounded
/// exploration exhaustive while collapsing the exponentially many
/// interleavings that reach the same state.
struct Visited {
    best: FxHashMap<ProductKey, usize>,
}

impl Visited {
    fn new() -> Self {
        Visited {
            best: FxHashMap::default(),
        }
    }

    /// Records reaching `key` with `remaining` steps left; returns `true` if
    /// the state must be expanded (first visit, or deeper than before).
    fn admit(&mut self, key: ProductKey, remaining: usize) -> bool {
        match self.best.get_mut(&key) {
            Some(prev) if *prev >= remaining => false,
            Some(prev) => {
                *prev = remaining;
                true
            }
            None => {
                self.best.insert(key, remaining);
                true
            }
        }
    }
}

fn check_direction(global: &GlobalType, depth: usize, dir: Direction) -> Result<CheckReport> {
    let tree = unravel_global(global)?;
    let initial_config = one_shot_projection(&tree)?;
    let initial_prefix = std::sync::Arc::new(GlobalPrefix::initial(&tree));
    let mut visited = Visited::new();
    visited.admit(product_key(&initial_prefix, &initial_config), depth);
    let mut queue: VecDeque<(std::sync::Arc<GlobalPrefix>, Configuration, usize)> =
        VecDeque::new();
    queue.push_back((initial_prefix, initial_config, depth));
    let mut explored = 0usize;

    while let Some((prefix, config, remaining)) = queue.pop_front() {
        explored += 1;
        let actions = match dir {
            Direction::Soundness => enabled_global_actions(&tree, &prefix),
            Direction::Completeness => enabled_local_actions(&config),
        };
        for action in actions {
            let gnext = global_step(&tree, &prefix, &action);
            let lnext = local_step(&config, &action);
            match (gnext, lnext) {
                (Some(gp), Some(lc)) => {
                    if !one_shot_projection_holds(&tree, &gp, &lc) {
                        return Ok(CheckReport::failure(
                            explored,
                            format!(
                                "after action {action} the successor states are no longer \
                                 related by the one-shot projection"
                            ),
                        ));
                    }
                    if remaining > 0 {
                        let gp = std::sync::Arc::new(gp);
                        if visited.admit(product_key(&gp, &lc), remaining - 1) {
                            queue.push_back((gp, lc, remaining - 1));
                        }
                    }
                }
                (Some(_), None) => {
                    return Ok(CheckReport::failure(
                        explored,
                        format!(
                            "global action {action} is enabled but the environment cannot \
                             match it"
                        ),
                    ));
                }
                (None, Some(_)) => {
                    return Ok(CheckReport::failure(
                        explored,
                        format!(
                            "environment action {action} is enabled but the global tree \
                             cannot match it"
                        ),
                    ));
                }
                (None, None) => {
                    // The action was enabled on the side we enumerated
                    // from, so at least one of the two must step.
                    return Ok(CheckReport::failure(
                        explored,
                        format!("action {action} was reported enabled but neither side steps"),
                    ));
                }
            }
        }
    }
    Ok(CheckReport::success(explored))
}

/// Checks the bounded version of Theorem 3.21 (trace equivalence): the sets
/// of admissible trace prefixes of length at most `depth` of the global tree
/// and of its one-shot projection coincide.
///
/// Decided *on the fly* by a product construction over the two transition
/// systems instead of materialising the (exponentially large) trace sets:
/// both LTSs are deterministic per action, so the bounded trace sets coincide
/// iff at every product state jointly reachable in fewer than `depth` steps
/// the two sides enable exactly the same actions. The exploration is a
/// worklist search over product states with a visited map, which collapses
/// the interleavings that the trace-set enumeration would enumerate
/// separately — a polynomial graph search in the number of distinct reachable
/// states, with verdicts identical to the set-based checker (kept as
/// [`check_trace_equivalence_exhaustive`] and compared against it by the
/// property tests).
///
/// # Errors
///
/// Fails if the protocol is ill-formed or not projectable.
pub fn check_trace_equivalence(global: &GlobalType, depth: usize) -> Result<CheckReport> {
    let tree = unravel_global(global)?;
    let initial_config = one_shot_projection(&tree)?;
    Ok(product_trace_equivalence(&tree, initial_config, depth))
}

/// The product exploration behind [`check_trace_equivalence`], factored out
/// so the failure branch can be exercised directly (a *correct* projection
/// can never trigger it — that is Theorem 3.21).
fn product_trace_equivalence(
    tree: &GlobalTree,
    initial_config: Configuration,
    depth: usize,
) -> CheckReport {
    let initial_prefix = std::sync::Arc::new(GlobalPrefix::initial(tree));
    let mut visited = Visited::new();
    visited.admit(product_key(&initial_prefix, &initial_config), depth);
    let mut queue: VecDeque<(std::sync::Arc<GlobalPrefix>, Configuration, usize)> =
        VecDeque::new();
    queue.push_back((initial_prefix, initial_config, depth));
    let mut explored = 0usize;

    while let Some((prefix, config, remaining)) = queue.pop_front() {
        explored += 1;
        if remaining == 0 {
            // Actions from this state would extend traces beyond the bound.
            continue;
        }
        let mut global_actions = enabled_global_actions(tree, &prefix);
        let mut local_actions = enabled_local_actions(&config);
        global_actions.sort();
        local_actions.sort();
        if global_actions != local_actions {
            let only_global = global_actions
                .iter()
                .find(|a| !local_actions.contains(a));
            let only_local = local_actions
                .iter()
                .find(|a| !global_actions.contains(a));
            return CheckReport::failure(
                explored,
                format!(
                    "enabled actions differ at a jointly reachable state \
                     ({} steps from the start): only-global {only_global:?}, \
                     only-local {only_local:?}",
                    depth - remaining
                ),
            );
        }
        for action in global_actions {
            let gp = std::sync::Arc::new(
                global_step(tree, &prefix, &action)
                    .expect("action reported enabled by the global LTS"),
            );
            let lc = local_step(&config, &action)
                .expect("action reported enabled by the environment LTS");
            if visited.admit(product_key(&gp, &lc), remaining - 1) {
                queue.push_back((gp, lc, remaining - 1));
            }
        }
    }
    CheckReport::success(explored)
}

/// The seed's set-based trace-equivalence checker: materialises both bounded
/// trace-prefix sets and compares them.
///
/// Exponential in `depth`; kept as the reference implementation that the
/// property tests and the benchmark report compare the on-the-fly
/// [`check_trace_equivalence`] against.
///
/// # Errors
///
/// Fails if the protocol is ill-formed or not projectable.
pub fn check_trace_equivalence_exhaustive(
    global: &GlobalType,
    depth: usize,
) -> Result<CheckReport> {
    let (global_traces, local_traces) = bounded_trace_sets(global, depth)?;
    if global_traces == local_traces {
        Ok(CheckReport::success(global_traces.len()))
    } else {
        let only_global: Vec<_> = global_traces.difference(&local_traces).take(1).collect();
        let only_local: Vec<_> = local_traces.difference(&global_traces).take(1).collect();
        Ok(CheckReport::failure(
            global_traces.len() + local_traces.len(),
            format!(
                "trace sets differ: only-global {only_global:?}, only-local {only_local:?}"
            ),
        ))
    }
}

/// The bounded trace sets of the two semantics: every admissible trace prefix
/// of length at most `depth` of the global tree, and of the initial
/// configuration of its one-shot projection.
///
/// # Errors
///
/// Fails if the protocol is ill-formed or not projectable.
pub fn bounded_trace_sets(
    global: &GlobalType,
    depth: usize,
) -> Result<(BTreeSet<Trace>, BTreeSet<Trace>)> {
    let tree = unravel_global(global)?;
    let config = one_shot_projection(&tree)?;
    Ok((
        global_traces_up_to(&tree, depth),
        local_traces_up_to(&config, depth),
    ))
}

/// Convenience bundle: unravels a protocol and returns the pieces needed to
/// run its two semantics side by side (the global tree, the initial prefix
/// and the initial configuration).
///
/// # Errors
///
/// Fails if the protocol is ill-formed or not projectable.
pub fn protocol_semantics(
    global: &GlobalType,
) -> Result<(GlobalTree, GlobalPrefix, Configuration)> {
    let tree = unravel_global(global)?;
    let config = one_shot_projection(&tree)?;
    let prefix = GlobalPrefix::initial(&tree);
    Ok((tree, prefix, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::label::Label;
    use crate::common::role::Role;
    use crate::common::sort::Sort;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn ring() -> GlobalType {
        GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(
                r("Bob"),
                r("Carol"),
                "l",
                Sort::Nat,
                GlobalType::msg1(r("Carol"), r("Alice"), "l", Sort::Nat, GlobalType::End),
            ),
        )
    }

    fn ping_pong() -> GlobalType {
        GlobalType::rec(GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (Label::new("l1"), Sort::Unit, GlobalType::End),
                (
                    Label::new("l2"),
                    Sort::Nat,
                    GlobalType::msg1(r("Bob"), r("Alice"), "l3", Sort::Nat, GlobalType::var(0)),
                ),
            ],
        ))
    }

    fn two_buyer() -> GlobalType {
        let b_chooses = GlobalType::msg(
            r("B"),
            r("S"),
            vec![
                (
                    Label::new("Accept"),
                    Sort::Nat,
                    GlobalType::msg1(r("S"), r("B"), "Date", Sort::Nat, GlobalType::End),
                ),
                (Label::new("Reject"), Sort::Unit, GlobalType::End),
            ],
        );
        GlobalType::msg1(
            r("A"),
            r("S"),
            "ItemId",
            Sort::Nat,
            GlobalType::msg1(
                r("S"),
                r("A"),
                "Quote",
                Sort::Nat,
                GlobalType::msg1(
                    r("S"),
                    r("B"),
                    "Quote",
                    Sort::Nat,
                    GlobalType::msg1(r("A"), r("B"), "Propose", Sort::Nat, b_chooses),
                ),
            ),
        )
    }

    #[test]
    fn step_soundness_holds_for_the_ring() {
        let report = check_step_soundness(&ring(), 6).unwrap();
        assert!(report.holds, "{:?}", report.counterexample);
        assert!(report.states_explored > 1);
    }

    #[test]
    fn step_completeness_holds_for_the_ring() {
        let report = check_step_completeness(&ring(), 6).unwrap();
        assert!(report.holds, "{:?}", report.counterexample);
    }

    #[test]
    fn trace_equivalence_holds_for_the_ring() {
        let report = check_trace_equivalence(&ring(), 6).unwrap();
        assert!(report.holds, "{:?}", report.counterexample);
    }

    #[test]
    fn theorems_hold_for_the_recursive_ping_pong() {
        for depth in [1, 3, 5] {
            assert!(check_step_soundness(&ping_pong(), depth).unwrap().holds);
            assert!(check_step_completeness(&ping_pong(), depth).unwrap().holds);
            assert!(check_trace_equivalence(&ping_pong(), depth).unwrap().holds);
        }
    }

    #[test]
    fn theorems_hold_for_the_two_buyer_protocol() {
        assert!(check_step_soundness(&two_buyer(), 5).unwrap().holds);
        assert!(check_step_completeness(&two_buyer(), 5).unwrap().holds);
        assert!(check_trace_equivalence(&two_buyer(), 5).unwrap().holds);
    }

    #[test]
    fn trace_sets_grow_with_depth() {
        let (g1, l1) = bounded_trace_sets(&ring(), 2).unwrap();
        let (g2, l2) = bounded_trace_sets(&ring(), 4).unwrap();
        assert!(g1.len() < g2.len());
        assert_eq!(g1, l1);
        assert_eq!(g2, l2);
        assert!(g1.is_subset(&g2));
    }

    #[test]
    fn on_the_fly_checker_agrees_with_the_exhaustive_one() {
        for g in [ring(), ping_pong(), two_buyer()] {
            for depth in [0, 1, 3, 5] {
                let fast = check_trace_equivalence(&g, depth).unwrap();
                let slow = check_trace_equivalence_exhaustive(&g, depth).unwrap();
                assert_eq!(fast.holds, slow.holds, "depth {depth}");
            }
        }
    }

    #[test]
    fn product_exploration_detects_a_wrong_environment() {
        // Theorem 3.21 guarantees the failure branch is unreachable for a
        // *correct* projection, so exercise it directly: pair the ring's
        // global tree with the ping-pong protocol's environment. The enabled
        // sets differ at the very first state, and the report must name a
        // differing action.
        let ring_tree = unravel_global(&ring()).unwrap();
        let pong_tree = unravel_global(&ping_pong()).unwrap();
        let wrong_config = one_shot_projection(&pong_tree).unwrap();
        let report = product_trace_equivalence(&ring_tree, wrong_config, 4);
        assert!(!report.holds);
        let reason = report.counterexample.expect("mismatch must be reported");
        assert!(
            reason.contains("enabled actions differ"),
            "unexpected counterexample: {reason}"
        );

        // And the same exploration with the *right* environment succeeds.
        let right_config = one_shot_projection(&ring_tree).unwrap();
        let report = product_trace_equivalence(&ring_tree, right_config, 6);
        assert!(report.holds, "{:?}", report.counterexample);
        assert!(report.states_explored >= 1);
    }

    #[test]
    fn unprojectable_protocols_are_rejected_by_the_checkers() {
        let g_prime = GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (
                    Label::new("l1"),
                    Sort::Nat,
                    GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
                (
                    Label::new("l2"),
                    Sort::Nat,
                    GlobalType::msg1(r("Alice"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
            ],
        );
        assert!(check_step_soundness(&g_prime, 3).is_err());
        assert!(check_trace_equivalence(&g_prime, 3).is_err());
    }

    #[test]
    fn protocol_semantics_bundles_consistent_pieces() {
        let (tree, prefix, config) = protocol_semantics(&ring()).unwrap();
        assert!(one_shot_projection_holds(&tree, &prefix, &config));
    }
}
