//! Error types for the MPST metatheory layer.

use std::fmt;

use crate::common::label::Label;
use crate::common::role::Role;

/// A specialised `Result` for MPST operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by well-formedness checks, unravelling, projection and the
/// operational semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A recursion binder is not guarded (e.g. `mu X. X`), violating
    /// Definition A.2/A.10.
    Unguarded {
        /// Human-readable description of the offending subterm.
        context: String,
    },
    /// The type contains a free recursion variable (violating closedness,
    /// Definition A.3/A.11).
    UnboundVariable {
        /// de Bruijn index of the unbound variable.
        index: u32,
    },
    /// A choice has an empty set of continuations (the paper requires
    /// `I != {}`).
    EmptyChoice,
    /// Two branches of the same choice carry the same label.
    DuplicateLabel {
        /// The repeated label.
        label: Label,
    },
    /// A message type has the same participant as sender and receiver
    /// (the paper requires `p != q`).
    SelfCommunication {
        /// The offending participant.
        role: Role,
    },
    /// The global type (or tree) cannot be projected onto the given
    /// participant.
    NotProjectable {
        /// The participant the projection was attempted for.
        role: Role,
        /// Why projection failed.
        reason: String,
    },
    /// A projection, environment or queue lookup referred to a participant
    /// that is not part of the protocol.
    UnknownRole {
        /// The missing participant.
        role: Role,
    },
    /// An operation on the semantics was attempted from a configuration that
    /// cannot perform it (e.g. receiving from an empty queue).
    StuckConfiguration {
        /// Human-readable description of the attempted step.
        context: String,
    },
    /// A well-formedness precondition did not hold.
    IllFormed {
        /// Human-readable description of the violated condition.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Unguarded { context } => write!(f, "unguarded recursion in {context}"),
            Error::UnboundVariable { index } => {
                write!(f, "unbound recursion variable with de Bruijn index {index}")
            }
            Error::EmptyChoice => f.write_str("choice with an empty set of continuations"),
            Error::DuplicateLabel { label } => {
                write!(f, "duplicate label `{label}` in a choice")
            }
            Error::SelfCommunication { role } => {
                write!(f, "participant `{role}` sends a message to itself")
            }
            Error::NotProjectable { role, reason } => {
                write!(f, "global type is not projectable onto `{role}`: {reason}")
            }
            Error::UnknownRole { role } => write!(f, "unknown participant `{role}`"),
            Error::StuckConfiguration { context } => {
                write!(f, "configuration cannot perform the requested step: {context}")
            }
            Error::IllFormed { reason } => write!(f, "ill-formed type: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<Error> = vec![
            Error::Unguarded {
                context: "mu X. X".into(),
            },
            Error::UnboundVariable { index: 2 },
            Error::EmptyChoice,
            Error::DuplicateLabel {
                label: Label::new("l"),
            },
            Error::SelfCommunication {
                role: Role::new("p"),
            },
            Error::NotProjectable {
                role: Role::new("r"),
                reason: "branches disagree".into(),
            },
            Error::UnknownRole {
                role: Role::new("x"),
            },
            Error::StuckConfiguration {
                context: "deq on empty queue".into(),
            },
            Error::IllFormed {
                reason: "empty protocol".into(),
            },
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "error message should start lowercase: {msg}"
            );
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn errors_are_send_sync_and_error() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }
}
