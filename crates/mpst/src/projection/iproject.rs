//! Inductive projection of global types onto participants
//! (Definition 3.4 / A.15, Figure 3a, `Projection/IProject.v`).

use crate::common::intern::{GTerm, IBranch, Interner, LTerm, LTypeId, LeafKind, RoleId, TypeId};
use crate::common::role::Role;
use crate::error::{Error, Result};
use crate::global::syntax::GlobalType;
use crate::local::syntax::LocalType;

/// Projects a global type onto a participant, following Figure 3a.
///
/// Projection is a *partial* function: it fails (with
/// [`Error::NotProjectable`]) when the behaviour of `role` cannot be read off
/// the global type — most importantly when, in a choice `role` is not part
/// of, the branches prescribe different behaviours for `role` (rule
/// `[proj-cont]` requires all branch projections to be equal; this is the
/// "plain merge" of the MPST literature).
///
/// One deviation from the paper's Figure 3a is made for recursion, following
/// common practice in the MPST literature: when the body of a `mu` projects
/// to a type in which the bound variable can only occur unguarded (i.e. the
/// participant takes no part in the loop), the projection is `end` rather
/// than an unguarded — hence ill-formed — recursive type. This agrees with
/// the coinductive projection, which maps non-participants to `end_c`
/// (`[co-proj-end]`).
///
/// # Errors
///
/// * [`Error::NotProjectable`] if one of the projection rules fails;
/// * any well-formedness error of the input type.
///
/// # Examples
///
/// Example 3.5 of the paper: the second global type projects onto `Carol`,
/// the first does not.
///
/// ```
/// use zooid_mpst::global::GlobalType;
/// use zooid_mpst::projection::project;
/// use zooid_mpst::{Label, Role, Sort};
///
/// let alice = Role::new("Alice");
/// let bob = Role::new("Bob");
/// let carol = Role::new("Carol");
/// let to_carol = || GlobalType::msg1(bob.clone(), carol.clone(), "l", Sort::Nat, GlobalType::End);
///
/// // G: both branches give Carol the same behaviour — projectable.
/// let g = GlobalType::msg(alice.clone(), bob.clone(), vec![
///     (Label::new("l1"), Sort::Nat, to_carol()),
///     (Label::new("l2"), Sort::Bool, to_carol()),
/// ]);
/// assert!(project(&g, &carol).is_ok());
///
/// // G': the branches disagree on who contacts Carol — not projectable.
/// let g_prime = GlobalType::msg(alice.clone(), bob.clone(), vec![
///     (Label::new("l1"), Sort::Nat, to_carol()),
///     (Label::new("l2"), Sort::Nat,
///      GlobalType::msg1(alice.clone(), carol.clone(), "l", Sort::Nat, GlobalType::End)),
/// ]);
/// assert!(project(&g_prime, &carol).is_err());
/// ```
pub fn project(global: &GlobalType, role: &Role) -> Result<LocalType> {
    if use_boxed_path(global) {
        global.well_formed()?;
        return project_boxed(global, role);
    }
    let mut interner = Interner::new();
    let root = interner.intern_global(global);
    interner.well_formed_global(root)?;
    let role_id = interner.role_id(role);
    let mut memo = ProjectMemo::for_interner(&interner);
    let projected = project_interned(&mut interner, &mut memo, root, role_id)?;
    Ok(interner.resolve_local(projected))
}

/// Whether to project directly on the boxed syntax instead of interning.
///
/// Interning pays off once the protocol is large (maximal sharing, id-based
/// merges, memoised traversal) but its fixed setup cost loses to the direct
/// recursion on small terms — the same trade-off as a small-vector
/// optimisation. The thresholds are calibrated on the benchmark families:
/// small protocols, and mid-sized *branching* protocols whose role count is
/// low enough that the direct path's per-occurrence work stays cheap.
fn use_boxed_path(global: &GlobalType) -> bool {
    let size = global.size();
    size <= 24 || (size <= 160 && global.max_branching() >= 2)
}

/// The direct (non-interned) projection of Figure 3a, used for small inputs;
/// produces the same results and errors as the interned path (the property
/// tests compare them).
fn project_boxed(global: &GlobalType, role: &Role) -> Result<LocalType> {
    match global {
        // [proj-end]
        GlobalType::End => Ok(LocalType::End),
        // [proj-var]
        GlobalType::Var(i) => Ok(LocalType::Var(*i)),
        // [proj-rec]
        GlobalType::Rec(body) => {
            let projected = project_boxed(body, role)?;
            if mu_would_be_unguarded_boxed(&projected) {
                Ok(LocalType::End)
            } else if !projected.free_vars().contains(&0) {
                Ok(projected.subst_top(&LocalType::End))
            } else {
                Ok(LocalType::rec(projected))
            }
        }
        GlobalType::Msg { from, to, branches } => {
            if role == from {
                // [proj-send]
                let bs = project_branches_boxed(branches, role)?;
                Ok(LocalType::Send {
                    to: to.clone(),
                    branches: bs,
                })
            } else if role == to {
                // [proj-recv]
                let bs = project_branches_boxed(branches, role)?;
                Ok(LocalType::Recv {
                    from: from.clone(),
                    branches: bs,
                })
            } else {
                // [proj-cont]
                let mut projections = branches
                    .iter()
                    .map(|b| project_boxed(&b.cont, role))
                    .collect::<Result<Vec<_>>>()?;
                let first = projections.swap_remove(0);
                for other in &projections {
                    if other != &first {
                        return Err(Error::NotProjectable {
                            role: role.clone(),
                            reason: format!(
                                "branches of {from}->{to} prescribe different behaviours \
                                 for a participant not involved in the choice: `{first}` \
                                 versus `{other}`"
                            ),
                        });
                    }
                }
                Ok(first)
            }
        }
    }
}

fn project_branches_boxed(
    branches: &[crate::common::branch::Branch<GlobalType>],
    role: &Role,
) -> Result<Vec<crate::common::branch::Branch<LocalType>>> {
    branches
        .iter()
        .map(|b| {
            Ok(crate::common::branch::Branch {
                label: b.label.clone(),
                sort: b.sort.clone(),
                cont: project_boxed(&b.cont, role)?,
            })
        })
        .collect()
}

fn mu_would_be_unguarded_boxed(body: &LocalType) -> bool {
    match body {
        LocalType::Var(_) => true,
        LocalType::Rec(inner) => mu_would_be_unguarded_boxed(inner),
        _ => false,
    }
}

/// Per-role memo table for the inductive projection: each distinct subterm is
/// projected once per role, however many times it occurs.
///
/// Dense (indexed by [`TypeId`]) rather than a hash map: the global-term
/// arena does not grow during projection, so a slot per term makes the memo
/// hit path an array index instead of a hash of the id pair. Failures are not
/// memoised — the memo is per role and a failure aborts the whole projection.
pub(crate) struct ProjectMemo {
    slots: Vec<Option<LTypeId>>,
}

impl ProjectMemo {
    /// An empty memo covering every global term currently interned.
    pub(crate) fn for_interner(interner: &Interner) -> Self {
        ProjectMemo {
            slots: vec![None; interner.global_len()],
        }
    }
}

/// The inductive projection over interned terms (Figure 3a on ids).
///
/// Hash-consing makes the `[proj-cont]` merge an id comparison, and the memo
/// turns the traversal output-linear: a subterm shared by many branches (or
/// revisited through the memoised unfoldings) is projected once.
pub(crate) fn project_interned(
    interner: &mut Interner,
    memo: &mut ProjectMemo,
    t: TypeId,
    role: RoleId,
) -> Result<LTypeId> {
    if let Some(result) = memo.slots[t.index()] {
        return Ok(result);
    }
    let result = project_uncached(interner, memo, t, role)?;
    memo.slots[t.index()] = Some(result);
    Ok(result)
}

fn project_uncached(
    interner: &mut Interner,
    memo: &mut ProjectMemo,
    t: TypeId,
    role: RoleId,
) -> Result<LTypeId> {
    // Pruning: a binder-free subterm that never mentions the role and whose
    // leaves all agree projects to that leaf directly — every merge along the
    // way is between equal leaves. Subterms with binders, or with both `end`
    // and `Var` leaves, are not pruned: their projections are `Var`/`Rec`
    // skeletons on which the plain merge legitimately fails, and pruning
    // would mask that.
    if !interner.global_parts(t).contains(role.index()) && !interner.global_has_rec(t) {
        match interner.global_leaf_kind(t) {
            LeafKind::AllEnd => return Ok(interner.mk_local(LTerm::End)),
            LeafKind::AllVar(i) => return Ok(interner.mk_local(LTerm::Var(i))),
            LeafKind::Mixed => {}
        }
    }
    // Read the node header without cloning; the branch list is only cloned
    // (one `Arc` bump) on the involved send/recv paths that materialise it.
    let (from, to, n_branches) = match interner.global(t) {
        GTerm::End => return Ok(interner.mk_local(LTerm::End)), // [proj-end]
        GTerm::Var(i) => {
            // [proj-var]
            let i = *i;
            return Ok(interner.mk_local(LTerm::Var(i)));
        }
        GTerm::Rec(body) => {
            // [proj-rec]
            let body = *body;
            let projected = project_interned(interner, memo, body, role)?;
            return if mu_would_be_unguarded(interner, projected) {
                // The participant plays no part in the loop body: its view of
                // the protocol is the terminated one.
                Ok(interner.mk_local(LTerm::End))
            } else if interner.local_free_mask(projected) & 1 == 0 {
                // The bound variable never occurs (the participant leaves the
                // loop on every path), so the binder is dropped; outer
                // indices are re-aligned by the substitution.
                let end = interner.mk_local(LTerm::End);
                Ok(interner.subst_local(projected, 0, end))
            } else {
                Ok(interner.mk_local(LTerm::Rec(projected)))
            };
        }
        GTerm::Msg { from, to, branches } => (*from, *to, branches.len()),
    };
    if role == from || role == to {
        // [proj-send] / [proj-recv]
        let GTerm::Msg { branches, .. } = interner.global(t).clone() else {
            unreachable!("header said Msg");
        };
        let bs = project_branches(interner, memo, &branches, role)?;
        return Ok(interner.mk_local(if role == from {
            LTerm::Send { to, branches: bs }
        } else {
            LTerm::Recv { from, branches: bs }
        }));
    }
    // [proj-cont]: all branches must prescribe the same behaviour for `role`
    // (plain merge) — an id comparison on interned projections.
    let branch_cont = |interner: &Interner, i: usize| -> TypeId {
        let GTerm::Msg { branches, .. } = interner.global(t) else {
            unreachable!("header said Msg");
        };
        branches[i].cont
    };
    let c0 = branch_cont(interner, 0);
    let first = project_interned(interner, memo, c0, role)?;
    for i in 1..n_branches {
        let ci = branch_cont(interner, i);
        let other = project_interned(interner, memo, ci, role)?;
        if other != first {
            let from = interner.role(from).clone();
            let to = interner.role(to).clone();
            let first = interner.resolve_local(first);
            let other = interner.resolve_local(other);
            return Err(Error::NotProjectable {
                role: interner.role(role).clone(),
                reason: format!(
                    "branches of {from}->{to} prescribe different behaviours \
                     for a participant not involved in the choice: `{first}` \
                     versus `{other}`"
                ),
            });
        }
    }
    Ok(first)
}

fn project_branches(
    interner: &mut Interner,
    memo: &mut ProjectMemo,
    branches: &[IBranch<TypeId>],
    role: RoleId,
) -> Result<std::sync::Arc<[IBranch<LTypeId>]>> {
    branches
        .iter()
        .map(|b| {
            Ok(IBranch {
                label: b.label,
                sort: b.sort,
                cont: project_interned(interner, memo, b.cont, role)?,
            })
        })
        .collect::<Result<Vec<_>>>()
        .map(Into::into)
}

/// Would `mu X. body` be unguarded? True when `body` is a (possibly
/// `mu`-wrapped) bare variable, which happens exactly when the participant
/// does not occur in the loop.
fn mu_would_be_unguarded(interner: &Interner, body: LTypeId) -> bool {
    match interner.local(body) {
        LTerm::Var(_) => true,
        LTerm::Rec(inner) => mu_would_be_unguarded(interner, *inner),
        _ => false,
    }
}

/// Projects a global type onto every one of its participants, returning the
/// pairs in the participants' natural order.
///
/// This is the underlying operation of the DSL's `\project` notation (§5.1):
/// it fails if the protocol is not projectable onto *some* participant.
///
/// The protocol is validated and interned once; each role then projects with
/// its own dense memo table (the memo is keyed per subterm, so it is valid
/// for exactly one role), making the cost one traversal per role over
/// *distinct* subterms rather than one traversal per role per occurrence.
///
/// # Errors
///
/// See [`project`].
pub fn project_all(global: &GlobalType) -> Result<Vec<(Role, LocalType)>> {
    if use_boxed_path(global) {
        global.well_formed()?;
        return global
            .participants()
            .into_iter()
            .map(|role| {
                let local = project_boxed(global, &role)?;
                Ok((role, local))
            })
            .collect();
    }
    let mut interner = Interner::new();
    let root = interner.intern_global(global);
    interner.well_formed_global(root)?;
    // The participants are the interned participant set of the root, read
    // back in the customary sorted order.
    let mut participants: Vec<(Role, RoleId)> = interner
        .global_parts(root)
        .iter()
        .map(|i| (interner.roles()[i].clone(), RoleId(i as u32)))
        .collect();
    participants.sort_by(|(a, _), (b, _)| a.cmp(b));
    let mut out = Vec::new();
    for (role, role_id) in participants {
        let mut memo = ProjectMemo::for_interner(&interner);
        let projected = project_interned(&mut interner, &mut memo, root, role_id)?;
        let local = interner.resolve_local(projected);
        out.push((role, local));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::branch::Branch;
    use crate::common::label::Label;
    use crate::common::sort::Sort;

    fn r(name: &str) -> Role {
        Role::new(name)
    }
    fn l(name: &str) -> Label {
        Label::new(name)
    }

    /// The ring protocol of §2.3.
    fn ring() -> GlobalType {
        GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(
                r("Bob"),
                r("Carol"),
                "l",
                Sort::Nat,
                GlobalType::msg1(r("Carol"), r("Alice"), "l", Sort::Nat, GlobalType::End),
            ),
        )
    }

    #[test]
    fn ring_projects_onto_alice_as_in_section_2_3() {
        // L = ![Bob];l(nat). ?[Carol];l(nat). end
        let expected = LocalType::send1(
            r("Bob"),
            "l",
            Sort::Nat,
            LocalType::recv1(r("Carol"), "l", Sort::Nat, LocalType::End),
        );
        assert_eq!(project(&ring(), &r("Alice")).unwrap(), expected);
    }

    #[test]
    fn ring_projects_onto_bob_and_carol() {
        let bob = project(&ring(), &r("Bob")).unwrap();
        assert_eq!(
            bob,
            LocalType::recv1(
                r("Alice"),
                "l",
                Sort::Nat,
                LocalType::send1(r("Carol"), "l", Sort::Nat, LocalType::End)
            )
        );
        let carol = project(&ring(), &r("Carol")).unwrap();
        assert_eq!(
            carol,
            LocalType::recv1(
                r("Bob"),
                "l",
                Sort::Nat,
                LocalType::send1(r("Alice"), "l", Sort::Nat, LocalType::End)
            )
        );
    }

    #[test]
    fn projection_onto_non_participant_is_end() {
        assert_eq!(project(&ring(), &r("Nobody")).unwrap(), LocalType::End);
    }

    #[test]
    fn example_3_5_projectable_variant() {
        // Both branches give Carol the same behaviour (receive a nat from
        // Bob), so projection succeeds and equals ?[Bob];l(nat).end.
        let to_carol = GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::End);
        let g = GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (l("l1"), Sort::Nat, to_carol.clone()),
                (l("l2"), Sort::Bool, to_carol),
            ],
        );
        assert_eq!(
            project(&g, &r("Carol")).unwrap(),
            LocalType::recv1(r("Bob"), "l", Sort::Nat, LocalType::End)
        );
    }

    #[test]
    fn example_3_5_unprojectable_variant() {
        // In one branch Carol hears from Bob, in the other from Alice: the
        // merge fails ([proj-cont]).
        let g_prime = GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (
                    l("l1"),
                    Sort::Nat,
                    GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
                (
                    l("l2"),
                    Sort::Nat,
                    GlobalType::msg1(r("Alice"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
            ],
        );
        assert!(matches!(
            project(&g_prime, &r("Carol")),
            Err(Error::NotProjectable { .. })
        ));
        // It still projects fine onto the roles involved in the choice.
        assert!(project(&g_prime, &r("Alice")).is_ok());
        assert!(project(&g_prime, &r("Bob")).is_ok());
    }

    #[test]
    fn example_a_19_is_not_inductively_projectable() {
        // G = p -> q : { l0(nat). G0, l1(nat). G1 } with
        // G0 = mu X. p -> r : l(nat). X and G1 = p -> r : l(nat). G0:
        // the branches project onto r to syntactically different (although
        // unravelling-equivalent) local types, so inductive projection fails.
        let g0 = GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("r"),
            "l",
            Sort::Nat,
            GlobalType::var(0),
        ));
        let g1 = GlobalType::msg1(r("p"), r("r"), "l", Sort::Nat, g0.clone());
        let g = GlobalType::msg(
            r("p"),
            r("q"),
            vec![(l("l0"), Sort::Nat, g0), (l("l1"), Sort::Nat, g1)],
        );
        assert!(matches!(
            project(&g, &r("r")),
            Err(Error::NotProjectable { .. })
        ));
    }

    #[test]
    fn recursive_pipeline_projects_onto_all_roles() {
        // pipeline = mu X. Alice -> Bob : l(nat). Bob -> Carol : l(nat). X (§5.1)
        let pipeline = GlobalType::rec(GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::var(0)),
        ));
        let alice = project(&pipeline, &r("Alice")).unwrap();
        let bob = project(&pipeline, &r("Bob")).unwrap();
        let carol = project(&pipeline, &r("Carol")).unwrap();
        assert_eq!(
            alice,
            LocalType::rec(LocalType::send1(r("Bob"), "l", Sort::Nat, LocalType::var(0)))
        );
        assert_eq!(
            bob,
            LocalType::rec(LocalType::recv1(
                r("Alice"),
                "l",
                Sort::Nat,
                LocalType::send1(r("Carol"), "l", Sort::Nat, LocalType::var(0))
            ))
        );
        assert_eq!(
            carol,
            LocalType::rec(LocalType::recv1(r("Bob"), "l", Sort::Nat, LocalType::var(0)))
        );
    }

    #[test]
    fn participant_outside_a_loop_projects_to_end() {
        // mu X. p -> q : l(nat). X projected onto r is end (r is not part of
        // the protocol at all).
        let g = GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::var(0),
        ));
        assert_eq!(project(&g, &r("r")).unwrap(), LocalType::End);
    }

    #[test]
    fn projections_of_well_formed_types_are_well_formed() {
        for role in ["Alice", "Bob", "Carol"] {
            let p = project(&ring(), &r(role)).unwrap();
            assert!(p.well_formed().is_ok(), "projection onto {role}");
        }
    }

    #[test]
    fn project_all_lists_every_participant() {
        let all = project_all(&ring()).unwrap();
        let roles: Vec<_> = all.iter().map(|(role, _)| role.name().to_owned()).collect();
        assert_eq!(roles, ["Alice", "Bob", "Carol"]);
    }

    #[test]
    fn ill_formed_inputs_are_rejected() {
        let bad = GlobalType::rec(GlobalType::var(0));
        assert!(project(&bad, &r("p")).is_err());
    }

    /// The boxed and interned paths are the same function: compare them
    /// directly (the public API routes by size, so this forces both) on the
    /// named protocols, the scaling families and random protocols.
    #[test]
    fn boxed_and_interned_projections_agree() {
        let mut protocols = vec![
            ring(),
            crate::generators::pipeline(),
            crate::generators::ping_pong(),
            crate::generators::two_buyer(),
            crate::generators::ring_n(16),
            crate::generators::chain_n(16),
            crate::generators::fanout_n(16),
            crate::generators::branching(4),
        ];
        for seed in 0..64 {
            protocols.push(crate::generators::random_global(
                seed,
                &crate::generators::RandomProtocol::default(),
            ));
        }
        for g in protocols {
            let mut interner = Interner::new();
            let root = interner.intern_global(&g);
            interner.well_formed_global(root).unwrap();
            for role in g.participants() {
                let role_id = interner.role_id(&role);
                let mut memo = ProjectMemo::for_interner(&interner);
                let interned = project_interned(&mut interner, &mut memo, root, role_id)
                    .map(|id| interner.resolve_local(id));
                let boxed = project_boxed(&g, &role);
                assert_eq!(
                    interned.is_ok(),
                    boxed.is_ok(),
                    "projectability of {g} onto {role} differs between paths"
                );
                if let (Ok(a), Ok(b)) = (interned, boxed) {
                    assert_eq!(a, b, "projection of {g} onto {role} differs between paths");
                }
            }
        }
    }

    #[test]
    fn two_buyer_projects_onto_b_as_in_figure_10() {
        // two_buyer = A -> S : ItemId(nat). S -> A : Quote(nat).
        //             S -> B : Quote(nat). A -> B : Propose(nat).
        //             B -> S : { Accept(nat). S -> B : Date(nat). end
        //                      ; Reject(unit). end }
        let b_chooses = GlobalType::msg(
            r("B"),
            r("S"),
            vec![
                (
                    l("Accept"),
                    Sort::Nat,
                    GlobalType::msg1(r("S"), r("B"), "Date", Sort::Nat, GlobalType::End),
                ),
                (l("Reject"), Sort::Unit, GlobalType::End),
            ],
        );
        let two_buyer = GlobalType::msg1(
            r("A"),
            r("S"),
            "ItemId",
            Sort::Nat,
            GlobalType::msg1(
                r("S"),
                r("A"),
                "Quote",
                Sort::Nat,
                GlobalType::msg1(
                    r("S"),
                    r("B"),
                    "Quote",
                    Sort::Nat,
                    GlobalType::msg1(r("A"), r("B"), "Propose", Sort::Nat, b_chooses),
                ),
            ),
        );
        let blt = project(&two_buyer, &r("B")).unwrap();
        let expected = LocalType::recv1(
            r("S"),
            "Quote",
            Sort::Nat,
            LocalType::recv1(
                r("A"),
                "Propose",
                Sort::Nat,
                LocalType::Send {
                    to: r("S"),
                    branches: vec![
                        Branch::new(
                            "Accept",
                            Sort::Nat,
                            LocalType::recv1(r("S"), "Date", Sort::Nat, LocalType::End),
                        ),
                        Branch::new("Reject", Sort::Unit, LocalType::End),
                    ],
                },
            ),
        );
        assert_eq!(blt, expected);
    }
}
