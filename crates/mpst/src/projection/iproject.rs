//! Inductive projection of global types onto participants
//! (Definition 3.4 / A.15, Figure 3a, `Projection/IProject.v`).

use crate::common::branch::Branch;
use crate::common::role::Role;
use crate::error::{Error, Result};
use crate::global::syntax::GlobalType;
use crate::local::syntax::LocalType;

/// Projects a global type onto a participant, following Figure 3a.
///
/// Projection is a *partial* function: it fails (with
/// [`Error::NotProjectable`]) when the behaviour of `role` cannot be read off
/// the global type — most importantly when, in a choice `role` is not part
/// of, the branches prescribe different behaviours for `role` (rule
/// `[proj-cont]` requires all branch projections to be equal; this is the
/// "plain merge" of the MPST literature).
///
/// One deviation from the paper's Figure 3a is made for recursion, following
/// common practice in the MPST literature: when the body of a `mu` projects
/// to a type in which the bound variable can only occur unguarded (i.e. the
/// participant takes no part in the loop), the projection is `end` rather
/// than an unguarded — hence ill-formed — recursive type. This agrees with
/// the coinductive projection, which maps non-participants to `end_c`
/// (`[co-proj-end]`).
///
/// # Errors
///
/// * [`Error::NotProjectable`] if one of the projection rules fails;
/// * any well-formedness error of the input type.
///
/// # Examples
///
/// Example 3.5 of the paper: the second global type projects onto `Carol`,
/// the first does not.
///
/// ```
/// use zooid_mpst::global::GlobalType;
/// use zooid_mpst::projection::project;
/// use zooid_mpst::{Label, Role, Sort};
///
/// let alice = Role::new("Alice");
/// let bob = Role::new("Bob");
/// let carol = Role::new("Carol");
/// let to_carol = || GlobalType::msg1(bob.clone(), carol.clone(), "l", Sort::Nat, GlobalType::End);
///
/// // G: both branches give Carol the same behaviour — projectable.
/// let g = GlobalType::msg(alice.clone(), bob.clone(), vec![
///     (Label::new("l1"), Sort::Nat, to_carol()),
///     (Label::new("l2"), Sort::Bool, to_carol()),
/// ]);
/// assert!(project(&g, &carol).is_ok());
///
/// // G': the branches disagree on who contacts Carol — not projectable.
/// let g_prime = GlobalType::msg(alice.clone(), bob.clone(), vec![
///     (Label::new("l1"), Sort::Nat, to_carol()),
///     (Label::new("l2"), Sort::Nat,
///      GlobalType::msg1(alice.clone(), carol.clone(), "l", Sort::Nat, GlobalType::End)),
/// ]);
/// assert!(project(&g_prime, &carol).is_err());
/// ```
pub fn project(global: &GlobalType, role: &Role) -> Result<LocalType> {
    global.well_formed()?;
    project_rec(global, role)
}

fn project_rec(global: &GlobalType, role: &Role) -> Result<LocalType> {
    match global {
        // [proj-end]
        GlobalType::End => Ok(LocalType::End),
        // [proj-var]
        GlobalType::Var(i) => Ok(LocalType::Var(*i)),
        // [proj-rec]
        GlobalType::Rec(body) => {
            let projected = project_rec(body, role)?;
            if mu_would_be_unguarded(&projected) {
                // The participant plays no part in the loop body: its view of
                // the protocol is the terminated one.
                Ok(LocalType::End)
            } else if !projected.free_vars().contains(&0) {
                // The bound variable never occurs (the participant leaves the
                // loop on every path), so the binder is dropped; outer
                // indices are re-aligned by the substitution.
                Ok(projected.subst_top(&LocalType::End))
            } else {
                Ok(LocalType::rec(projected))
            }
        }
        GlobalType::Msg { from, to, branches } => {
            if role == from {
                // [proj-send]
                let bs = project_branches(branches, role)?;
                Ok(LocalType::Send {
                    to: to.clone(),
                    branches: bs,
                })
            } else if role == to {
                // [proj-recv]
                let bs = project_branches(branches, role)?;
                Ok(LocalType::Recv {
                    from: from.clone(),
                    branches: bs,
                })
            } else {
                // [proj-cont]: all branches must prescribe the same behaviour
                // for `role` (plain merge).
                let mut projections = branches
                    .iter()
                    .map(|b| project_rec(&b.cont, role))
                    .collect::<Result<Vec<_>>>()?;
                let first = projections.swap_remove(0);
                for other in &projections {
                    if other != &first {
                        return Err(Error::NotProjectable {
                            role: role.clone(),
                            reason: format!(
                                "branches of {from}->{to} prescribe different behaviours \
                                 for a participant not involved in the choice: `{first}` \
                                 versus `{other}`"
                            ),
                        });
                    }
                }
                Ok(first)
            }
        }
    }
}

fn project_branches(
    branches: &[Branch<GlobalType>],
    role: &Role,
) -> Result<Vec<Branch<LocalType>>> {
    branches
        .iter()
        .map(|b| {
            Ok(Branch {
                label: b.label.clone(),
                sort: b.sort.clone(),
                cont: project_rec(&b.cont, role)?,
            })
        })
        .collect()
}

/// Would `mu X. body` be unguarded? True when `body` is a (possibly
/// `mu`-wrapped) bare variable, which happens exactly when the participant
/// does not occur in the loop.
fn mu_would_be_unguarded(body: &LocalType) -> bool {
    match body {
        LocalType::Var(_) => true,
        LocalType::Rec(inner) => mu_would_be_unguarded(inner),
        _ => false,
    }
}

/// Projects a global type onto every one of its participants, returning the
/// pairs in the participants' natural order.
///
/// This is the underlying operation of the DSL's `\project` notation (§5.1):
/// it fails if the protocol is not projectable onto *some* participant.
///
/// # Errors
///
/// See [`project`].
pub fn project_all(global: &GlobalType) -> Result<Vec<(Role, LocalType)>> {
    global
        .participants()
        .into_iter()
        .map(|role| {
            let local = project(global, &role)?;
            Ok((role, local))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::label::Label;
    use crate::common::sort::Sort;

    fn r(name: &str) -> Role {
        Role::new(name)
    }
    fn l(name: &str) -> Label {
        Label::new(name)
    }

    /// The ring protocol of §2.3.
    fn ring() -> GlobalType {
        GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(
                r("Bob"),
                r("Carol"),
                "l",
                Sort::Nat,
                GlobalType::msg1(r("Carol"), r("Alice"), "l", Sort::Nat, GlobalType::End),
            ),
        )
    }

    #[test]
    fn ring_projects_onto_alice_as_in_section_2_3() {
        // L = ![Bob];l(nat). ?[Carol];l(nat). end
        let expected = LocalType::send1(
            r("Bob"),
            "l",
            Sort::Nat,
            LocalType::recv1(r("Carol"), "l", Sort::Nat, LocalType::End),
        );
        assert_eq!(project(&ring(), &r("Alice")).unwrap(), expected);
    }

    #[test]
    fn ring_projects_onto_bob_and_carol() {
        let bob = project(&ring(), &r("Bob")).unwrap();
        assert_eq!(
            bob,
            LocalType::recv1(
                r("Alice"),
                "l",
                Sort::Nat,
                LocalType::send1(r("Carol"), "l", Sort::Nat, LocalType::End)
            )
        );
        let carol = project(&ring(), &r("Carol")).unwrap();
        assert_eq!(
            carol,
            LocalType::recv1(
                r("Bob"),
                "l",
                Sort::Nat,
                LocalType::send1(r("Alice"), "l", Sort::Nat, LocalType::End)
            )
        );
    }

    #[test]
    fn projection_onto_non_participant_is_end() {
        assert_eq!(project(&ring(), &r("Nobody")).unwrap(), LocalType::End);
    }

    #[test]
    fn example_3_5_projectable_variant() {
        // Both branches give Carol the same behaviour (receive a nat from
        // Bob), so projection succeeds and equals ?[Bob];l(nat).end.
        let to_carol = GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::End);
        let g = GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (l("l1"), Sort::Nat, to_carol.clone()),
                (l("l2"), Sort::Bool, to_carol),
            ],
        );
        assert_eq!(
            project(&g, &r("Carol")).unwrap(),
            LocalType::recv1(r("Bob"), "l", Sort::Nat, LocalType::End)
        );
    }

    #[test]
    fn example_3_5_unprojectable_variant() {
        // In one branch Carol hears from Bob, in the other from Alice: the
        // merge fails ([proj-cont]).
        let g_prime = GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (
                    l("l1"),
                    Sort::Nat,
                    GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
                (
                    l("l2"),
                    Sort::Nat,
                    GlobalType::msg1(r("Alice"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
            ],
        );
        assert!(matches!(
            project(&g_prime, &r("Carol")),
            Err(Error::NotProjectable { .. })
        ));
        // It still projects fine onto the roles involved in the choice.
        assert!(project(&g_prime, &r("Alice")).is_ok());
        assert!(project(&g_prime, &r("Bob")).is_ok());
    }

    #[test]
    fn example_a_19_is_not_inductively_projectable() {
        // G = p -> q : { l0(nat). G0, l1(nat). G1 } with
        // G0 = mu X. p -> r : l(nat). X and G1 = p -> r : l(nat). G0:
        // the branches project onto r to syntactically different (although
        // unravelling-equivalent) local types, so inductive projection fails.
        let g0 = GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("r"),
            "l",
            Sort::Nat,
            GlobalType::var(0),
        ));
        let g1 = GlobalType::msg1(r("p"), r("r"), "l", Sort::Nat, g0.clone());
        let g = GlobalType::msg(
            r("p"),
            r("q"),
            vec![(l("l0"), Sort::Nat, g0), (l("l1"), Sort::Nat, g1)],
        );
        assert!(matches!(
            project(&g, &r("r")),
            Err(Error::NotProjectable { .. })
        ));
    }

    #[test]
    fn recursive_pipeline_projects_onto_all_roles() {
        // pipeline = mu X. Alice -> Bob : l(nat). Bob -> Carol : l(nat). X (§5.1)
        let pipeline = GlobalType::rec(GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::var(0)),
        ));
        let alice = project(&pipeline, &r("Alice")).unwrap();
        let bob = project(&pipeline, &r("Bob")).unwrap();
        let carol = project(&pipeline, &r("Carol")).unwrap();
        assert_eq!(
            alice,
            LocalType::rec(LocalType::send1(r("Bob"), "l", Sort::Nat, LocalType::var(0)))
        );
        assert_eq!(
            bob,
            LocalType::rec(LocalType::recv1(
                r("Alice"),
                "l",
                Sort::Nat,
                LocalType::send1(r("Carol"), "l", Sort::Nat, LocalType::var(0))
            ))
        );
        assert_eq!(
            carol,
            LocalType::rec(LocalType::recv1(r("Bob"), "l", Sort::Nat, LocalType::var(0)))
        );
    }

    #[test]
    fn participant_outside_a_loop_projects_to_end() {
        // mu X. p -> q : l(nat). X projected onto r is end (r is not part of
        // the protocol at all).
        let g = GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::var(0),
        ));
        assert_eq!(project(&g, &r("r")).unwrap(), LocalType::End);
    }

    #[test]
    fn projections_of_well_formed_types_are_well_formed() {
        for role in ["Alice", "Bob", "Carol"] {
            let p = project(&ring(), &r(role)).unwrap();
            assert!(p.well_formed().is_ok(), "projection onto {role}");
        }
    }

    #[test]
    fn project_all_lists_every_participant() {
        let all = project_all(&ring()).unwrap();
        let roles: Vec<_> = all.iter().map(|(role, _)| role.name().to_owned()).collect();
        assert_eq!(roles, ["Alice", "Bob", "Carol"]);
    }

    #[test]
    fn ill_formed_inputs_are_rejected() {
        let bad = GlobalType::rec(GlobalType::var(0));
        assert!(project(&bad, &r("p")).is_err());
    }

    #[test]
    fn two_buyer_projects_onto_b_as_in_figure_10() {
        // two_buyer = A -> S : ItemId(nat). S -> A : Quote(nat).
        //             S -> B : Quote(nat). A -> B : Propose(nat).
        //             B -> S : { Accept(nat). S -> B : Date(nat). end
        //                      ; Reject(unit). end }
        let b_chooses = GlobalType::msg(
            r("B"),
            r("S"),
            vec![
                (
                    l("Accept"),
                    Sort::Nat,
                    GlobalType::msg1(r("S"), r("B"), "Date", Sort::Nat, GlobalType::End),
                ),
                (l("Reject"), Sort::Unit, GlobalType::End),
            ],
        );
        let two_buyer = GlobalType::msg1(
            r("A"),
            r("S"),
            "ItemId",
            Sort::Nat,
            GlobalType::msg1(
                r("S"),
                r("A"),
                "Quote",
                Sort::Nat,
                GlobalType::msg1(
                    r("S"),
                    r("B"),
                    "Quote",
                    Sort::Nat,
                    GlobalType::msg1(r("A"), r("B"), "Propose", Sort::Nat, b_chooses),
                ),
            ),
        );
        let blt = project(&two_buyer, &r("B")).unwrap();
        let expected = LocalType::recv1(
            r("S"),
            "Quote",
            Sort::Nat,
            LocalType::recv1(
                r("A"),
                "Propose",
                Sort::Nat,
                LocalType::Send {
                    to: r("S"),
                    branches: vec![
                        Branch::new(
                            "Accept",
                            Sort::Nat,
                            LocalType::recv1(r("S"), "Date", Sort::Nat, LocalType::End),
                        ),
                        Branch::new("Reject", Sort::Unit, LocalType::End),
                    ],
                },
            ),
        );
        assert_eq!(blt, expected);
    }
}
