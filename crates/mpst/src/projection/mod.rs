//! Projection of global types and trees onto participants
//! (§3.2–3.3, `Projection/` in the Coq development).
//!
//! * [`iproject`] — the inductive, partial projection of global *types*
//!   (Definition 3.4, Figure 3a);
//! * [`cproject`] — the coinductive projection of global *trees* and of
//!   execution prefixes (Definition 3.4, Figure 3b), both as a computation and
//!   as a checkable relation;
//! * [`qproject`] — the projection of execution prefixes onto queue
//!   environments (Definition 3.8);
//! * [`eproject`] — environment projection and the one-shot projection of a
//!   configuration (Definitions 3.10 and 3.11);
//! * [`correctness`] — the executable counterpart of Theorem 3.6
//!   (*unravelling preserves projections*).

pub mod correctness;
pub mod cproject;
pub mod eproject;
pub mod iproject;
pub mod qproject;

pub use correctness::{unravelling_preserves_all_projections, unravelling_preserves_projection};
pub use cproject::{
    cproject, is_cprojection, is_cprojection_at, is_prefix_cprojection, prefix_part_of,
};
pub use eproject::{eproject, one_shot_projection, one_shot_projection_holds};
pub use iproject::{project, project_all};
pub use qproject::qproject;
