//! Coinductive projection of global trees (and execution prefixes) onto
//! participants (Definition 3.4 / A.17, Figure 3b, `Projection/CProject.v`).
//!
//! The paper defines projection on trees as a *coinductive relation*
//! `Gc ↾c r Lc`. On the finite graph representation used here that relation
//! is decidable, and we expose it in two forms:
//!
//! * [`is_cprojection`] / [`is_prefix_cprojection`] — the relation itself, as
//!   a checker (a greatest-fixpoint computation over pairs of nodes);
//! * [`cproject`] — a *computation* of the projection: it constructs a
//!   candidate local tree and then validates it with the checker, returning
//!   [`Error::NotProjectable`] when the protocol has no projection onto the
//!   participant.


use crate::common::intern::{FxHashMap, FxHashSet};

use crate::common::arena::NodeId;
use crate::common::branch::Branch;
use crate::common::role::Role;
use crate::error::{Error, Result};
use crate::global::prefix::GlobalPrefix;
use crate::global::tree::{GlobalTree, GlobalTreeNode};
use crate::local::tree::{LocalTree, LocalTreeNode};

/// Decides the coinductive projection relation `Gc ↾c r Lc` between the root
/// of `tree` and the root of `local`.
///
/// # Examples
///
/// ```
/// use zooid_mpst::global::{unravel_global, GlobalType};
/// use zooid_mpst::local::{unravel_local, LocalType};
/// use zooid_mpst::projection::{cproject, is_cprojection};
/// use zooid_mpst::{Role, Sort};
///
/// let g = GlobalType::msg1(Role::new("p"), Role::new("q"), "l", Sort::Nat, GlobalType::End);
/// let gt = unravel_global(&g).unwrap();
/// let lt = unravel_local(&LocalType::send1(Role::new("q"), "l", Sort::Nat, LocalType::End)).unwrap();
/// assert!(is_cprojection(&gt, &Role::new("p"), &lt));
/// assert_eq!(cproject(&gt, &Role::new("p")).unwrap().len(), lt.len());
/// ```
pub fn is_cprojection(tree: &GlobalTree, role: &Role, local: &LocalTree) -> bool {
    is_cprojection_at(tree, tree.root(), role, local, local.root())
}

/// Decides the coinductive projection relation between an arbitrary node of
/// `tree` and an arbitrary node of `local`.
pub fn is_cprojection_at(
    tree: &GlobalTree,
    gnode: NodeId,
    role: &Role,
    local: &LocalTree,
    lnode: NodeId,
) -> bool {
    let mut assumed = FxHashSet::default();
    let ridx = tree.role_index(role);
    check_tree(tree, gnode, role, ridx, local, lnode, &mut assumed)
}

/// Decides the coinductive projection relation between an execution prefix
/// (the paper's `ig_ty`, with possibly in-flight messages) and a position
/// `lnode` in the local tree `local`.
///
/// The additional rules for in-flight messages are `[co-proj-send-2]` (the
/// projection of everyone but the receiver is the projection of the selected
/// continuation) and `[co-proj-recv-2]` (the receiver still sees the full
/// external choice).
pub fn is_prefix_cprojection(
    tree: &GlobalTree,
    prefix: &GlobalPrefix,
    role: &Role,
    local: &LocalTree,
    lnode: NodeId,
) -> bool {
    let mut assumed = FxHashSet::default();
    let ridx = tree.role_index(role);
    check_prefix(tree, prefix, role, ridx, local, lnode, &mut assumed)
}

fn check_tree(
    tree: &GlobalTree,
    g: NodeId,
    role: &Role,
    ridx: Option<usize>,
    local: &LocalTree,
    l: NodeId,
    assumed: &mut FxHashSet<(NodeId, NodeId)>,
) -> bool {
    if !assumed.insert((g, l)) {
        return true;
    }
    // [co-proj-end]: non-participants project to end_c.
    if !ridx.is_some_and(|i| tree.part_of_index(i, g)) {
        return local.node(l).is_end();
    }
    match tree.node(g) {
        GlobalTreeNode::End => false, // part_of never holds at end_c
        GlobalTreeNode::Msg { from, to, branches } => {
            if role == from {
                // [co-proj-send-1]
                match local.node(l) {
                    LocalTreeNode::Send {
                        to: lto,
                        branches: lbs,
                    } if lto == to => {
                        branches_correspond(tree, branches, role, ridx, local, lbs, assumed)
                    }
                    _ => false,
                }
            } else if role == to {
                // [co-proj-recv-1]
                match local.node(l) {
                    LocalTreeNode::Recv {
                        from: lfrom,
                        branches: lbs,
                    } if lfrom == from => {
                        branches_correspond(tree, branches, role, ridx, local, lbs, assumed)
                    }
                    _ => false,
                }
            } else {
                // [co-proj-cont]: every continuation involves the role and
                // projects to the *same* local behaviour.
                branches.iter().all(|b| {
                    ridx.is_some_and(|i| tree.part_of_index(i, b.cont))
                        && check_tree(tree, b.cont, role, ridx, local, l, assumed)
                })
            }
        }
    }
}

fn branches_correspond(
    tree: &GlobalTree,
    gbranches: &[Branch<NodeId>],
    role: &Role,
    ridx: Option<usize>,
    local: &LocalTree,
    lbranches: &[Branch<NodeId>],
    assumed: &mut FxHashSet<(NodeId, NodeId)>,
) -> bool {
    if gbranches.len() != lbranches.len() {
        return false;
    }
    gbranches.iter().all(|gb| {
        lbranches
            .iter()
            .find(|lb| lb.label == gb.label)
            .is_some_and(|lb| {
                lb.sort == gb.sort
                    && check_tree(tree, gb.cont, role, ridx, local, lb.cont, assumed)
            })
    })
}

fn check_prefix(
    tree: &GlobalTree,
    prefix: &GlobalPrefix,
    role: &Role,
    ridx: Option<usize>,
    local: &LocalTree,
    l: NodeId,
    assumed: &mut FxHashSet<(NodeId, NodeId)>,
) -> bool {
    if !prefix_part_of_idx(tree, prefix, role, ridx) {
        return local.node(l).is_end();
    }
    match prefix {
        GlobalPrefix::Inj(g) => check_tree(tree, *g, role, ridx, local, l, assumed),
        GlobalPrefix::Msg { from, to, branches } => {
            if role == from {
                match local.node(l) {
                    LocalTreeNode::Send {
                        to: lto,
                        branches: lbs,
                    } if lto == to => {
                        prefix_branches_correspond(tree, branches, role, ridx, local, lbs, assumed)
                    }
                    _ => false,
                }
            } else if role == to {
                match local.node(l) {
                    LocalTreeNode::Recv {
                        from: lfrom,
                        branches: lbs,
                    } if lfrom == from => {
                        prefix_branches_correspond(tree, branches, role, ridx, local, lbs, assumed)
                    }
                    _ => false,
                }
            } else {
                branches.iter().all(|b| {
                    prefix_part_of_idx(tree, &b.cont, role, ridx)
                        && check_prefix(tree, &b.cont, role, ridx, local, l, assumed)
                })
            }
        }
        GlobalPrefix::Sent {
            from,
            to,
            selected,
            branches,
        } => {
            if role == to {
                // [co-proj-recv-2]
                match local.node(l) {
                    LocalTreeNode::Recv {
                        from: lfrom,
                        branches: lbs,
                    } if lfrom == from => {
                        prefix_branches_correspond(tree, branches, role, ridx, local, lbs, assumed)
                    }
                    _ => false,
                }
            } else {
                // [co-proj-send-2]
                check_prefix(tree, &branches[*selected].cont, role, ridx, local, l, assumed)
            }
        }
    }
}

fn prefix_branches_correspond(
    tree: &GlobalTree,
    gbranches: &[Branch<GlobalPrefix>],
    role: &Role,
    ridx: Option<usize>,
    local: &LocalTree,
    lbranches: &[Branch<NodeId>],
    assumed: &mut FxHashSet<(NodeId, NodeId)>,
) -> bool {
    if gbranches.len() != lbranches.len() {
        return false;
    }
    gbranches.iter().all(|gb| {
        lbranches
            .iter()
            .find(|lb| lb.label == gb.label)
            .is_some_and(|lb| {
                lb.sort == gb.sort
                    && check_prefix(tree, &gb.cont, role, ridx, local, lb.cont, assumed)
            })
    })
}

/// The `part_of` predicate lifted from trees to execution prefixes.
pub fn prefix_part_of(tree: &GlobalTree, prefix: &GlobalPrefix, role: &Role) -> bool {
    prefix_part_of_idx(tree, prefix, role, tree.role_index(role))
}

fn prefix_part_of_idx(
    tree: &GlobalTree,
    prefix: &GlobalPrefix,
    role: &Role,
    ridx: Option<usize>,
) -> bool {
    match prefix {
        GlobalPrefix::Inj(g) => ridx.is_some_and(|i| tree.part_of_index(i, *g)),
        GlobalPrefix::Msg { from, to, branches }
        | GlobalPrefix::Sent {
            from, to, branches, ..
        } => {
            from == role
                || to == role
                || branches
                    .iter()
                    .any(|b| prefix_part_of_idx(tree, &b.cont, role, ridx))
        }
    }
}

/// Computes the coinductive projection of `tree` onto `role`.
///
/// The construction first identifies, with a union–find pass, which global
/// nodes must share a projection (the continuations of choices the role does
/// not take part in, rule `[co-proj-cont]`) and which project to `end_c`
/// (rule `[co-proj-end]`); it then builds the candidate local tree and
/// validates it against the relation checker [`is_cprojection`]. Coinductive
/// projection is strictly more permissive than the inductive
/// [`project`](crate::projection::project): Example A.19's global type is
/// projectable here but not there (see the tests).
///
/// # Errors
///
/// [`Error::NotProjectable`] when no local tree satisfies the relation.
pub fn cproject(tree: &GlobalTree, role: &Role) -> Result<LocalTree> {
    let candidate = build_candidate(tree, role)?;
    if is_cprojection(tree, role, &candidate) {
        Ok(candidate)
    } else {
        Err(Error::NotProjectable {
            role: role.clone(),
            reason: "branches of a choice the participant does not take part in prescribe \
                     different behaviours for it"
                .to_owned(),
        })
    }
}

/// Union–find over global nodes (plus one extra class for `end_c`).
struct Classes {
    parent: Vec<usize>,
}

impl Classes {
    fn new(n: usize) -> Self {
        Classes {
            parent: (0..=n).collect(),
        }
    }

    fn end_class(&self) -> usize {
        self.parent.len() - 1
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

fn build_candidate(tree: &GlobalTree, role: &Role) -> Result<LocalTree> {
    let n = tree.len();
    let mut classes = Classes::new(n);
    let end_class = classes.end_class();
    let ridx = tree.role_index(role);

    // Group nodes that must share a projection.
    for (id, node) in tree.iter() {
        if !ridx.is_some_and(|i| tree.part_of_index(i, id)) {
            classes.union(id.index(), end_class);
            continue;
        }
        if let GlobalTreeNode::Msg { from, to, branches } = node {
            if from != role && to != role {
                for b in branches {
                    classes.union(id.index(), b.cont.index());
                }
            }
        }
    }

    // Pick, for every class, the node that determines its local behaviour:
    // a node in which the role is directly involved, or `end_c`.
    let mut representative: FxHashMap<usize, Option<NodeId>> = FxHashMap::default();
    for (id, node) in tree.iter() {
        let class = classes.find(id.index());
        if class == classes.find(end_class) {
            continue;
        }
        let involved = matches!(node, GlobalTreeNode::Msg { from, to, .. } if from == role || to == role);
        let entry = representative.entry(class).or_insert(None);
        if involved && entry.is_none() {
            *entry = Some(id);
        }
    }

    // Build the local arena, one node per reachable class.
    let mut nodes: Vec<LocalTreeNode> = Vec::new();
    let mut class_to_lnode: FxHashMap<usize, NodeId> = FxHashMap::default();
    let root_class = classes.find(tree.root().index());
    let end_root = classes.find(end_class);
    let root_lnode = build_class(
        tree,
        role,
        ridx,
        root_class,
        end_root,
        &mut classes,
        &representative,
        &mut nodes,
        &mut class_to_lnode,
    )?;
    Ok(LocalTree::from_parts(nodes, root_lnode))
}

#[allow(clippy::too_many_arguments)]
fn build_class(
    tree: &GlobalTree,
    role: &Role,
    ridx: Option<usize>,
    class: usize,
    end_root: usize,
    classes: &mut Classes,
    representative: &FxHashMap<usize, Option<NodeId>>,
    nodes: &mut Vec<LocalTreeNode>,
    class_to_lnode: &mut FxHashMap<usize, NodeId>,
) -> Result<NodeId> {
    if let Some(&id) = class_to_lnode.get(&class) {
        return Ok(id);
    }
    let lnode = NodeId::new(nodes.len());
    nodes.push(LocalTreeNode::End);
    class_to_lnode.insert(class, lnode);

    if class == end_root {
        return Ok(lnode); // stays End
    }
    let rep = representative.get(&class).copied().flatten();
    let Some(rep) = rep else {
        // A class of merge nodes with no directly-involved representative:
        // the role takes part somewhere (part_of holds) but the choice can
        // loop without ever reaching it on some branch; such protocols have
        // no projection.
        return Err(Error::NotProjectable {
            role: role.clone(),
            reason: "a choice the participant is not involved in never reaches it on some branch"
                .to_owned(),
        });
    };
    let GlobalTreeNode::Msg { from, to, branches } = tree.node(rep).clone() else {
        unreachable!("representatives are message nodes involving the role");
    };
    let mut lbranches = Vec::with_capacity(branches.len());
    for b in &branches {
        let child_class = {
            let c = classes.find(b.cont.index());
            if !ridx.is_some_and(|i| tree.part_of_index(i, b.cont)) {
                classes.find(end_root)
            } else {
                c
            }
        };
        let child = build_class(
            tree,
            role,
            ridx,
            child_class,
            end_root,
            classes,
            representative,
            nodes,
            class_to_lnode,
        )?;
        lbranches.push(Branch {
            label: b.label.clone(),
            sort: b.sort.clone(),
            cont: child,
        });
    }
    let node = if &from == role {
        LocalTreeNode::Send {
            to,
            branches: lbranches,
        }
    } else {
        LocalTreeNode::Recv {
            from,
            branches: lbranches,
        }
    };
    nodes[lnode.index()] = node;
    Ok(lnode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::label::Label;
    use crate::common::sort::Sort;
    use crate::global::syntax::GlobalType;
    use crate::global::unravel::unravel_global;
    use crate::local::syntax::LocalType;
    use crate::local::unravel::unravel_local;
    use crate::projection::iproject::project;

    fn r(name: &str) -> Role {
        Role::new(name)
    }
    fn l(name: &str) -> Label {
        Label::new(name)
    }

    fn ring() -> GlobalType {
        GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(
                r("Bob"),
                r("Carol"),
                "l",
                Sort::Nat,
                GlobalType::msg1(r("Carol"), r("Alice"), "l", Sort::Nat, GlobalType::End),
            ),
        )
    }

    #[test]
    fn cproject_agrees_with_inductive_projection_on_the_ring() {
        let gt = unravel_global(&ring()).unwrap();
        for role in ["Alice", "Bob", "Carol"] {
            let inductive = unravel_local(&project(&ring(), &r(role)).unwrap()).unwrap();
            let coinductive = cproject(&gt, &r(role)).unwrap();
            assert!(
                inductive.equivalent(&coinductive),
                "projections disagree for {role}"
            );
            assert!(is_cprojection(&gt, &r(role), &inductive));
        }
    }

    #[test]
    fn non_participant_projects_to_end() {
        let gt = unravel_global(&ring()).unwrap();
        let lt = cproject(&gt, &r("Zoe")).unwrap();
        assert!(lt.is_ended());
        assert!(is_cprojection(&gt, &r("Zoe"), &LocalTree::end()));
    }

    #[test]
    fn checker_rejects_wrong_projection() {
        let gt = unravel_global(&ring()).unwrap();
        // Alice's projection given to Bob must be rejected.
        let alice = unravel_local(&project(&ring(), &r("Alice")).unwrap()).unwrap();
        assert!(!is_cprojection(&gt, &r("Bob"), &alice));
        // And the end tree is not a projection for a participant.
        assert!(!is_cprojection(&gt, &r("Alice"), &LocalTree::end()));
    }

    #[test]
    fn example_a_19_is_coinductively_projectable() {
        // G = p -> q : { l0(nat). G0, l1(nat). G1 } where G0 and G1 unravel
        // to the same tree: inductive projection onto r fails (see the
        // iproject tests) but coinductive projection succeeds and gives the
        // infinite ?[p];l(nat) stream.
        let g0 = GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("r"),
            "l",
            Sort::Nat,
            GlobalType::var(0),
        ));
        let g1 = GlobalType::msg1(r("p"), r("r"), "l", Sort::Nat, g0.clone());
        let g = GlobalType::msg(
            r("p"),
            r("q"),
            vec![(l("l0"), Sort::Nat, g0.clone()), (l("l1"), Sort::Nat, g1)],
        );
        let gt = unravel_global(&g).unwrap();
        let proj = cproject(&gt, &r("r")).unwrap();
        let expected = unravel_local(&LocalType::rec(LocalType::recv1(
            r("p"),
            "l",
            Sort::Nat,
            LocalType::var(0),
        )))
        .unwrap();
        assert!(proj.equivalent(&expected));
        assert!(is_cprojection(&gt, &r("r"), &expected));
    }

    #[test]
    fn unprojectable_merge_is_detected() {
        // Example 3.5's G': Carol hears from different senders depending on a
        // choice she does not observe.
        let g_prime = GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (
                    l("l1"),
                    Sort::Nat,
                    GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
                (
                    l("l2"),
                    Sort::Nat,
                    GlobalType::msg1(r("Alice"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
            ],
        );
        let gt = unravel_global(&g_prime).unwrap();
        assert!(matches!(
            cproject(&gt, &r("Carol")),
            Err(Error::NotProjectable { .. })
        ));
    }

    #[test]
    fn merge_requires_every_branch_to_reach_the_participant() {
        // p -> q : { stop(unit). end ; more(nat). p -> r : l(nat). end }:
        // r is part of the protocol but one branch never involves it, so the
        // coinductive merge ([co-proj-cont]) fails for r.
        let g = GlobalType::msg(
            r("p"),
            r("q"),
            vec![
                (l("stop"), Sort::Unit, GlobalType::End),
                (
                    l("more"),
                    Sort::Nat,
                    GlobalType::msg1(r("p"), r("r"), "l", Sort::Nat, GlobalType::End),
                ),
            ],
        );
        let gt = unravel_global(&g).unwrap();
        assert!(cproject(&gt, &r("r")).is_err());
    }

    #[test]
    fn prefix_projection_follows_the_two_asynchronous_stages() {
        // Figure 4: project the three stages of a single exchange onto the
        // sender p and the receiver q.
        let g = GlobalType::msg1(r("p"), r("q"), "l", Sort::Nat, GlobalType::End);
        let gt = unravel_global(&g).unwrap();
        let p_tree = unravel_local(&LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)).unwrap();
        let q_tree = unravel_local(&LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End)).unwrap();
        let ended = LocalTree::end();

        // Stage 1: nothing sent yet.
        let stage1 = GlobalPrefix::initial(&gt);
        assert!(is_prefix_cprojection(&gt, &stage1, &r("p"), &p_tree, p_tree.root()));
        assert!(is_prefix_cprojection(&gt, &stage1, &r("q"), &q_tree, q_tree.root()));

        // Stage 2: message in flight. p has already finished; q still waits.
        let stage2 = match stage1.expand(&gt) {
            GlobalPrefix::Msg { from, to, branches } => GlobalPrefix::Sent {
                from,
                to,
                selected: 0,
                branches,
            },
            _ => unreachable!(),
        };
        assert!(is_prefix_cprojection(&gt, &stage2, &r("p"), &ended, ended.root()));
        assert!(!is_prefix_cprojection(&gt, &stage2, &r("p"), &p_tree, p_tree.root()));
        assert!(is_prefix_cprojection(&gt, &stage2, &r("q"), &q_tree, q_tree.root()));

        // Stage 3: delivered. Both are done.
        let stage3 = GlobalPrefix::Inj(match gt.node(gt.root()) {
            GlobalTreeNode::Msg { branches, .. } => branches[0].cont,
            GlobalTreeNode::End => unreachable!(),
        });
        assert!(is_prefix_cprojection(&gt, &stage3, &r("p"), &ended, ended.root()));
        assert!(is_prefix_cprojection(&gt, &stage3, &r("q"), &ended, ended.root()));
    }

    #[test]
    fn recursive_pipeline_cprojects_onto_all_roles() {
        let pipeline = GlobalType::rec(GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::var(0)),
        ));
        let gt = unravel_global(&pipeline).unwrap();
        for role in ["Alice", "Bob", "Carol"] {
            let via_type = unravel_local(&project(&pipeline, &r(role)).unwrap()).unwrap();
            let via_tree = cproject(&gt, &r(role)).unwrap();
            assert!(via_type.equivalent(&via_tree), "role {role}");
        }
    }
}
