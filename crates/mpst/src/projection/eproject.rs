//! Environment projection and one-shot projection
//! (Definitions 3.10 and 3.11, `Projection/CProject.v` and `Projection.v`).

use crate::error::Result;
use crate::global::prefix::GlobalPrefix;
use crate::global::tree::GlobalTree;
use crate::local::semantics::{Configuration, LocalEnv};
use crate::projection::cproject::{cproject, is_prefix_cprojection};
use crate::projection::qproject::qproject;

/// Computes the environment projection of a global tree: the local
/// environment mapping every participant of the protocol to its coinductive
/// projection (Definition 3.10).
///
/// # Errors
///
/// Fails if the tree is not projectable onto one of its participants.
pub fn eproject(tree: &GlobalTree) -> Result<LocalEnv> {
    let mut env = LocalEnv::new();
    for role in tree.participants() {
        let local = cproject(tree, &role)?;
        env.insert(role, local);
    }
    Ok(env)
}

/// Computes the one-shot projection of a global tree: the initial
/// configuration `(E, ε)` whose environment is the environment projection and
/// whose queues are empty (Definition 3.11 applied to the initial state).
///
/// # Errors
///
/// Fails if the tree is not projectable onto one of its participants.
pub fn one_shot_projection(tree: &GlobalTree) -> Result<Configuration> {
    Ok(Configuration::initial(eproject(tree)?))
}

/// Checks the one-shot projection relation `Gc ↾↾ (E, Q)` between an
/// execution prefix of `tree` and a configuration:
///
/// * every participant's current behaviour in `config.env` is a coinductive
///   projection of the prefix (Definition 3.10 lifted to prefixes), and
/// * the queue contents of `config.queues` are exactly the in-flight messages
///   of the prefix (Definition 3.8).
///
/// This is the relation preserved by the step soundness and completeness
/// theorems (Theorems 3.16 and 3.17); the checkers in
/// [`trace_equiv`](crate::trace_equiv) use it after every step.
pub fn one_shot_projection_holds(
    tree: &GlobalTree,
    prefix: &GlobalPrefix,
    config: &Configuration,
) -> bool {
    let queues_match = match qproject(tree, prefix) {
        Ok(q) => q == config.queues,
        Err(_) => false,
    };
    if !queues_match {
        return false;
    }
    config.env.iter().all(|(role, endpoint)| {
        is_prefix_cprojection(tree, prefix, role, endpoint.tree(), endpoint.current())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::actions::Action;
    use crate::common::label::Label;
    use crate::common::sort::Sort;
    use crate::global::semantics::global_step;
    use crate::global::syntax::GlobalType;
    use crate::global::unravel::unravel_global;
    use crate::local::semantics::local_step;
    use crate::Role;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn ring() -> GlobalType {
        GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(
                r("Bob"),
                r("Carol"),
                "l",
                Sort::Nat,
                GlobalType::msg1(r("Carol"), r("Alice"), "l", Sort::Nat, GlobalType::End),
            ),
        )
    }

    #[test]
    fn eproject_covers_every_participant() {
        let t = unravel_global(&ring()).unwrap();
        let env = eproject(&t).unwrap();
        assert_eq!(env.roles().len(), 3);
        assert!(env.get(&r("Alice")).is_some());
    }

    #[test]
    fn initial_one_shot_projection_holds() {
        let t = unravel_global(&ring()).unwrap();
        let config = one_shot_projection(&t).unwrap();
        assert!(one_shot_projection_holds(
            &t,
            &GlobalPrefix::initial(&t),
            &config
        ));
    }

    #[test]
    fn projection_is_preserved_along_matching_steps() {
        // Example 3.12 -style check: after Alice's send happens on both
        // sides, the one-shot projection still holds; after mismatched steps
        // it does not.
        let t = unravel_global(&ring()).unwrap();
        let config = one_shot_projection(&t).unwrap();
        let prefix = GlobalPrefix::initial(&t);
        let send = Action::send(r("Alice"), r("Bob"), Label::new("l"), Sort::Nat);

        let prefix2 = global_step(&t, &prefix, &send).unwrap();
        let config2 = local_step(&config, &send).unwrap();
        assert!(one_shot_projection_holds(&t, &prefix2, &config2));

        // The new global state no longer corresponds to the *initial*
        // environment (queues differ), nor the old global state to the new
        // environment.
        assert!(!one_shot_projection_holds(&t, &prefix2, &config));
        assert!(!one_shot_projection_holds(&t, &prefix, &config2));
    }

    #[test]
    fn unprojectable_tree_has_no_environment_projection() {
        let g_prime = GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (
                    Label::new("l1"),
                    Sort::Nat,
                    GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
                (
                    Label::new("l2"),
                    Sort::Nat,
                    GlobalType::msg1(r("Alice"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
            ],
        );
        let t = unravel_global(&g_prime).unwrap();
        assert!(eproject(&t).is_err());
        assert!(one_shot_projection(&t).is_err());
    }
}
