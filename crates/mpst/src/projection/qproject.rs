//! Projection of execution prefixes onto queue environments
//! (Definition 3.8 / A.23, `Projection/QProject.v`).

use crate::error::{Error, Result};
use crate::global::prefix::GlobalPrefix;
use crate::global::tree::GlobalTree;
use crate::local::semantics::QueueEnv;

/// Computes the queue environment associated with an execution prefix: one
/// entry per in-flight message, oldest first.
///
/// The rules are:
///
/// * `[q-proj-end]` — a finished protocol has empty queues;
/// * `[q-proj-send]` — a pending (unsent) message adds nothing, and its
///   branches must all agree on the queue contents;
/// * `[q-proj-recv]` — an in-flight message `p ~l~> q` is the *oldest*
///   undelivered message from `p` to `q`; the rest of the queue comes from
///   the selected continuation.
///
/// Unexecuted parts of the protocol ([`GlobalPrefix::Inj`] leaves) contribute
/// nothing, mirroring the Coq development where queue projection is defined
/// inductively on the prefix (Remark A.24).
///
/// # Errors
///
/// [`Error::IllFormed`] if different branches of a pending message would
/// require different queue contents — this never happens for prefixes reached
/// by executing a projectable protocol.
pub fn qproject(tree: &GlobalTree, prefix: &GlobalPrefix) -> Result<QueueEnv> {
    match prefix {
        GlobalPrefix::Inj(_) => Ok(QueueEnv::empty()),
        GlobalPrefix::Msg { from, to, branches } => {
            let mut result: Option<QueueEnv> = None;
            for b in branches {
                let q = qproject(tree, &b.cont)?;
                match &result {
                    None => result = Some(q),
                    Some(prev) if prev == &q => {}
                    Some(_) => {
                        return Err(Error::IllFormed {
                            reason: format!(
                                "branches of the pending message {from}->{to} disagree on the \
                                 in-flight messages"
                            ),
                        })
                    }
                }
            }
            let q = result.unwrap_or_else(QueueEnv::empty);
            if q.peek(from, to).is_some() {
                return Err(Error::IllFormed {
                    reason: format!(
                        "a message from {from} to {to} is in flight although the exchange has \
                         not started"
                    ),
                });
            }
            Ok(q)
        }
        GlobalPrefix::Sent {
            from,
            to,
            selected,
            branches,
        } => {
            let chosen = &branches[*selected];
            let rest = qproject(tree, &chosen.cont)?;
            // The outer message was sent first, so it sits at the head of the
            // queue: rebuild the (from, to) queue with it prepended.
            let mut q = QueueEnv::empty();
            q.enq(from, to, chosen.label.clone(), chosen.sort.clone());
            for ((f, t), msgs) in rest.iter() {
                for (label, sort) in msgs {
                    q.enq(f, t, label.clone(), sort.clone());
                }
            }
            Ok(q)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::actions::Action;
    use crate::common::label::Label;
    use crate::common::sort::Sort;
    use crate::global::semantics::global_step;
    use crate::global::syntax::GlobalType;
    use crate::global::unravel::unravel_global;
    use crate::Role;

    fn r(name: &str) -> Role {
        Role::new(name)
    }
    fn l(name: &str) -> Label {
        Label::new(name)
    }

    #[test]
    fn initial_prefix_has_empty_queues() {
        let g = GlobalType::msg1(r("p"), r("q"), "l", Sort::Nat, GlobalType::End);
        let t = unravel_global(&g).unwrap();
        let q = qproject(&t, &GlobalPrefix::initial(&t)).unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn sending_enqueues_exactly_one_message() {
        let g = GlobalType::msg1(r("p"), r("q"), "l", Sort::Nat, GlobalType::End);
        let t = unravel_global(&g).unwrap();
        let send = Action::send(r("p"), r("q"), l("l"), Sort::Nat);
        let after_send = global_step(&t, &GlobalPrefix::initial(&t), &send).unwrap();
        let q = qproject(&t, &after_send).unwrap();
        assert_eq!(q.total_messages(), 1);
        assert_eq!(q.peek(&r("p"), &r("q")).unwrap().0, l("l"));

        let after_recv = global_step(&t, &after_send, &send.dual()).unwrap();
        assert!(qproject(&t, &after_recv).unwrap().is_empty());
    }

    #[test]
    fn nested_in_flight_messages_keep_fifo_order() {
        // p -> q : a(nat). p -> q : b(nat). end, with both messages sent and
        // none received: the queue (p, q) must be [a, b] in that order.
        let g = GlobalType::msg1(
            r("p"),
            r("q"),
            "a",
            Sort::Nat,
            GlobalType::msg1(r("p"), r("q"), "b", Sort::Nat, GlobalType::End),
        );
        let t = unravel_global(&g).unwrap();
        let send_a = Action::send(r("p"), r("q"), l("a"), Sort::Nat);
        let send_b = Action::send(r("p"), r("q"), l("b"), Sort::Nat);
        let s1 = global_step(&t, &GlobalPrefix::initial(&t), &send_a).unwrap();
        let s2 = global_step(&t, &s1, &send_b).unwrap();
        let q = qproject(&t, &s2).unwrap();
        assert_eq!(
            q.queue(&r("p"), &r("q"))
                .into_iter()
                .map(|(label, _)| label)
                .collect::<Vec<_>>(),
            vec![l("a"), l("b")]
        );
    }

    #[test]
    fn example_3_12_queue_projection() {
        // Gc = p ~l~> q : l(S). (mu. q -> p : l(S)): Q(p,q) = [(l, S)].
        let g = GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::rec(GlobalType::msg1(
                r("q"),
                r("p"),
                "l",
                Sort::Nat,
                GlobalType::var(0),
            )),
        );
        let t = unravel_global(&g).unwrap();
        let send = Action::send(r("p"), r("q"), l("l"), Sort::Nat);
        let after = global_step(&t, &GlobalPrefix::initial(&t), &send).unwrap();
        let q = qproject(&t, &after).unwrap();
        assert_eq!(q.queue(&r("p"), &r("q")).len(), 1);
        assert!(q.queue(&r("q"), &r("p")).is_empty());
    }
}
