//! The executable counterpart of Theorem 3.6: *unravelling preserves
//! projections* (`Projection/Correctness.v`, theorem `ic_proj`).

use crate::common::role::Role;
use crate::error::Result;
use crate::global::syntax::GlobalType;
use crate::global::unravel::unravel_global;
use crate::local::unravel::unravel_local;
use crate::projection::cproject::is_cprojection;
use crate::projection::iproject::project;

/// Checks Theorem 3.6 for a given global type and participant: if the
/// inductive projection `G ↾ r = L` is defined, then the unravelling of `L`
/// is a coinductive projection of the unravelling of `G`.
///
/// Returns `Ok(true)` when the theorem instance holds, `Ok(false)` when it is
/// violated (which would indicate a bug in one of the three components —
/// this is what the property-based test-suite asserts never happens).
///
/// # Errors
///
/// Propagates failures of the *hypotheses*: the type being ill-formed or not
/// inductively projectable onto `role`. Such cases do not constitute
/// counterexamples to the theorem, whose statement assumes them.
///
/// # Examples
///
/// ```
/// use zooid_mpst::global::GlobalType;
/// use zooid_mpst::projection::unravelling_preserves_projection;
/// use zooid_mpst::{Role, Sort};
///
/// let g = GlobalType::rec(GlobalType::msg1(
///     Role::new("p"), Role::new("q"), "ping", Sort::Nat, GlobalType::var(0)));
/// assert!(unravelling_preserves_projection(&g, &Role::new("p")).unwrap());
/// assert!(unravelling_preserves_projection(&g, &Role::new("q")).unwrap());
/// ```
pub fn unravelling_preserves_projection(global: &GlobalType, role: &Role) -> Result<bool> {
    let local = project(global, role)?;
    let gtree = unravel_global(global)?;
    let ltree = unravel_local(&local)?;
    Ok(is_cprojection(&gtree, role, &ltree))
}

/// Checks Theorem 3.6 for every participant of the global type.
///
/// # Errors
///
/// See [`unravelling_preserves_projection`].
pub fn unravelling_preserves_all_projections(global: &GlobalType) -> Result<bool> {
    for role in global.participants() {
        if !unravelling_preserves_projection(global, &role)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::label::Label;
    use crate::common::sort::Sort;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    #[test]
    fn theorem_3_6_holds_for_the_ring() {
        let ring = GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(
                r("Bob"),
                r("Carol"),
                "l",
                Sort::Nat,
                GlobalType::msg1(r("Carol"), r("Alice"), "l", Sort::Nat, GlobalType::End),
            ),
        );
        assert!(unravelling_preserves_all_projections(&ring).unwrap());
        // Also holds for a non-participant (both sides are `end`).
        assert!(unravelling_preserves_projection(&ring, &r("Zoe")).unwrap());
    }

    #[test]
    fn theorem_3_6_holds_for_the_recursive_pipeline() {
        let pipeline = GlobalType::rec(GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::var(0)),
        ));
        assert!(unravelling_preserves_all_projections(&pipeline).unwrap());
    }

    #[test]
    fn theorem_3_6_holds_for_branching_protocols() {
        let ping_pong = GlobalType::rec(GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (Label::new("quit"), Sort::Unit, GlobalType::End),
                (
                    Label::new("ping"),
                    Sort::Nat,
                    GlobalType::msg1(r("Bob"), r("Alice"), "pong", Sort::Nat, GlobalType::var(0)),
                ),
            ],
        ));
        assert!(unravelling_preserves_all_projections(&ping_pong).unwrap());
    }

    #[test]
    fn hypothesis_failures_are_reported_as_errors() {
        // Not inductively projectable onto Carol (Example 3.5's G').
        let g_prime = GlobalType::msg(
            r("Alice"),
            r("Bob"),
            vec![
                (
                    Label::new("l1"),
                    Sort::Nat,
                    GlobalType::msg1(r("Bob"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
                (
                    Label::new("l2"),
                    Sort::Nat,
                    GlobalType::msg1(r("Alice"), r("Carol"), "l", Sort::Nat, GlobalType::End),
                ),
            ],
        );
        assert!(unravelling_preserves_projection(&g_prime, &r("Carol")).is_err());
    }
}
