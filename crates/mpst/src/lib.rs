//! Asynchronous multiparty session types (MPST): syntax, semantic trees,
//! projection, labelled-transition semantics and trace-equivalence checking.
//!
//! This crate is the Rust counterpart of the metatheory layer of *Zooid: a DSL
//! for Certified Multiparty Computation* (PLDI 2021, §3 and Appendix A). It
//! provides:
//!
//! * the inductive syntax of **global** and **local** session types
//!   ([`global::GlobalType`], [`local::LocalType`]) together with the
//!   well-formedness conditions the paper assumes throughout (guardedness,
//!   closedness, non-empty and label-distinct branches);
//! * **semantic trees** ([`global::GlobalTree`], [`local::LocalTree`]): the
//!   finite, graph-based representation of the regular (possibly infinite)
//!   trees obtained by unravelling recursion, mirroring the paper's
//!   coinductive `rg_ty`/`rl_ty`;
//! * **unravelling** (the paper's `GUnroll`/`LUnroll` relations) as both a
//!   constructive operation and a checkable relation;
//! * **projection**: the inductive, partial projection of global types onto
//!   participants ([`projection::project`]) and the more permissive
//!   coinductive projection on trees ([`projection::cproject`]), together with
//!   the *unravelling preserves projection* checker (Theorem 3.6);
//! * the **asynchronous operational semantics**: queue environments, local
//!   environments, the global LTS on execution prefixes and the local LTS on
//!   environment pairs (Definitions 3.13/3.14), trace admissibility
//!   (Definitions 3.19/3.20) and the executable counterparts of step
//!   soundness/completeness and trace equivalence (Theorems 3.16, 3.17, 3.21)
//!   in [`trace_equiv`];
//! * deterministic **protocol generators** used by the test-suite and the
//!   benchmark harness ([`generators`]).
//!
//! # Quick example
//!
//! ```rust
//! use zooid_mpst::global::GlobalType;
//! use zooid_mpst::local::LocalType;
//! use zooid_mpst::projection::project;
//! use zooid_mpst::{Label, Role, Sort};
//!
//! // G = Alice -> Bob : l(nat) . Carol gets a copy . end
//! let g = GlobalType::msg(
//!     Role::new("Alice"),
//!     Role::new("Bob"),
//!     vec![(Label::new("l"), Sort::Nat, GlobalType::End)],
//! );
//! let l = project(&g, &Role::new("Alice")).expect("projectable");
//! assert_eq!(
//!     l,
//!     LocalType::send(Role::new("Bob"), vec![(Label::new("l"), Sort::Nat, LocalType::End)]),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
pub mod error;
pub mod generators;
pub mod global;
pub mod local;
pub mod projection;
pub mod trace_equiv;

pub use common::actions::{Action, ActionKind};
pub use common::intern::{Interner, InternerSnapshot};
pub use common::label::Label;
pub use common::role::{Role, RoleSet};
pub use common::sort::Sort;
pub use common::trace::Trace;
pub use error::{Error, Result};
