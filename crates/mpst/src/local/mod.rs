//! Local session types and their semantics.
//!
//! Mirrors the `Local/` folder of the Coq development:
//!
//! * [`syntax`] — inductive local types (`Local/Syntax.v`);
//! * [`tree`] — semantic local trees (`Local/Tree.v`);
//! * [`unravel`] — the unravelling relation between them (`Local/Unravel.v`);
//! * [`semantics`] — queue environments, local environments and the
//!   environment LTS (`Local/Semantics.v`).

pub mod semantics;
pub mod syntax;
pub mod tree;
pub mod unravel;

pub use semantics::{
    enabled_local_actions, is_local_trace_prefix, local_step, local_traces_up_to, run_local_trace,
    Configuration, LocalEndpoint, LocalEnv, QueueEnv,
};
pub use syntax::LocalType;
pub use tree::{LocalTree, LocalTreeNode};
pub use unravel::{l_unravels_to, unravel_local};
