//! Unravelling of local types into semantic local trees
//! (Definition 3.3 / A.13, `Local/Unravel.v`).

use std::collections::HashMap;

use crate::common::arena::NodeId;
use crate::common::branch::Branch;
use crate::common::intern::{IBranch, Interner, LTerm, LTypeId};
use crate::error::Result;
use crate::local::syntax::LocalType;
use crate::local::tree::{LocalTree, LocalTreeNode};

/// Unravels a closed, guarded local type into its semantic tree.
///
/// See [`unravel_global`](crate::global::unravel_global) for the construction;
/// the local rules are `[l-unr-end]`, `[l-unr-rec]`, `[l-unr-send]` and
/// `[l-unr-recv]`.
///
/// # Errors
///
/// Returns an error if the type is not well-formed (see
/// [`LocalType::well_formed`]).
///
/// # Examples
///
/// ```
/// use zooid_mpst::local::{unravel_local, LocalType};
/// use zooid_mpst::{Role, Sort};
///
/// let l = LocalType::rec(LocalType::send1(Role::new("q"), "ping", Sort::Nat, LocalType::var(0)));
/// let tree = unravel_local(&l).unwrap();
/// assert_eq!(tree.len(), 1); // a single node looping on itself
/// ```
pub fn unravel_local(l: &LocalType) -> Result<LocalTree> {
    l.well_formed()?;
    let mut interner = Interner::new();
    let root = interner.intern_local(l);
    Ok(unravel_local_interned(&mut interner, root))
}

/// Unravels an already-interned, well-formed local type.
///
/// Callers must have validated [`LocalType::well_formed`] before interning.
pub(crate) fn unravel_local_interned(interner: &mut Interner, root: LTypeId) -> LocalTree {
    let mut builder = Builder::default();
    let root = builder.node_of(interner, root);
    LocalTree::from_parts(builder.nodes, root)
}

/// Decides the unravelling relation `L ℜ Lc`: does `tree` represent the
/// infinite unfolding of `l`?
///
/// Returns `false` when `l` is not well-formed.
pub fn l_unravels_to(l: &LocalType, tree: &LocalTree) -> bool {
    match unravel_local(l) {
        Ok(t) => t.equivalent(tree),
        Err(_) => false,
    }
}

#[derive(Default)]
struct Builder {
    nodes: Vec<LocalTreeNode>,
    /// Head-normal form id → arena node (id equality instead of deep
    /// structural lookup).
    memo: HashMap<LTypeId, NodeId>,
}

impl Builder {
    fn node_of(&mut self, interner: &mut Interner, t: LTypeId) -> NodeId {
        let head = interner.unfold_head_local(t);
        if let Some(&id) = self.memo.get(&head) {
            return id;
        }
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(LocalTreeNode::End);
        self.memo.insert(head, id);
        let node = match interner.local(head).clone() {
            LTerm::End => LocalTreeNode::End,
            LTerm::Send { to, branches } => LocalTreeNode::Send {
                to: interner.role(to).clone(),
                branches: self.branches(interner, &branches),
            },
            LTerm::Recv { from, branches } => LocalTreeNode::Recv {
                from: interner.role(from).clone(),
                branches: self.branches(interner, &branches),
            },
            LTerm::Rec(_) | LTerm::Var(_) => {
                unreachable!("unfold_head returns a head-normal form of a closed type")
            }
        };
        self.nodes[id.index()] = node;
        id
    }

    fn branches(
        &mut self,
        interner: &mut Interner,
        branches: &[IBranch<LTypeId>],
    ) -> Vec<Branch<NodeId>> {
        branches
            .iter()
            .map(|b| Branch {
                label: interner.label(b.label).clone(),
                sort: interner.sort(b.sort).clone(),
                cont: self.node_of(interner, b.cont),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::role::Role;
    use crate::common::sort::Sort;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    #[test]
    fn end_unravels_to_end() {
        let t = unravel_local(&LocalType::End).unwrap();
        assert!(t.is_ended());
        assert!(l_unravels_to(&LocalType::End, &t));
    }

    #[test]
    fn unrolling_preserves_the_unravelling() {
        let l = LocalType::rec(LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::var(0)));
        let t = unravel_local(&l).unwrap();
        assert!(l_unravels_to(&l.unfold_once(), &t));
    }

    #[test]
    fn ping_pong_alice_unrollings_are_equivalent() {
        // The two local types compared in §5.1: alice_lt and the once-unrolled
        // variant inferred for alice4. They unravel to the same local tree.
        let alice_lt = LocalType::rec(LocalType::Send {
            to: r("Bob"),
            branches: vec![
                Branch::new("l1", Sort::Unit, LocalType::End),
                Branch::new(
                    "l2",
                    Sort::Nat,
                    LocalType::recv1(r("Bob"), "l3", Sort::Nat, LocalType::var(0)),
                ),
            ],
        });
        let alice4_lt = LocalType::Send {
            to: r("Bob"),
            branches: vec![
                Branch::new("l1", Sort::Unit, LocalType::End),
                Branch::new(
                    "l2",
                    Sort::Nat,
                    LocalType::rec(LocalType::recv1(
                        r("Bob"),
                        "l3",
                        Sort::Nat,
                        LocalType::Send {
                            to: r("Bob"),
                            branches: vec![
                                Branch::new("l1", Sort::Unit, LocalType::End),
                                Branch::new("l2", Sort::Nat, LocalType::var(0)),
                            ],
                        },
                    )),
                ),
            ],
        };
        let t1 = unravel_local(&alice_lt).unwrap();
        let t2 = unravel_local(&alice4_lt).unwrap();
        assert!(t1.equivalent(&t2));
        assert!(l_unravels_to(&alice4_lt, &t1));
    }

    #[test]
    fn different_protocols_are_not_identified() {
        let l1 = LocalType::send1(r("q"), "a", Sort::Nat, LocalType::End);
        let l2 = LocalType::send1(r("q"), "b", Sort::Nat, LocalType::End);
        let t1 = unravel_local(&l1).unwrap();
        assert!(!l_unravels_to(&l2, &t1));
    }

    #[test]
    fn ill_formed_types_do_not_unravel() {
        let bad = LocalType::rec(LocalType::var(0));
        assert!(unravel_local(&bad).is_err());
        let t = unravel_local(&LocalType::End).unwrap();
        assert!(!l_unravels_to(&bad, &t));
    }
}
