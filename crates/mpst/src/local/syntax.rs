//! Inductive syntax of local types (Definition 3.1 / A.9, `Local/Syntax.v`).

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::common::branch::{branches_from, check_branches, Branch};
use crate::common::label::Label;
use crate::common::role::Role;
use crate::common::sort::Sort;
use crate::error::{Error, Result};

/// A local session type: the behaviour of a single participant.
///
/// ```text
/// L ::= end | X | mu X. L
///     | ![q] ; { l_i(S_i). L_i }_{i in I}     (send / internal choice)
///     | ?[p] ; { l_i(S_i). L_i }_{i in I}     (receive / external choice)
/// ```
///
/// Recursion binders use de Bruijn indices, as in the Coq development. Local
/// types are normally obtained by [projecting] a global type, but can also be
/// written directly (for example to annotate a process).
///
/// [projecting]: crate::projection::project
///
/// # Examples
///
/// The projection of the two-buyer protocol onto buyer `B` (Figure 10):
///
/// ```
/// use zooid_mpst::local::LocalType;
/// use zooid_mpst::{Label, Role, Sort};
///
/// let blt = LocalType::recv(Role::new("S"), vec![(Label::new("Quote"), Sort::Nat,
///     LocalType::recv(Role::new("A"), vec![(Label::new("Propose"), Sort::Nat,
///         LocalType::send(Role::new("S"), vec![
///             (Label::new("Accept"), Sort::Nat,
///                 LocalType::recv(Role::new("S"), vec![(Label::new("Date"), Sort::Nat, LocalType::End)])),
///             (Label::new("Reject"), Sort::Unit, LocalType::End),
///         ]))]))]);
/// assert!(blt.well_formed().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocalType {
    /// The terminated protocol `end`.
    End,
    /// A recursion variable, as a de Bruijn index.
    Var(u32),
    /// A recursive local type `mu X. L`.
    Rec(Box<LocalType>),
    /// Internal choice `![to] ; { l_i(S_i). L_i }`: the participant chooses a
    /// label and sends it (with a payload) to `to`.
    Send {
        /// The partner the message is sent to.
        to: Role,
        /// The alternatives the participant may choose from.
        branches: Vec<Branch<LocalType>>,
    },
    /// External choice `?[from] ; { l_i(S_i). L_i }`: the participant waits
    /// for a message from `from` and branches on its label.
    Recv {
        /// The partner the message is expected from.
        from: Role,
        /// The alternatives the partner may choose from.
        branches: Vec<Branch<LocalType>>,
    },
}

impl LocalType {
    /// Builds a send (internal choice) type from `(label, sort, continuation)`
    /// triples.
    pub fn send(
        to: Role,
        branches: impl IntoIterator<Item = (Label, Sort, LocalType)>,
    ) -> Self {
        LocalType::Send {
            to,
            branches: branches_from(branches),
        }
    }

    /// Builds a single-branch send type `![to] ; label(sort). cont`.
    pub fn send1(to: Role, label: impl Into<Label>, sort: Sort, cont: LocalType) -> Self {
        LocalType::send(to, [(label.into(), sort, cont)])
    }

    /// Builds a receive (external choice) type from `(label, sort,
    /// continuation)` triples.
    pub fn recv(
        from: Role,
        branches: impl IntoIterator<Item = (Label, Sort, LocalType)>,
    ) -> Self {
        LocalType::Recv {
            from,
            branches: branches_from(branches),
        }
    }

    /// Builds a single-branch receive type `?[from] ; label(sort). cont`.
    pub fn recv1(from: Role, label: impl Into<Label>, sort: Sort, cont: LocalType) -> Self {
        LocalType::recv(from, [(label.into(), sort, cont)])
    }

    /// Builds the recursive type `mu X. body`.
    pub fn rec(body: LocalType) -> Self {
        LocalType::Rec(Box::new(body))
    }

    /// Builds the recursion variable with de Bruijn index `index`.
    pub fn var(index: u32) -> Self {
        LocalType::Var(index)
    }

    /// Every partner the local type communicates with.
    pub fn partners(&self) -> BTreeSet<Role> {
        let mut out = BTreeSet::new();
        self.collect_partners(&mut out);
        out
    }

    fn collect_partners(&self, out: &mut BTreeSet<Role>) {
        match self {
            LocalType::End | LocalType::Var(_) => {}
            LocalType::Rec(body) => body.collect_partners(out),
            LocalType::Send { to, branches } => {
                out.insert(to.clone());
                for b in branches {
                    b.cont.collect_partners(out);
                }
            }
            LocalType::Recv { from, branches } => {
                out.insert(from.clone());
                for b in branches {
                    b.cont.collect_partners(out);
                }
            }
        }
    }

    /// The set of free recursion variables (`l_fidx`), as de Bruijn indices
    /// relative to the outside of the term.
    pub fn free_vars(&self) -> BTreeSet<u32> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(0, &mut out);
        out
    }

    fn collect_free_vars(&self, depth: u32, out: &mut BTreeSet<u32>) {
        match self {
            LocalType::End => {}
            LocalType::Var(i) => {
                if *i >= depth {
                    out.insert(*i - depth);
                }
            }
            LocalType::Rec(body) => body.collect_free_vars(depth + 1, out),
            LocalType::Send { branches, .. } | LocalType::Recv { branches, .. } => {
                for b in branches {
                    b.cont.collect_free_vars(depth, out);
                }
            }
        }
    }

    /// Returns `true` if the type has no free recursion variables
    /// (`l_closed`, Definition A.11).
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Returns `true` if every recursion binder is guarded (`lguarded`,
    /// Definition A.10).
    pub fn is_guarded(&self) -> bool {
        match self {
            LocalType::End | LocalType::Var(_) => true,
            LocalType::Rec(body) => !body.is_pure_rec() && body.is_guarded(),
            LocalType::Send { branches, .. } | LocalType::Recv { branches, .. } => {
                branches.iter().all(|b| b.cont.is_guarded())
            }
        }
    }

    fn is_pure_rec(&self) -> bool {
        match self {
            LocalType::Var(_) => true,
            LocalType::Rec(body) => body.is_pure_rec(),
            _ => false,
        }
    }

    /// Checks the local counterpart of `g_precond`: guarded, closed, and all
    /// choices non-empty with pairwise distinct labels.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition as an [`Error`].
    pub fn well_formed(&self) -> Result<()> {
        if !self.is_guarded() {
            return Err(Error::Unguarded {
                context: self.to_string(),
            });
        }
        if let Some(&i) = self.free_vars().iter().next() {
            return Err(Error::UnboundVariable { index: i });
        }
        self.check_choices()
    }

    fn check_choices(&self) -> Result<()> {
        match self {
            LocalType::End | LocalType::Var(_) => Ok(()),
            LocalType::Rec(body) => body.check_choices(),
            LocalType::Send { branches, .. } | LocalType::Recv { branches, .. } => {
                check_branches(branches)?;
                for b in branches {
                    b.cont.check_choices()?;
                }
                Ok(())
            }
        }
    }

    /// Capture-avoiding substitution of the outermost recursion variable;
    /// see [`GlobalType::subst_top`](crate::global::GlobalType::subst_top)
    /// for the conventions.
    #[must_use]
    pub fn subst_top(&self, repl: &LocalType) -> LocalType {
        self.subst(0, repl)
    }

    fn subst(&self, depth: u32, repl: &LocalType) -> LocalType {
        match self {
            LocalType::End => LocalType::End,
            LocalType::Var(i) => {
                if *i == depth {
                    repl.clone()
                } else if *i > depth {
                    LocalType::Var(*i - 1)
                } else {
                    LocalType::Var(*i)
                }
            }
            LocalType::Rec(body) => LocalType::Rec(Box::new(body.subst(depth + 1, repl))),
            LocalType::Send { to, branches } => LocalType::Send {
                to: to.clone(),
                branches: branches
                    .iter()
                    .map(|b| b.map_ref(|l| l.subst(depth, repl)))
                    .collect(),
            },
            LocalType::Recv { from, branches } => LocalType::Recv {
                from: from.clone(),
                branches: branches
                    .iter()
                    .map(|b| b.map_ref(|l| l.subst(depth, repl)))
                    .collect(),
            },
        }
    }

    /// One step of recursion unfolding: `mu X. L` becomes `L[X := mu X. L]`;
    /// every other constructor is returned unchanged.
    #[must_use]
    pub fn unfold_once(&self) -> LocalType {
        match self {
            LocalType::Rec(body) => body.subst_top(self),
            other => other.clone(),
        }
    }

    /// Unfolds leading recursion binders until the head constructor is
    /// `End`, `Send` or `Recv`.
    ///
    /// # Panics
    ///
    /// Panics if the type is unguarded or not closed; callers are expected to
    /// have checked [`LocalType::well_formed`] first.
    #[must_use]
    pub fn unfold_head(&self) -> LocalType {
        let mut current = self.clone();
        let mut fuel = 1 + self.size();
        while let LocalType::Rec(_) = current {
            assert!(fuel > 0, "unfold_head: unguarded or open recursion");
            fuel -= 1;
            current = current.unfold_once();
        }
        assert!(
            !matches!(current, LocalType::Var(_)),
            "unfold_head reached a free variable; type was not closed"
        );
        current
    }

    /// Structural size (number of constructors).
    pub fn size(&self) -> usize {
        match self {
            LocalType::End | LocalType::Var(_) => 1,
            LocalType::Rec(body) => 1 + body.size(),
            LocalType::Send { branches, .. } | LocalType::Recv { branches, .. } => {
                1 + branches.iter().map(|b| b.cont.size()).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for LocalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn branches(
            f: &mut fmt::Formatter<'_>,
            branches: &[Branch<LocalType>],
        ) -> fmt::Result {
            f.write_str("{")?;
            for (i, b) in branches.iter().enumerate() {
                if i > 0 {
                    f.write_str("; ")?;
                }
                write!(f, "{}({}).{}", b.label, b.sort, b.cont)?;
            }
            f.write_str("}")
        }
        match self {
            LocalType::End => f.write_str("end"),
            LocalType::Var(i) => write!(f, "X{i}"),
            LocalType::Rec(body) => write!(f, "mu.{body}"),
            LocalType::Send { to, branches: bs } => {
                write!(f, "![{to}];")?;
                branches(f, bs)
            }
            LocalType::Recv { from, branches: bs } => {
                write!(f, "?[{from}];")?;
                branches(f, bs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    /// `mu X. ![q] ; l(nat). ?[q] ; l2(nat). X` — a recursive request/reply.
    fn request_reply() -> LocalType {
        LocalType::rec(LocalType::send1(
            r("q"),
            "l",
            Sort::Nat,
            LocalType::recv1(r("q"), "l2", Sort::Nat, LocalType::var(0)),
        ))
    }

    #[test]
    fn partners_of_request_reply() {
        assert_eq!(
            request_reply().partners().into_iter().collect::<Vec<_>>(),
            vec![r("q")]
        );
    }

    #[test]
    fn well_formed_accepts_request_reply() {
        assert!(request_reply().well_formed().is_ok());
    }

    #[test]
    fn guardedness_rejects_mu_x_x() {
        let l = LocalType::rec(LocalType::var(0));
        assert!(!l.is_guarded());
        assert!(matches!(l.well_formed(), Err(Error::Unguarded { .. })));
    }

    #[test]
    fn closedness_detects_free_variables() {
        let open = LocalType::send1(r("q"), "l", Sort::Nat, LocalType::var(0));
        assert!(open.is_closed() == false || open.free_vars().is_empty());
        assert!(!open.is_closed());
        assert!(request_reply().is_closed());
    }

    #[test]
    fn duplicate_labels_rejected() {
        let l = LocalType::send(
            r("q"),
            vec![
                (Label::new("l"), Sort::Nat, LocalType::End),
                (Label::new("l"), Sort::Nat, LocalType::End),
            ],
        );
        assert!(matches!(l.well_formed(), Err(Error::DuplicateLabel { .. })));
    }

    #[test]
    fn empty_choice_rejected() {
        let l = LocalType::Recv {
            from: r("q"),
            branches: vec![],
        };
        assert_eq!(l.well_formed(), Err(Error::EmptyChoice));
    }

    #[test]
    fn unfold_once_substitutes_whole_mu() {
        let l = request_reply();
        let u = l.unfold_once();
        assert_eq!(
            u,
            LocalType::send1(
                r("q"),
                "l",
                Sort::Nat,
                LocalType::recv1(r("q"), "l2", Sort::Nat, l.clone())
            )
        );
        assert!(u.is_closed());
        assert!(u.is_guarded());
    }

    #[test]
    fn unfold_head_reaches_send() {
        let l = request_reply();
        assert!(matches!(l.unfold_head(), LocalType::Send { .. }));
        // Already-headed types are unchanged.
        assert_eq!(LocalType::End.unfold_head(), LocalType::End);
    }

    #[test]
    fn size_counts_constructors() {
        assert_eq!(LocalType::End.size(), 1);
        assert_eq!(request_reply().size(), 4);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            request_reply().to_string(),
            "mu.![q];{l(nat).?[q];{l2(nat).X0}}"
        );
    }
}
