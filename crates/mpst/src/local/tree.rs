//! Semantic local trees (Definition 3.2 / A.12, `Local/Tree.v`).
//!
//! Like [global trees](crate::global::GlobalTree), local trees are the finite
//! graph representation of the regular trees denoted by closed, guarded local
//! types.

use std::collections::{BTreeSet, HashSet, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::common::arena::NodeId;
use crate::common::branch::Branch;
use crate::common::role::Role;

/// One node of a semantic local tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalTreeNode {
    /// The terminated protocol `end_c`.
    End,
    /// Internal choice `!c[to] ; { l_i(S_i). L_i }`.
    Send {
        /// The partner the message is sent to.
        to: Role,
        /// The alternatives; continuations are node ids in the same arena.
        branches: Vec<Branch<NodeId>>,
    },
    /// External choice `?c[from] ; { l_i(S_i). L_i }`.
    Recv {
        /// The partner the message is expected from.
        from: Role,
        /// The alternatives; continuations are node ids in the same arena.
        branches: Vec<Branch<NodeId>>,
    },
}

impl LocalTreeNode {
    /// Returns `true` if the node is `end_c`.
    pub fn is_end(&self) -> bool {
        matches!(self, LocalTreeNode::End)
    }
}

/// A semantic local tree: the regular tree denoted by a closed, guarded local
/// type, represented as a finite graph.
///
/// Build one with [`unravel_local`](crate::local::unravel_local) or as the
/// result of [coinductive projection](crate::projection::cproject).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalTree {
    nodes: Vec<LocalTreeNode>,
    root: NodeId,
}

impl LocalTree {
    pub(crate) fn from_parts(nodes: Vec<LocalTreeNode>, root: NodeId) -> Self {
        LocalTree { nodes, root }
    }

    /// A tree consisting of the single node `end_c`. This is the projection
    /// of any protocol onto a non-participant (`[co-proj-end]`).
    pub fn end() -> Self {
        LocalTree {
            nodes: vec![LocalTreeNode::End],
            root: NodeId::new(0),
        }
    }

    /// The root node of the tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree's arena.
    pub fn node(&self, id: NodeId) -> &LocalTreeNode {
        &self.nodes[id.index()]
    }

    /// Number of distinct nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the arena is empty (never the case for trees built
    /// by this crate).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over `(id, node)` pairs of the arena.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &LocalTreeNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i), n))
    }

    /// Returns `true` if the whole behaviour rooted at the tree's root is
    /// `end_c` (i.e. the participant has nothing left to do).
    pub fn is_ended(&self) -> bool {
        self.node(self.root).is_end()
    }

    /// All node ids reachable from `start` (including `start`).
    pub fn reachable_from(&self, start: NodeId) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([start]);
        while let Some(id) = queue.pop_front() {
            if !seen.insert(id) {
                continue;
            }
            match self.node(id) {
                LocalTreeNode::End => {}
                LocalTreeNode::Send { branches, .. } | LocalTreeNode::Recv { branches, .. } => {
                    for b in branches {
                        queue.push_back(b.cont);
                    }
                }
            }
        }
        seen
    }

    /// Every partner the behaviour reachable from the root communicates with.
    pub fn partners(&self) -> BTreeSet<Role> {
        let mut out = BTreeSet::new();
        for id in self.reachable_from(self.root) {
            match self.node(id) {
                LocalTreeNode::End => {}
                LocalTreeNode::Send { to, .. } => {
                    out.insert(to.clone());
                }
                LocalTreeNode::Recv { from, .. } => {
                    out.insert(from.clone());
                }
            }
        }
        out
    }

    /// Coinductive tree equality (bisimilarity) between a node of `self` and
    /// a node of `other`; see
    /// [`GlobalTree::bisimilar`](crate::global::GlobalTree::bisimilar).
    pub fn bisimilar(&self, this: NodeId, other: &LocalTree, that: NodeId) -> bool {
        let mut assumed: HashSet<(NodeId, NodeId)> = HashSet::new();
        self.bisim_rec(this, other, that, &mut assumed)
    }

    /// Convenience form of [`LocalTree::bisimilar`] comparing the two roots.
    pub fn equivalent(&self, other: &LocalTree) -> bool {
        self.bisimilar(self.root, other, other.root())
    }

    fn bisim_rec(
        &self,
        a: NodeId,
        other: &LocalTree,
        b: NodeId,
        assumed: &mut HashSet<(NodeId, NodeId)>,
    ) -> bool {
        if !assumed.insert((a, b)) {
            return true;
        }
        match (self.node(a), other.node(b)) {
            (LocalTreeNode::End, LocalTreeNode::End) => true,
            (
                LocalTreeNode::Send {
                    to: r1,
                    branches: bs1,
                },
                LocalTreeNode::Send {
                    to: r2,
                    branches: bs2,
                },
            )
            | (
                LocalTreeNode::Recv {
                    from: r1,
                    branches: bs1,
                },
                LocalTreeNode::Recv {
                    from: r2,
                    branches: bs2,
                },
            ) => {
                if r1 != r2 || bs1.len() != bs2.len() {
                    return false;
                }
                // Both constructors must match; the or-pattern above already
                // guarantees Send is compared with Send and Recv with Recv.
                bs1.iter().all(|b1| {
                    bs2.iter()
                        .find(|b2| b2.label == b1.label)
                        .is_some_and(|b2| {
                            b1.sort == b2.sort && self.bisim_rec(b1.cont, other, b2.cont, assumed)
                        })
                })
            }
            _ => false,
        }
    }
}

impl fmt::Display for LocalTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "local tree (root {}):", self.root)?;
        for (id, node) in self.iter() {
            match node {
                LocalTreeNode::End => writeln!(f, "  {id}: end")?,
                LocalTreeNode::Send { to, branches } => {
                    write!(f, "  {id}: ![{to}];{{")?;
                    for (i, b) in branches.iter().enumerate() {
                        if i > 0 {
                            f.write_str("; ")?;
                        }
                        write!(f, "{}({}) -> {}", b.label, b.sort, b.cont)?;
                    }
                    writeln!(f, "}}")?;
                }
                LocalTreeNode::Recv { from, branches } => {
                    write!(f, "  {id}: ?[{from}];{{")?;
                    for (i, b) in branches.iter().enumerate() {
                        if i > 0 {
                            f.write_str("; ")?;
                        }
                        write!(f, "{}({}) -> {}", b.label, b.sort, b.cont)?;
                    }
                    writeln!(f, "}}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::sort::Sort;
    use crate::local::syntax::LocalType;
    use crate::local::unravel::unravel_local;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn loop_tree() -> LocalTree {
        let l = LocalType::rec(LocalType::send1(
            r("q"),
            "l",
            Sort::Nat,
            LocalType::var(0),
        ));
        unravel_local(&l).unwrap()
    }

    #[test]
    fn end_tree_is_ended() {
        assert!(LocalTree::end().is_ended());
        assert!(!loop_tree().is_ended());
    }

    #[test]
    fn recursive_type_unravels_to_a_cycle() {
        let t = loop_tree();
        assert_eq!(t.len(), 1);
        match t.node(t.root()) {
            LocalTreeNode::Send { branches, .. } => assert_eq!(branches[0].cont, t.root()),
            _ => panic!("expected send node"),
        }
    }

    #[test]
    fn partners_are_collected() {
        let l = LocalType::send1(
            r("q"),
            "l",
            Sort::Nat,
            LocalType::recv1(r("s"), "m", Sort::Bool, LocalType::End),
        );
        let t = unravel_local(&l).unwrap();
        let ps = t.partners();
        assert!(ps.contains(&r("q")) && ps.contains(&r("s")));
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn bisimilarity_identifies_unrollings() {
        let l = LocalType::rec(LocalType::send1(r("q"), "l", Sort::Nat, LocalType::var(0)));
        let t1 = unravel_local(&l).unwrap();
        let t2 = unravel_local(&l.unfold_once()).unwrap();
        assert!(t1.equivalent(&t2));
    }

    #[test]
    fn bisimilarity_distinguishes_send_from_recv() {
        let send = unravel_local(&LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)).unwrap();
        let recv = unravel_local(&LocalType::recv1(r("q"), "l", Sort::Nat, LocalType::End)).unwrap();
        assert!(!send.equivalent(&recv));
    }

    #[test]
    fn bisimilarity_distinguishes_partners() {
        let a = unravel_local(&LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)).unwrap();
        let b = unravel_local(&LocalType::send1(r("z"), "l", Sort::Nat, LocalType::End)).unwrap();
        assert!(!a.equivalent(&b));
    }

    #[test]
    fn reachability_covers_all_nodes_built() {
        let t = loop_tree();
        assert_eq!(t.reachable_from(t.root()).len(), t.len());
        assert!(!t.is_empty());
    }

    #[test]
    fn display_lists_nodes() {
        let s = loop_tree().to_string();
        assert!(s.contains("![q]"));
    }
}
