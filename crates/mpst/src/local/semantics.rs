//! Queue environments, local environments and the environment LTS
//! (Definitions 3.7, 3.9, 3.14, 3.20 / `Local/Semantics.v`).
//!
//! The asynchronous semantics of a whole protocol, seen from the local side,
//! is a transition system over *configurations*: a [`LocalEnv`] mapping each
//! participant to (a cursor into) its local tree, paired with a [`QueueEnv`]
//! holding the in-transit messages of every ordered pair of participants.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use crate::common::actions::Action;
use crate::common::arena::NodeId;
use crate::common::label::Label;
use crate::common::role::Role;
use crate::common::sort::Sort;
use crate::common::trace::Trace;
use crate::local::tree::{LocalTree, LocalTreeNode};

/// A queue environment (Definition 3.7): one FIFO queue of `(label, sort)`
/// messages per ordered pair of participants.
///
/// # Examples
///
/// ```
/// use zooid_mpst::local::QueueEnv;
/// use zooid_mpst::{Label, Role, Sort};
///
/// let mut q = QueueEnv::empty();
/// q.enq(&Role::new("p"), &Role::new("q"), Label::new("l"), Sort::Nat);
/// assert_eq!(q.total_messages(), 1);
/// let (label, sort) = q.deq(&Role::new("p"), &Role::new("q")).unwrap();
/// assert_eq!((label.name(), sort), ("l", Sort::Nat));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueEnv {
    queues: BTreeMap<(Role, Role), VecDeque<(Label, Sort)>>,
}

impl QueueEnv {
    /// The empty queue environment `ε`.
    pub fn empty() -> Self {
        QueueEnv::default()
    }

    /// Enqueues a message sent from `from` to `to` (the paper's `enq`).
    pub fn enq(&mut self, from: &Role, to: &Role, label: Label, sort: Sort) {
        self.queues
            .entry((from.clone(), to.clone()))
            .or_default()
            .push_back((label, sort));
    }

    /// Dequeues the oldest in-transit message from `from` to `to`, if any
    /// (the paper's `deq`).
    pub fn deq(&mut self, from: &Role, to: &Role) -> Option<(Label, Sort)> {
        let key = (from.clone(), to.clone());
        let queue = self.queues.get_mut(&key)?;
        let msg = queue.pop_front();
        if queue.is_empty() {
            self.queues.remove(&key);
        }
        msg
    }

    /// The oldest in-transit message from `from` to `to`, without removing
    /// it.
    pub fn peek(&self, from: &Role, to: &Role) -> Option<&(Label, Sort)> {
        self.queues
            .get(&(from.clone(), to.clone()))
            .and_then(|q| q.front())
    }

    /// The whole queue from `from` to `to`, oldest message first.
    pub fn queue(&self, from: &Role, to: &Role) -> Vec<(Label, Sort)> {
        self.queues
            .get(&(from.clone(), to.clone()))
            .map(|q| q.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Returns `true` if no message is in transit anywhere.
    pub fn is_empty(&self) -> bool {
        self.queues.values().all(VecDeque::is_empty)
    }

    /// Total number of in-transit messages across all queues.
    pub fn total_messages(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Iterates over the non-empty queues as `((from, to), messages)`.
    pub fn iter(&self) -> impl Iterator<Item = (&(Role, Role), &VecDeque<(Label, Sort)>)> {
        self.queues.iter().filter(|(_, q)| !q.is_empty())
    }
}

impl fmt::Display for QueueEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("ε");
        }
        for ((from, to), queue) in self.iter() {
            write!(f, "({from},{to}): [")?;
            for (i, (l, s)) in queue.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{l}({s})")?;
            }
            write!(f, "] ")?;
        }
        Ok(())
    }
}

/// A single participant's view inside a [`LocalEnv`]: its unravelled local
/// tree and the node it is currently at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalEndpoint {
    tree: Arc<LocalTree>,
    current: NodeId,
}

impl LocalEndpoint {
    /// Creates an endpoint positioned at the root of the given local tree.
    pub fn new(tree: LocalTree) -> Self {
        let current = tree.root();
        LocalEndpoint {
            tree: Arc::new(tree),
            current,
        }
    }

    /// The underlying local tree.
    pub fn tree(&self) -> &LocalTree {
        &self.tree
    }

    /// The node the endpoint is currently at.
    pub fn current(&self) -> NodeId {
        self.current
    }

    /// The tree node the endpoint is currently at.
    pub fn node(&self) -> &LocalTreeNode {
        self.tree.node(self.current)
    }

    /// Returns `true` if the endpoint has terminated (`end_c`).
    pub fn is_ended(&self) -> bool {
        self.node().is_end()
    }

    /// The endpoint advanced to the given node of the same tree.
    #[must_use]
    pub fn advanced_to(&self, id: NodeId) -> Self {
        LocalEndpoint {
            tree: Arc::clone(&self.tree),
            current: id,
        }
    }
}

/// A local environment (Definition 3.9): a finite map from participants to
/// their local behaviours.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocalEnv {
    entries: BTreeMap<Role, LocalEndpoint>,
}

impl LocalEnv {
    /// The empty environment.
    pub fn new() -> Self {
        LocalEnv::default()
    }

    /// Adds (or replaces) the behaviour of `role`.
    pub fn insert(&mut self, role: Role, tree: LocalTree) {
        self.entries.insert(role, LocalEndpoint::new(tree));
    }

    /// The behaviour of `role`, if it is part of the environment.
    pub fn get(&self, role: &Role) -> Option<&LocalEndpoint> {
        self.entries.get(role)
    }

    /// The participants of the environment.
    pub fn roles(&self) -> BTreeSet<Role> {
        self.entries.keys().cloned().collect()
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the environment has no participants.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if every participant has terminated.
    pub fn all_ended(&self) -> bool {
        self.entries.values().all(LocalEndpoint::is_ended)
    }

    /// Iterates over `(role, endpoint)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Role, &LocalEndpoint)> {
        self.entries.iter()
    }

    fn with_endpoint(&self, role: &Role, endpoint: LocalEndpoint) -> LocalEnv {
        let mut entries = self.entries.clone();
        entries.insert(role.clone(), endpoint);
        LocalEnv { entries }
    }
}

/// A configuration of the local semantics: a local environment together with
/// a queue environment. This is the `(E, Q)` of Definitions 3.11 and 3.14.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration {
    /// The behaviours of all participants.
    pub env: LocalEnv,
    /// The in-transit messages.
    pub queues: QueueEnv,
}

impl Configuration {
    /// A configuration with the given environment and no message in transit.
    pub fn initial(env: LocalEnv) -> Self {
        Configuration {
            env,
            queues: QueueEnv::empty(),
        }
    }

    /// Returns `true` if the configuration is terminal: every participant has
    /// terminated and no message is in transit (the base case of Definition
    /// 3.20).
    pub fn is_terminal(&self) -> bool {
        self.env.all_ended() && self.queues.is_empty()
    }
}

/// One step of the environment LTS (Definition 3.14): attempts to perform
/// `action` from `config`.
///
/// * `[l-step-send]` — the sender's local tree offers a send with the
///   action's label; the sender advances and the message is enqueued.
/// * `[l-step-recv]` — the receiver's local tree expects a receive from the
///   action's sender, and the oldest in-transit message between them carries
///   the action's label; the receiver advances and the message is dequeued.
pub fn local_step(config: &Configuration, action: &Action) -> Option<Configuration> {
    match action {
        a if a.is_send() => {
            let sender = a.from();
            let endpoint = config.env.get(sender)?;
            let LocalTreeNode::Send { to, branches } = endpoint.node() else {
                return None;
            };
            if to != a.to() {
                return None;
            }
            let branch = branches
                .iter()
                .find(|b| &b.label == a.label() && &b.sort == a.sort())?;
            let env = config
                .env
                .with_endpoint(sender, endpoint.advanced_to(branch.cont));
            let mut queues = config.queues.clone();
            queues.enq(a.from(), a.to(), a.label().clone(), a.sort().clone());
            Some(Configuration { env, queues })
        }
        a => {
            let receiver = a.to();
            let endpoint = config.env.get(receiver)?;
            let LocalTreeNode::Recv { from, branches } = endpoint.node() else {
                return None;
            };
            if from != a.from() {
                return None;
            }
            let branch = branches
                .iter()
                .find(|b| &b.label == a.label() && &b.sort == a.sort())?;
            let head = config.queues.peek(a.from(), a.to())?;
            if &head.0 != a.label() || &head.1 != a.sort() {
                return None;
            }
            let env = config
                .env
                .with_endpoint(receiver, endpoint.advanced_to(branch.cont));
            let mut queues = config.queues.clone();
            queues.deq(a.from(), a.to());
            Some(Configuration { env, queues })
        }
    }
}

/// The set of actions enabled in `config`, i.e. the actions `a` for which
/// [`local_step`] succeeds.
pub fn enabled_local_actions(config: &Configuration) -> Vec<Action> {
    let mut out = Vec::new();
    for (role, endpoint) in config.env.iter() {
        match endpoint.node() {
            LocalTreeNode::End => {}
            LocalTreeNode::Send { to, branches } => {
                for b in branches {
                    out.push(Action::send(
                        role.clone(),
                        to.clone(),
                        b.label.clone(),
                        b.sort.clone(),
                    ));
                }
            }
            LocalTreeNode::Recv { from, branches } => {
                if let Some((label, sort)) = config.queues.peek(from, role) {
                    if branches
                        .iter()
                        .any(|b| &b.label == label && &b.sort == sort)
                    {
                        out.push(Action::recv(
                            role.clone(),
                            from.clone(),
                            label.clone(),
                            sort.clone(),
                        ));
                    }
                }
            }
        }
    }
    out.retain(|a| local_step(config, a).is_some());
    out
}

/// Runs `trace` from `config`, returning the final configuration if every
/// action is enabled in sequence.
pub fn run_local_trace(config: &Configuration, trace: &Trace) -> Option<Configuration> {
    let mut current = config.clone();
    for action in trace.iter() {
        current = local_step(&current, action)?;
    }
    Some(current)
}

/// Checks whether `trace` is admissible as a prefix of an execution of the
/// configuration (Definition 3.20, restricted to finite prefixes).
pub fn is_local_trace_prefix(config: &Configuration, trace: &Trace) -> bool {
    run_local_trace(config, trace).is_some()
}

/// Enumerates every admissible trace prefix of length at most `depth`
/// starting from `config`; the executable counterpart of the coinductive
/// `trl` relation.
pub fn local_traces_up_to(config: &Configuration, depth: usize) -> BTreeSet<Trace> {
    let mut out = BTreeSet::new();
    let mut queue: VecDeque<(Configuration, Trace)> = VecDeque::new();
    queue.push_back((config.clone(), Trace::empty()));
    while let Some((state, trace)) = queue.pop_front() {
        out.insert(trace.clone());
        if trace.len() >= depth {
            continue;
        }
        for action in enabled_local_actions(&state) {
            if let Some(next) = local_step(&state, &action) {
                queue.push_back((next, trace.snoc(action)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::syntax::LocalType;
    use crate::local::unravel::unravel_local;

    fn r(name: &str) -> Role {
        Role::new(name)
    }
    fn l(name: &str) -> Label {
        Label::new(name)
    }

    /// The configuration of Example 3.12 before p's message is delivered:
    /// E(p) = ?[q];l(S). ?[q];l(S) ... , E(q) = ?[p];l(S). !(p);l(S) ...,
    /// Q(p,q) = [(l, S)].
    fn example_3_12() -> Configuration {
        let p_tree = unravel_local(&LocalType::rec(LocalType::recv1(
            r("q"),
            "l",
            Sort::Nat,
            LocalType::var(0),
        )))
        .unwrap();
        let q_tree = unravel_local(&LocalType::recv1(
            r("p"),
            "l",
            Sort::Nat,
            LocalType::rec(LocalType::send1(r("p"), "l", Sort::Nat, LocalType::var(0))),
        ))
        .unwrap();
        let mut env = LocalEnv::new();
        env.insert(r("p"), p_tree);
        env.insert(r("q"), q_tree);
        let mut queues = QueueEnv::empty();
        queues.enq(&r("p"), &r("q"), l("l"), Sort::Nat);
        Configuration { env, queues }
    }

    #[test]
    fn queue_env_is_fifo() {
        let mut q = QueueEnv::empty();
        q.enq(&r("p"), &r("q"), l("a"), Sort::Nat);
        q.enq(&r("p"), &r("q"), l("b"), Sort::Bool);
        assert_eq!(q.total_messages(), 2);
        assert_eq!(q.peek(&r("p"), &r("q")).unwrap().0, l("a"));
        assert_eq!(q.deq(&r("p"), &r("q")).unwrap().0, l("a"));
        assert_eq!(q.deq(&r("p"), &r("q")).unwrap().0, l("b"));
        assert_eq!(q.deq(&r("p"), &r("q")), None);
        assert!(q.is_empty());
    }

    #[test]
    fn queues_are_per_ordered_pair() {
        let mut q = QueueEnv::empty();
        q.enq(&r("p"), &r("q"), l("a"), Sort::Nat);
        assert!(q.peek(&r("q"), &r("p")).is_none());
        assert_eq!(q.queue(&r("p"), &r("q")).len(), 1);
        assert!(q.queue(&r("q"), &r("p")).is_empty());
    }

    #[test]
    fn l_step_send_enqueues_and_advances() {
        // E(p) = ![q];l(nat).end, E(q) = ?[p];l(nat).end, empty queues.
        let mut env = LocalEnv::new();
        env.insert(
            r("p"),
            unravel_local(&LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)).unwrap(),
        );
        env.insert(
            r("q"),
            unravel_local(&LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End)).unwrap(),
        );
        let c0 = Configuration::initial(env);
        assert!(!c0.is_terminal());

        let send = Action::send(r("p"), r("q"), l("l"), Sort::Nat);
        let recv = send.dual();

        // The receive is not enabled before the send.
        assert!(local_step(&c0, &recv).is_none());

        let c1 = local_step(&c0, &send).expect("send enabled");
        assert_eq!(c1.queues.total_messages(), 1);
        assert!(c1.env.get(&r("p")).unwrap().is_ended());

        let c2 = local_step(&c1, &recv).expect("recv enabled after send");
        assert!(c2.is_terminal());
    }

    #[test]
    fn l_step_recv_requires_queue_head_to_match() {
        let mut env = LocalEnv::new();
        env.insert(
            r("q"),
            unravel_local(&LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End)).unwrap(),
        );
        let mut queues = QueueEnv::empty();
        queues.enq(&r("p"), &r("q"), l("other"), Sort::Nat);
        let c = Configuration { env, queues };
        let recv = Action::recv(r("q"), r("p"), l("l"), Sort::Nat);
        assert!(local_step(&c, &recv).is_none());
        assert!(enabled_local_actions(&c).is_empty());
    }

    #[test]
    fn example_3_12_configuration_steps() {
        let c = example_3_12();
        // q can receive the enqueued message; p cannot do anything yet.
        let enabled = enabled_local_actions(&c);
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0], Action::recv(r("q"), r("p"), l("l"), Sort::Nat));
        let c1 = local_step(&c, &enabled[0]).unwrap();
        // Now q sends to p forever: q's send and afterwards p's receive.
        let q_sends = Action::send(r("q"), r("p"), l("l"), Sort::Nat);
        let c2 = local_step(&c1, &q_sends).expect("q send enabled");
        let p_recvs = q_sends.dual();
        let c3 = local_step(&c2, &p_recvs).expect("p recv enabled");
        assert!(!c3.is_terminal());
    }

    #[test]
    fn trace_running_and_enumeration() {
        let mut env = LocalEnv::new();
        env.insert(
            r("p"),
            unravel_local(&LocalType::send1(r("q"), "l", Sort::Nat, LocalType::End)).unwrap(),
        );
        env.insert(
            r("q"),
            unravel_local(&LocalType::recv1(r("p"), "l", Sort::Nat, LocalType::End)).unwrap(),
        );
        let c0 = Configuration::initial(env);
        let send = Action::send(r("p"), r("q"), l("l"), Sort::Nat);
        let full = Trace::from(vec![send.clone(), send.dual()]);
        assert!(is_local_trace_prefix(&c0, &full));
        assert!(run_local_trace(&c0, &full).unwrap().is_terminal());

        let traces = local_traces_up_to(&c0, 2);
        assert_eq!(traces.len(), 3);
        assert!(traces.contains(&full));
    }

    #[test]
    fn env_accessors() {
        let c = example_3_12();
        assert_eq!(c.env.len(), 2);
        assert!(!c.env.is_empty());
        assert_eq!(c.env.roles().len(), 2);
        assert!(c.env.get(&r("nobody")).is_none());
        assert!(!c.env.all_ended());
    }
}
