//! Protocol generators: the paper's named case-study protocols and scalable
//! families used by the test-suite and the benchmark harness (experiment B1
//! of `DESIGN.md`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::label::Label;
use crate::common::role::Role;
use crate::common::sort::Sort;
use crate::global::syntax::GlobalType;

/// The ring protocol of §2.3: `Alice -> Bob -> Carol -> Alice`, one `nat`
/// message each, then `end`.
pub fn ring3() -> GlobalType {
    ring(&["Alice", "Bob", "Carol"])
}

/// A single-round ring over the given roles: each role forwards one `nat`
/// message to the next, and the last one closes the ring back to the first.
///
/// # Panics
///
/// Panics if fewer than two roles are given.
pub fn ring(names: &[&str]) -> GlobalType {
    assert!(names.len() >= 2, "a ring needs at least two roles");
    let roles: Vec<Role> = names.iter().map(Role::new).collect();
    let mut g = GlobalType::msg1(
        roles[roles.len() - 1].clone(),
        roles[0].clone(),
        "l",
        Sort::Nat,
        GlobalType::End,
    );
    for i in (0..roles.len() - 1).rev() {
        g = GlobalType::msg1(roles[i].clone(), roles[i + 1].clone(), "l", Sort::Nat, g);
    }
    g
}

/// A single-round ring over `n` generated roles `w0 ... w{n-1}`.
pub fn ring_n(n: usize) -> GlobalType {
    let names: Vec<String> = (0..n).map(|i| format!("w{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    ring(&refs)
}

/// The recursive pipeline of §5.1:
/// `mu X. Alice -> Bob : l(nat). Bob -> Carol : l(nat). X`.
pub fn pipeline() -> GlobalType {
    pipeline_named(&["Alice", "Bob", "Carol"])
}

/// A recursive pipeline over the given roles: each round, every role forwards
/// one `nat` message to the next one, forever.
///
/// # Panics
///
/// Panics if fewer than two roles are given.
pub fn pipeline_named(names: &[&str]) -> GlobalType {
    assert!(names.len() >= 2, "a pipeline needs at least two roles");
    let roles: Vec<Role> = names.iter().map(Role::new).collect();
    let mut g = GlobalType::var(0);
    for i in (0..roles.len() - 1).rev() {
        g = GlobalType::msg1(roles[i].clone(), roles[i + 1].clone(), "l", Sort::Nat, g);
    }
    GlobalType::rec(g)
}

/// A recursive pipeline over `n` generated roles `w0 ... w{n-1}` (experiment
/// family `chain(n)`).
pub fn chain_n(n: usize) -> GlobalType {
    let names: Vec<String> = (0..n).map(|i| format!("w{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    pipeline_named(&refs)
}

/// The ping-pong protocol of §5.1:
/// `mu X. Alice -> Bob : { l1(unit). end ; l2(nat). Bob -> Alice : l3(nat). X }`.
pub fn ping_pong() -> GlobalType {
    GlobalType::rec(GlobalType::msg(
        Role::new("Alice"),
        Role::new("Bob"),
        vec![
            (Label::new("l1"), Sort::Unit, GlobalType::End),
            (
                Label::new("l2"),
                Sort::Nat,
                GlobalType::msg1(
                    Role::new("Bob"),
                    Role::new("Alice"),
                    "l3",
                    Sort::Nat,
                    GlobalType::var(0),
                ),
            ),
        ],
    ))
}

/// The two-buyer protocol of §5.2 / Figure 10.
pub fn two_buyer() -> GlobalType {
    let a = Role::new("A");
    let b = Role::new("B");
    let s = Role::new("S");
    let b_chooses = GlobalType::msg(
        b.clone(),
        s.clone(),
        vec![
            (
                Label::new("Accept"),
                Sort::Nat,
                GlobalType::msg1(s.clone(), b.clone(), "Date", Sort::Nat, GlobalType::End),
            ),
            (Label::new("Reject"), Sort::Unit, GlobalType::End),
        ],
    );
    GlobalType::msg1(
        a.clone(),
        s.clone(),
        "ItemId",
        Sort::Nat,
        GlobalType::msg1(
            s.clone(),
            a.clone(),
            "Quote",
            Sort::Nat,
            GlobalType::msg1(
                s,
                b.clone(),
                "Quote",
                Sort::Nat,
                GlobalType::msg1(a, b, "Propose", Sort::Nat, b_chooses),
            ),
        ),
    )
}

/// A fan-out protocol: a hub sends one `nat` message to each of `n` workers
/// in turn, then every worker acknowledges back in the same order.
pub fn fanout_n(n: usize) -> GlobalType {
    assert!(n >= 1, "fan-out needs at least one worker");
    let hub = Role::new("hub");
    let workers: Vec<Role> = (0..n).map(|i| Role::new(format!("w{i}"))).collect();
    let mut g = GlobalType::End;
    for w in workers.iter().rev() {
        g = GlobalType::msg1(w.clone(), hub.clone(), "ack", Sort::Unit, g);
    }
    for w in workers.iter().rev() {
        g = GlobalType::msg1(hub.clone(), w.clone(), "task", Sort::Nat, g);
    }
    g
}

/// A two-party protocol with nested binary choices of the given depth: at
/// each level `p` chooses between `left` and `right` before continuing. The
/// resulting type has `2^depth` leaves, which stresses projection and the
/// trace-set enumeration.
pub fn branching(depth: usize) -> GlobalType {
    fn go(depth: usize) -> GlobalType {
        if depth == 0 {
            return GlobalType::msg1(Role::new("q"), Role::new("p"), "done", Sort::Unit, GlobalType::End);
        }
        GlobalType::msg(
            Role::new("p"),
            Role::new("q"),
            vec![
                (Label::new("left"), Sort::Nat, go(depth - 1)),
                (Label::new("right"), Sort::Bool, go(depth - 1)),
            ],
        )
    }
    go(depth)
}

/// Parameters for the random protocol generator.
#[derive(Debug, Clone)]
pub struct RandomProtocol {
    /// Number of distinct roles to draw senders/receivers from.
    pub roles: usize,
    /// Maximum nesting depth of messages.
    pub depth: usize,
    /// Maximum number of branches of a choice.
    pub max_branches: usize,
    /// Probability (0..=100) that a subterm at non-zero depth recurses back
    /// to an enclosing binder rather than terminating.
    pub loop_back_percent: u32,
}

impl Default for RandomProtocol {
    fn default() -> Self {
        RandomProtocol {
            roles: 3,
            depth: 4,
            max_branches: 2,
            loop_back_percent: 25,
        }
    }
}

/// Generates a pseudo-random well-formed global type from a seed.
///
/// The generated types are always guarded and closed, use distinct labels
/// inside every choice and never make a role talk to itself; they are *not*
/// guaranteed to be projectable, which is exactly what the property-based
/// tests need (projectability is the hypothesis they filter on).
pub fn random_global(seed: u64, params: &RandomProtocol) -> GlobalType {
    let mut rng = StdRng::seed_from_u64(seed);
    let roles: Vec<Role> = (0..params.roles.max(2))
        .map(|i| Role::new(format!("r{i}")))
        .collect();
    let g = gen_rec(&mut rng, params, &roles, params.depth, 0);
    // The outermost generated binder may be useless (no loop back); wrapping
    // happens inside gen_rec, so the result is closed by construction.
    debug_assert!(g.well_formed().is_ok(), "generator produced {g}");
    g
}

fn gen_rec(
    rng: &mut StdRng,
    params: &RandomProtocol,
    roles: &[Role],
    depth: usize,
    binders: u32,
) -> GlobalType {
    // Decide whether to introduce a recursion binder at this level.
    if depth > 0 && depth == params.depth && rng.gen_bool(0.5) {
        let body = gen_msg(rng, params, roles, depth, binders + 1);
        // Guardedness holds because gen_msg always produces a message.
        return GlobalType::rec(body);
    }
    gen_msg(rng, params, roles, depth, binders)
}

fn gen_msg(
    rng: &mut StdRng,
    params: &RandomProtocol,
    roles: &[Role],
    depth: usize,
    binders: u32,
) -> GlobalType {
    if depth == 0 {
        return GlobalType::End;
    }
    let from_idx = rng.gen_range(0..roles.len());
    let mut to_idx = rng.gen_range(0..roles.len());
    if to_idx == from_idx {
        to_idx = (to_idx + 1) % roles.len();
    }
    let n_branches = rng.gen_range(1..=params.max_branches.max(1));
    let sorts = [Sort::Nat, Sort::Int, Sort::Bool, Sort::Unit];
    let branches = (0..n_branches)
        .map(|i| {
            let cont = if binders > 0
                && depth > 1
                && rng.gen_range(0..100) < params.loop_back_percent
            {
                GlobalType::var(rng.gen_range(0..binders))
            } else {
                gen_msg(rng, params, roles, depth - 1, binders)
            };
            (
                Label::new(format!("l{i}")),
                sorts[rng.gen_range(0..sorts.len())].clone(),
                cont,
            )
        })
        .collect::<Vec<_>>();
    GlobalType::msg(roles[from_idx].clone(), roles[to_idx].clone(), branches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::iproject::project_all;

    #[test]
    fn named_protocols_are_well_formed() {
        for (name, g) in [
            ("ring3", ring3()),
            ("pipeline", pipeline()),
            ("ping_pong", ping_pong()),
            ("two_buyer", two_buyer()),
        ] {
            assert!(g.well_formed().is_ok(), "{name} ill-formed");
        }
    }

    #[test]
    fn named_protocols_are_projectable() {
        for (name, g) in [
            ("ring3", ring3()),
            ("pipeline", pipeline()),
            ("ping_pong", ping_pong()),
            ("two_buyer", two_buyer()),
        ] {
            assert!(project_all(&g).is_ok(), "{name} not projectable");
        }
    }

    #[test]
    fn ring_has_one_exchange_per_role() {
        let g = ring_n(5);
        assert_eq!(g.participants().len(), 5);
        assert_eq!(g.size(), 6); // five messages plus end
    }

    #[test]
    fn chain_is_recursive_and_scales() {
        let g = chain_n(4);
        assert_eq!(g.participants().len(), 4);
        assert!(matches!(g, GlobalType::Rec(_)));
        assert!(project_all(&g).is_ok());
    }

    #[test]
    fn fanout_involves_hub_and_workers() {
        let g = fanout_n(3);
        assert_eq!(g.participants().len(), 4);
        assert!(project_all(&g).is_ok());
    }

    #[test]
    fn branching_grows_exponentially() {
        assert!(branching(3).size() > branching(2).size() * 2 - 2);
        assert!(project_all(&branching(3)).is_ok());
    }

    #[test]
    fn ring_rejects_degenerate_sizes() {
        let result = std::panic::catch_unwind(|| ring_n(1));
        assert!(result.is_err());
    }

    #[test]
    fn random_protocols_are_well_formed_and_deterministic() {
        let params = RandomProtocol::default();
        for seed in 0..50 {
            let g1 = random_global(seed, &params);
            let g2 = random_global(seed, &params);
            assert_eq!(g1, g2, "generator must be deterministic per seed");
            assert!(g1.well_formed().is_ok(), "seed {seed} produced {g1}");
        }
    }

    #[test]
    fn random_protocols_exercise_recursion() {
        let params = RandomProtocol {
            roles: 3,
            depth: 5,
            max_branches: 2,
            loop_back_percent: 60,
        };
        let any_recursive = (0..50).any(|seed| {
            matches!(random_global(seed, &params), GlobalType::Rec(_))
        });
        assert!(any_recursive, "expected at least one recursive protocol");
    }
}
