//! Semantic global trees (Definition 3.2 / A.4 / A.7, `Global/Tree.v`).
//!
//! A guarded, closed global type denotes a *regular* (possibly infinite) tree
//! obtained by unfolding recursion forever. The paper represents that tree
//! with the coinductive datatype `rg_ty`; here we represent it with a finite
//! graph: an arena of nodes, where back-edges stand for the infinitely
//! repeating parts. The "message in flight" constructor (`p ~l~> q`) is *not*
//! part of these trees — exactly as in the Coq development (`rg_ty` versus
//! `ig_ty`, Remark A.6) it only appears in execution prefixes
//! ([`GlobalPrefix`](crate::global::GlobalPrefix)).

use std::collections::{BTreeSet, HashSet, VecDeque};
use std::fmt;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::common::branch::Branch;
use crate::common::role::{Role, RoleSet};
pub use crate::common::arena::NodeId;

/// One node of a semantic global tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GlobalTreeNode {
    /// The terminated protocol `end_c`.
    End,
    /// A message that is yet to be sent: `p -> q : { l_i(S_i). G_i }`.
    Msg {
        /// The sending participant.
        from: Role,
        /// The receiving participant.
        to: Role,
        /// The alternatives; continuations are node ids in the same arena.
        branches: Vec<Branch<NodeId>>,
    },
}

impl GlobalTreeNode {
    /// Returns `true` if the node is `end_c`.
    pub fn is_end(&self) -> bool {
        matches!(self, GlobalTreeNode::End)
    }
}

/// A semantic global tree: the regular tree denoted by a closed, guarded
/// global type, represented as a finite graph.
///
/// Build one with [`unravel_global`](crate::global::unravel_global); inspect
/// it through [`GlobalTree::node`] starting from [`GlobalTree::root`].
///
/// # Examples
///
/// ```
/// use zooid_mpst::global::{unravel_global, GlobalType, GlobalTreeNode};
/// use zooid_mpst::{Label, Role, Sort};
///
/// let g = GlobalType::rec(GlobalType::msg1(
///     Role::new("p"), Role::new("q"), "l", Sort::Nat, GlobalType::var(0)));
/// let tree = unravel_global(&g).unwrap();
/// // The infinite unfolding is a single message node looping on itself.
/// match tree.node(tree.root()) {
///     GlobalTreeNode::Msg { branches, .. } => assert_eq!(branches[0].cont, tree.root()),
///     GlobalTreeNode::End => unreachable!(),
/// }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalTree {
    nodes: Vec<GlobalTreeNode>,
    root: NodeId,
    /// Lazily computed role table and per-node participation sets (the
    /// paper's `part_of`, answered in O(1) once built). Lazy so that callers
    /// that never project — e.g. plain unravelling — do not pay for it.
    #[serde(skip)]
    tables: OnceLock<RoleTables>,
}

/// The derived role data of a tree: the sorted role table and, per node, the
/// set of roles reachable from it.
#[derive(Debug, Clone)]
struct RoleTables {
    roles: Vec<Role>,
    participation: Vec<RoleSet>,
}

impl PartialEq for GlobalTree {
    fn eq(&self, other: &Self) -> bool {
        // The tables are derived from the nodes; compare the structure only.
        self.nodes == other.nodes && self.root == other.root
    }
}

impl Eq for GlobalTree {}

impl GlobalTree {
    /// Creates a tree from its arena and root. Used by the unraveller; not
    /// exposed publicly because arbitrary arenas need not be well-formed.
    pub(crate) fn from_parts(nodes: Vec<GlobalTreeNode>, root: NodeId) -> Self {
        GlobalTree {
            nodes,
            root,
            tables: OnceLock::new(),
        }
    }

    fn tables(&self) -> &RoleTables {
        self.tables.get_or_init(|| {
            let mut role_set: BTreeSet<Role> = BTreeSet::new();
            for node in &self.nodes {
                if let GlobalTreeNode::Msg { from, to, .. } = node {
                    role_set.insert(from.clone());
                    role_set.insert(to.clone());
                }
            }
            let roles: Vec<Role> = role_set.into_iter().collect();
            let index = |role: &Role| roles.binary_search(role).expect("role is in the table");

            // Fixpoint: participation[n] = mentions(n) ∪ ⋃ participation[child].
            // Nodes are allocated in DFS preorder, so a reverse sweep converges
            // in one pass for forward edges; repeat sweeps absorb back edges.
            let mut participation: Vec<RoleSet> = self
                .nodes
                .iter()
                .map(|node| match node {
                    GlobalTreeNode::End => RoleSet::new(),
                    GlobalTreeNode::Msg { from, to, .. } => {
                        [index(from), index(to)].into_iter().collect()
                    }
                })
                .collect();
            let mut changed = true;
            while changed {
                changed = false;
                for i in (0..self.nodes.len()).rev() {
                    if let GlobalTreeNode::Msg { branches, .. } = &self.nodes[i] {
                        for b in branches {
                            if b.cont.index() != i {
                                let child = participation[b.cont.index()].clone();
                                if !child.is_subset(&participation[i]) {
                                    participation[i].union_with(&child);
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            RoleTables {
                roles,
                participation,
            }
        })
    }

    /// The sorted role table of the tree. [`RoleSet`]s over this tree use
    /// positions in this slice as indices.
    pub fn role_table(&self) -> &[Role] {
        &self.tables().roles
    }

    /// The index of a role in [`GlobalTree::role_table`], if it occurs in the
    /// tree.
    pub fn role_index(&self, role: &Role) -> Option<usize> {
        self.tables().roles.binary_search(role).ok()
    }

    /// The participation set of a node: every role occurring reachable from
    /// it, as a [`RoleSet`] over this tree's role table.
    pub fn participation(&self, node: NodeId) -> &RoleSet {
        &self.tables().participation[node.index()]
    }

    /// [`GlobalTree::part_of`] for a pre-resolved role index (see
    /// [`GlobalTree::role_index`]); the hot checkers resolve the role once
    /// and query by index.
    #[inline]
    pub fn part_of_index(&self, role_index: usize, node: NodeId) -> bool {
        self.tables().participation[node.index()].contains(role_index)
    }

    /// The root node of the tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree's arena.
    pub fn node(&self, id: NodeId) -> &GlobalTreeNode {
        &self.nodes[id.index()]
    }

    /// Number of distinct nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the arena is empty (never the case for trees built
    /// by the unraveller, which always contain at least the root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over `(id, node)` pairs of the arena.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &GlobalTreeNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i), n))
    }

    /// All node ids reachable from `start` (including `start`).
    pub fn reachable_from(&self, start: NodeId) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([start]);
        while let Some(id) = queue.pop_front() {
            if !seen.insert(id) {
                continue;
            }
            if let GlobalTreeNode::Msg { branches, .. } = self.node(id) {
                for b in branches {
                    queue.push_back(b.cont);
                }
            }
        }
        seen
    }

    /// The participants occurring anywhere in the tree reachable from the
    /// root.
    ///
    /// Every node the unraveller allocates is reachable from the root, so
    /// this is exactly the role table.
    pub fn participants(&self) -> BTreeSet<Role> {
        let tables = self.tables();
        tables.participation[self.root.index()]
            .iter()
            .map(|i| tables.roles[i].clone())
            .collect()
    }

    /// The paper's `part_of` predicate (Definition A.18): `role` occurs as a
    /// sender or receiver somewhere reachable from `node`.
    ///
    /// O(1): answered from the precomputed participation table.
    pub fn part_of(&self, role: &Role, node: NodeId) -> bool {
        let tables = self.tables();
        tables
            .roles
            .binary_search(role)
            .is_ok_and(|i| tables.participation[node.index()].contains(i))
    }

    /// Coinductive tree equality (bisimilarity) between a node of `self` and
    /// a node of `other`.
    ///
    /// Two nodes are bisimilar when they are both `end_c`, or both messages
    /// between the same participants offering the same labelled alternatives
    /// (same sorts) with pairwise bisimilar continuations. On the finite
    /// graphs used here this greatest fixed point is computed by assuming
    /// every revisited pair.
    pub fn bisimilar(&self, this: NodeId, other: &GlobalTree, that: NodeId) -> bool {
        let mut assumed: HashSet<(NodeId, NodeId)> = HashSet::new();
        self.bisim_rec(this, other, that, &mut assumed)
    }

    fn bisim_rec(
        &self,
        a: NodeId,
        other: &GlobalTree,
        b: NodeId,
        assumed: &mut HashSet<(NodeId, NodeId)>,
    ) -> bool {
        if !assumed.insert((a, b)) {
            return true;
        }
        match (self.node(a), other.node(b)) {
            (GlobalTreeNode::End, GlobalTreeNode::End) => true,
            (
                GlobalTreeNode::Msg {
                    from: f1,
                    to: t1,
                    branches: bs1,
                },
                GlobalTreeNode::Msg {
                    from: f2,
                    to: t2,
                    branches: bs2,
                },
            ) => {
                if f1 != f2 || t1 != t2 || bs1.len() != bs2.len() {
                    return false;
                }
                bs1.iter().all(|b1| {
                    bs2.iter()
                        .find(|b2| b2.label == b1.label)
                        .is_some_and(|b2| {
                            b1.sort == b2.sort && self.bisim_rec(b1.cont, other, b2.cont, assumed)
                        })
                })
            }
            _ => false,
        }
    }
}

impl fmt::Display for GlobalTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "global tree (root {}):", self.root)?;
        for (id, node) in self.iter() {
            match node {
                GlobalTreeNode::End => writeln!(f, "  {id}: end")?,
                GlobalTreeNode::Msg { from, to, branches } => {
                    write!(f, "  {id}: {from}->{to}:{{")?;
                    for (i, b) in branches.iter().enumerate() {
                        if i > 0 {
                            f.write_str("; ")?;
                        }
                        write!(f, "{}({}) -> {}", b.label, b.sort, b.cont)?;
                    }
                    writeln!(f, "}}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::label::Label;
    use crate::common::sort::Sort;
    use crate::global::syntax::GlobalType;
    use crate::global::unravel::unravel_global;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn loop_tree() -> GlobalTree {
        let g = GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::var(0),
        ));
        unravel_global(&g).unwrap()
    }

    #[test]
    fn recursive_type_unravels_to_a_cycle() {
        let t = loop_tree();
        assert_eq!(t.len(), 1);
        match t.node(t.root()) {
            GlobalTreeNode::Msg { branches, .. } => assert_eq!(branches[0].cont, t.root()),
            GlobalTreeNode::End => panic!("expected message node"),
        }
    }

    #[test]
    fn part_of_holds_only_for_participants() {
        let t = loop_tree();
        assert!(t.part_of(&r("p"), t.root()));
        assert!(t.part_of(&r("q"), t.root()));
        assert!(!t.part_of(&r("r"), t.root()));
        assert_eq!(t.participants().len(), 2);
    }

    #[test]
    fn bisimilarity_identifies_unfoldings() {
        // mu X. p->q:l(nat).X  and  p->q:l(nat). mu X. p->q:l(nat).X denote
        // the same tree ([g-unr-rec]); their unravellings must be bisimilar.
        let g1 = GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::var(0),
        ));
        let g2 = g1.unfold_once();
        let t1 = unravel_global(&g1).unwrap();
        let t2 = unravel_global(&g2).unwrap();
        assert!(t1.bisimilar(t1.root(), &t2, t2.root()));
        assert!(t2.bisimilar(t2.root(), &t1, t1.root()));
    }

    #[test]
    fn bisimilarity_distinguishes_different_labels() {
        let mk = |label: &str| {
            unravel_global(&GlobalType::msg1(
                r("p"),
                r("q"),
                label,
                Sort::Nat,
                GlobalType::End,
            ))
            .unwrap()
        };
        let t1 = mk("a");
        let t2 = mk("b");
        assert!(!t1.bisimilar(t1.root(), &t2, t2.root()));
    }

    #[test]
    fn bisimilarity_distinguishes_sorts_and_roles() {
        let base = unravel_global(&GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::End,
        ))
        .unwrap();
        let other_sort = unravel_global(&GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Bool,
            GlobalType::End,
        ))
        .unwrap();
        let other_role = unravel_global(&GlobalType::msg1(
            r("p"),
            r("x"),
            "l",
            Sort::Nat,
            GlobalType::End,
        ))
        .unwrap();
        assert!(!base.bisimilar(base.root(), &other_sort, other_sort.root()));
        assert!(!base.bisimilar(base.root(), &other_role, other_role.root()));
    }

    #[test]
    fn branching_choices_keep_distinct_continuations() {
        let g = GlobalType::msg(
            r("p"),
            r("q"),
            vec![
                (Label::new("a"), Sort::Nat, GlobalType::End),
                (
                    Label::new("b"),
                    Sort::Nat,
                    GlobalType::msg1(r("q"), r("p"), "c", Sort::Bool, GlobalType::End),
                ),
            ],
        );
        let t = unravel_global(&g).unwrap();
        assert!(t.len() >= 3);
        let reach = t.reachable_from(t.root());
        assert_eq!(reach.len(), t.len());
        assert!(!t.is_empty());
    }

    #[test]
    fn display_lists_all_nodes() {
        let t = loop_tree();
        let s = t.to_string();
        assert!(s.contains("p->q"));
        assert!(s.contains("root"));
    }
}
