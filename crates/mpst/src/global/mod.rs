//! Global session types and their semantics.
//!
//! Mirrors the `Global/` folder of the Coq development:
//!
//! * [`syntax`] — inductive global types (`Global/Syntax.v`);
//! * [`tree`] — semantic global trees (`Global/Tree.v`);
//! * [`unravel`] — the unravelling relation between them (`Global/Unravel.v`);
//! * [`prefix`] — execution prefixes with in-flight messages (the paper's
//!   `ig_ty`, Remark A.6);
//! * [`semantics`] — the labelled transition system and trace admissibility
//!   (`Global/Semantics.v`).

pub mod prefix;
pub mod semantics;
pub mod syntax;
pub mod tree;
pub mod unravel;

pub use prefix::GlobalPrefix;
pub use semantics::{
    enabled_global_actions, global_step, global_step_enabled, global_traces_from,
    global_traces_up_to, is_global_trace_prefix, run_global_trace,
};
pub use syntax::GlobalType;
pub use tree::{GlobalTree, GlobalTreeNode, NodeId};
pub use unravel::{g_unravels_to, unravel_global};
