//! Inductive syntax of global types (Definition 3.1 / A.1, `Global/Syntax.v`).

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::common::branch::{branches_from, check_branches, Branch};
use crate::common::label::Label;
use crate::common::role::Role;
use crate::common::sort::Sort;
use crate::error::{Error, Result};

/// A global session type.
///
/// ```text
/// G ::= end | X | mu X. G | p -> q : { l_i(S_i). G_i }_{i in I}
/// ```
///
/// Recursion binders use de Bruijn indices, as in the Coq development
/// (`Var(0)` is bound by the innermost enclosing [`GlobalType::Rec`]). The
/// paper's well-formedness assumptions — guarded recursion, closed types,
/// non-empty choices with distinct labels and no self-communication — are
/// checked by [`GlobalType::well_formed`] (the Coq `g_precond`).
///
/// # Examples
///
/// Building the recursive pipeline of §5.1:
///
/// ```
/// use zooid_mpst::global::GlobalType;
/// use zooid_mpst::{Label, Role, Sort};
///
/// // pipeline = mu X. Alice -> Bob : l(nat). Bob -> Carol : l(nat). X
/// let pipeline = GlobalType::rec(GlobalType::msg(
///     Role::new("Alice"),
///     Role::new("Bob"),
///     vec![(Label::new("l"), Sort::Nat, GlobalType::msg(
///         Role::new("Bob"),
///         Role::new("Carol"),
///         vec![(Label::new("l"), Sort::Nat, GlobalType::var(0))],
///     ))],
/// ));
/// assert!(pipeline.well_formed().is_ok());
/// assert_eq!(pipeline.participants().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GlobalType {
    /// The terminated protocol `end`.
    End,
    /// A recursion variable, as a de Bruijn index.
    Var(u32),
    /// A recursive protocol `mu X. G`.
    Rec(Box<GlobalType>),
    /// A message exchange `p -> q : { l_i(S_i). G_i }`.
    Msg {
        /// The sending participant `p`.
        from: Role,
        /// The receiving participant `q`.
        to: Role,
        /// The alternatives offered by the sender.
        branches: Vec<Branch<GlobalType>>,
    },
}

impl GlobalType {
    /// Builds a message type from `(label, sort, continuation)` triples.
    pub fn msg(
        from: Role,
        to: Role,
        branches: impl IntoIterator<Item = (Label, Sort, GlobalType)>,
    ) -> Self {
        GlobalType::Msg {
            from,
            to,
            branches: branches_from(branches),
        }
    }

    /// Builds a single-branch message type `from -> to : label(sort). cont`.
    pub fn msg1(from: Role, to: Role, label: impl Into<Label>, sort: Sort, cont: GlobalType) -> Self {
        GlobalType::msg(from, to, [(label.into(), sort, cont)])
    }

    /// Builds the recursive type `mu X. body`.
    pub fn rec(body: GlobalType) -> Self {
        GlobalType::Rec(Box::new(body))
    }

    /// Builds the recursion variable with de Bruijn index `index`.
    pub fn var(index: u32) -> Self {
        GlobalType::Var(index)
    }

    /// The participants (`prts`) of the global type, i.e. every role that
    /// occurs as a sender or receiver.
    pub fn participants(&self) -> BTreeSet<Role> {
        let mut out = BTreeSet::new();
        self.collect_participants(&mut out);
        out
    }

    fn collect_participants(&self, out: &mut BTreeSet<Role>) {
        match self {
            GlobalType::End | GlobalType::Var(_) => {}
            GlobalType::Rec(body) => body.collect_participants(out),
            GlobalType::Msg { from, to, branches } => {
                out.insert(from.clone());
                out.insert(to.clone());
                for b in branches {
                    b.cont.collect_participants(out);
                }
            }
        }
    }

    /// The set of free recursion variables (`g_fidx`), as de Bruijn indices
    /// relative to the outside of the term.
    pub fn free_vars(&self) -> BTreeSet<u32> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(0, &mut out);
        out
    }

    fn collect_free_vars(&self, depth: u32, out: &mut BTreeSet<u32>) {
        match self {
            GlobalType::End => {}
            GlobalType::Var(i) => {
                if *i >= depth {
                    out.insert(*i - depth);
                }
            }
            GlobalType::Rec(body) => body.collect_free_vars(depth + 1, out),
            GlobalType::Msg { branches, .. } => {
                for b in branches {
                    b.cont.collect_free_vars(depth, out);
                }
            }
        }
    }

    /// Returns `true` if the type has no free recursion variables
    /// (`g_closed`, Definition A.3).
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Returns `true` if every recursion binder is guarded (`guarded`,
    /// Definition A.2): the body of a `mu` is neither a bare variable nor a
    /// chain of `mu`s ending in a bare variable.
    pub fn is_guarded(&self) -> bool {
        match self {
            GlobalType::End | GlobalType::Var(_) => true,
            GlobalType::Rec(body) => !body.is_pure_rec() && body.is_guarded(),
            GlobalType::Msg { branches, .. } => branches.iter().all(|b| b.cont.is_guarded()),
        }
    }

    /// Returns `true` if the type is `mu Y1 ... mu Yn. X` or a bare variable
    /// (the paper's `not_pure_rec` is the negation of this).
    fn is_pure_rec(&self) -> bool {
        match self {
            GlobalType::Var(_) => true,
            GlobalType::Rec(body) => body.is_pure_rec(),
            _ => false,
        }
    }

    /// Checks the `g_precond` of the Coq development: the type is guarded,
    /// closed, and every choice is non-empty with pairwise distinct labels
    /// and distinct sender/receiver.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition as an [`Error`].
    pub fn well_formed(&self) -> Result<()> {
        if !self.is_guarded() {
            return Err(Error::Unguarded {
                context: self.to_string(),
            });
        }
        if let Some(&i) = self.free_vars().iter().next() {
            return Err(Error::UnboundVariable { index: i });
        }
        self.check_choices()
    }

    fn check_choices(&self) -> Result<()> {
        match self {
            GlobalType::End | GlobalType::Var(_) => Ok(()),
            GlobalType::Rec(body) => body.check_choices(),
            GlobalType::Msg { from, to, branches } => {
                if from == to {
                    return Err(Error::SelfCommunication { role: from.clone() });
                }
                check_branches(branches)?;
                for b in branches {
                    b.cont.check_choices()?;
                }
                Ok(())
            }
        }
    }

    /// Capture-avoiding substitution of the outermost recursion variable:
    /// `self.subst_top(repl)` is `self[X0 := repl]` where `X0` is de Bruijn
    /// index `0` at the top level of `self`.
    ///
    /// This is only used to unfold *closed* recursive types, so `repl` is
    /// always closed and no shifting of `repl` is required; free variables of
    /// `self` above the substituted index are decremented because one binder
    /// disappears.
    #[must_use]
    pub fn subst_top(&self, repl: &GlobalType) -> GlobalType {
        self.subst(0, repl)
    }

    fn subst(&self, depth: u32, repl: &GlobalType) -> GlobalType {
        match self {
            GlobalType::End => GlobalType::End,
            GlobalType::Var(i) => {
                if *i == depth {
                    repl.clone()
                } else if *i > depth {
                    GlobalType::Var(*i - 1)
                } else {
                    GlobalType::Var(*i)
                }
            }
            GlobalType::Rec(body) => GlobalType::Rec(Box::new(body.subst(depth + 1, repl))),
            GlobalType::Msg { from, to, branches } => GlobalType::Msg {
                from: from.clone(),
                to: to.clone(),
                branches: branches
                    .iter()
                    .map(|b| b.map_ref(|g| g.subst(depth, repl)))
                    .collect(),
            },
        }
    }

    /// One step of recursion unfolding: `mu X. G` becomes `G[X := mu X. G]`;
    /// every other constructor is returned unchanged.
    #[must_use]
    pub fn unfold_once(&self) -> GlobalType {
        match self {
            GlobalType::Rec(body) => body.subst_top(self),
            other => other.clone(),
        }
    }

    /// Unfolds leading recursion binders until the head constructor is
    /// `End` or `Msg` (the equi-recursive head normal form).
    ///
    /// # Panics
    ///
    /// Panics if the type is unguarded or not closed; callers are expected to
    /// have checked [`GlobalType::well_formed`] first.
    #[must_use]
    pub fn unfold_head(&self) -> GlobalType {
        let mut current = self.clone();
        // Each iteration removes one leading `mu`; guardedness rules out the
        // `mu X. X` family, so the number of leading binders strictly
        // decreases and this terminates.
        let mut fuel = 1 + self.size();
        while let GlobalType::Rec(_) = current {
            assert!(fuel > 0, "unfold_head: unguarded or open recursion");
            fuel -= 1;
            current = current.unfold_once();
        }
        assert!(
            !matches!(current, GlobalType::Var(_)),
            "unfold_head reached a free variable; type was not closed"
        );
        current
    }

    /// Structural size (number of constructors); used by generators,
    /// termination fuel and the effort report.
    pub fn size(&self) -> usize {
        match self {
            GlobalType::End | GlobalType::Var(_) => 1,
            GlobalType::Rec(body) => 1 + body.size(),
            GlobalType::Msg { branches, .. } => {
                1 + branches.iter().map(|b| b.cont.size()).sum::<usize>()
            }
        }
    }

    /// Maximum number of alternatives in any choice of the type.
    pub fn max_branching(&self) -> usize {
        match self {
            GlobalType::End | GlobalType::Var(_) => 0,
            GlobalType::Rec(body) => body.max_branching(),
            GlobalType::Msg { branches, .. } => branches
                .len()
                .max(branches.iter().map(|b| b.cont.max_branching()).max().unwrap_or(0)),
        }
    }
}

impl fmt::Display for GlobalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalType::End => f.write_str("end"),
            GlobalType::Var(i) => write!(f, "X{i}"),
            GlobalType::Rec(body) => write!(f, "mu.{body}"),
            GlobalType::Msg { from, to, branches } => {
                write!(f, "{from}->{to}:{{")?;
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{}({}).{}", b.label, b.sort, b.cont)?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str) -> Role {
        Role::new(name)
    }
    fn l(name: &str) -> Label {
        Label::new(name)
    }

    /// `mu X. p -> q : l(nat). X` — the simplest well-formed recursive type.
    fn simple_loop() -> GlobalType {
        GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::var(0),
        ))
    }

    #[test]
    fn participants_of_message() {
        let g = GlobalType::msg1(r("p"), r("q"), "l", Sort::Nat, GlobalType::End);
        let ps = g.participants();
        assert_eq!(ps.len(), 2);
        assert!(ps.contains(&r("p")) && ps.contains(&r("q")));
    }

    #[test]
    fn guardedness_accepts_guarded_recursion() {
        assert!(simple_loop().is_guarded());
    }

    #[test]
    fn guardedness_rejects_mu_x_x() {
        let g = GlobalType::rec(GlobalType::var(0));
        assert!(!g.is_guarded());
        assert!(matches!(g.well_formed(), Err(Error::Unguarded { .. })));
    }

    #[test]
    fn guardedness_rejects_nested_pure_recursion() {
        // mu X. mu Y. X is also unguarded (Definition A.2's not_pure_rec).
        let g = GlobalType::rec(GlobalType::rec(GlobalType::var(1)));
        assert!(!g.is_guarded());
    }

    #[test]
    fn closedness() {
        assert!(simple_loop().is_closed());
        let open = GlobalType::msg1(r("p"), r("q"), "l", Sort::Nat, GlobalType::var(3));
        assert!(!open.is_closed());
        assert_eq!(open.free_vars().into_iter().collect::<Vec<_>>(), vec![3]);
        assert!(matches!(
            open.well_formed(),
            Err(Error::UnboundVariable { index: 3 })
        ));
    }

    #[test]
    fn free_vars_are_relative_to_binders() {
        // mu X. p -> q : l(nat). X1  has X1 free (index 0 outside).
        let g = GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::var(1),
        ));
        assert_eq!(g.free_vars().into_iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn well_formed_rejects_self_communication() {
        let g = GlobalType::msg1(r("p"), r("p"), "l", Sort::Nat, GlobalType::End);
        assert!(matches!(
            g.well_formed(),
            Err(Error::SelfCommunication { .. })
        ));
    }

    #[test]
    fn well_formed_rejects_duplicate_labels() {
        let g = GlobalType::msg(
            r("p"),
            r("q"),
            vec![
                (l("l"), Sort::Nat, GlobalType::End),
                (l("l"), Sort::Bool, GlobalType::End),
            ],
        );
        assert!(matches!(g.well_formed(), Err(Error::DuplicateLabel { .. })));
    }

    #[test]
    fn well_formed_rejects_empty_choice() {
        let g = GlobalType::Msg {
            from: r("p"),
            to: r("q"),
            branches: vec![],
        };
        assert_eq!(g.well_formed(), Err(Error::EmptyChoice));
    }

    #[test]
    fn unfold_once_substitutes_the_whole_mu() {
        let g = simple_loop();
        let unfolded = g.unfold_once();
        assert_eq!(
            unfolded,
            GlobalType::msg1(r("p"), r("q"), "l", Sort::Nat, g.clone())
        );
        // Unfolding is idempotent on non-recursive heads.
        assert_eq!(unfolded.unfold_once(), unfolded);
    }

    #[test]
    fn unfold_head_strips_all_leading_binders() {
        // mu X. mu Y. p -> q : l(nat). Y
        let g = GlobalType::rec(GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::var(0),
        )));
        let h = g.unfold_head();
        assert!(matches!(h, GlobalType::Msg { .. }));
    }

    #[test]
    fn unfolding_preserves_closedness_and_guardedness() {
        let g = simple_loop();
        let u = g.unfold_once();
        assert!(u.is_closed());
        assert!(u.is_guarded());
    }

    #[test]
    fn size_and_branching_metrics() {
        let g = GlobalType::msg(
            r("p"),
            r("q"),
            vec![
                (l("a"), Sort::Nat, GlobalType::End),
                (l("b"), Sort::Nat, GlobalType::End),
            ],
        );
        assert_eq!(g.size(), 3);
        assert_eq!(g.max_branching(), 2);
        assert_eq!(GlobalType::End.max_branching(), 0);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            simple_loop().to_string(),
            "mu.p->q:{l(nat).X0}"
        );
        assert_eq!(GlobalType::End.to_string(), "end");
    }
}
