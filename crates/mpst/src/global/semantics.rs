//! The labelled transition system of global trees and its trace semantics
//! (Definitions 3.13, 3.19 / A.29, A.36, `Global/Semantics.v`).

use std::collections::{BTreeSet, HashSet, VecDeque};

use crate::common::actions::Action;
use crate::common::arena::NodeId;
use crate::common::branch::Branch;
use crate::common::intern::FxHashSet;
use crate::common::role::{Role, RoleSet};
use crate::common::trace::Trace;
use crate::global::prefix::GlobalPrefix;
use crate::global::tree::{GlobalTree, GlobalTreeNode};

/// One step of the global LTS (Definition 3.13): attempts to perform `action`
/// from the execution state `prefix` of the protocol `tree`.
///
/// Returns the successor state, or `None` if the action is not enabled. The
/// four rules are:
///
/// * `[g-step-send]` — a pending message commits to the action's label and
///   becomes in-flight;
/// * `[g-step-recv]` — an in-flight message is delivered and the protocol
///   continues with the selected branch;
/// * `[g-step-str1]` — an action whose subject is not involved in a pending
///   message may happen under it, provided *every* branch can perform it;
/// * `[g-step-str2]` — an action whose subject is not the receiver of an
///   in-flight message may happen under it (in the selected branch).
///
/// Like [`global_step_enabled`], the tree part of the recursion carries a
/// visited set: an `[g-step-str1]` derivation that revisits a tree node has
/// no finite derivation, so the revisit answers `None` (where a naive
/// recursion would diverge on a branch cycle not involving the subject —
/// e.g. an action by a role foreign to a looping protocol).
pub fn global_step(
    tree: &GlobalTree,
    prefix: &GlobalPrefix,
    action: &Action,
) -> Option<GlobalPrefix> {
    let mut visiting = Vec::new();
    step_prefix(tree, prefix, action, &mut visiting)
}

fn step_prefix(
    tree: &GlobalTree,
    prefix: &GlobalPrefix,
    action: &Action,
    visiting: &mut Vec<NodeId>,
) -> Option<GlobalPrefix> {
    match prefix {
        GlobalPrefix::Inj(id) => step_tree_node(tree, *id, action, visiting),
        GlobalPrefix::Msg { from, to, branches } => {
            // [g-step-send]
            if action.is_send() && action.from() == from && action.to() == to {
                if let Some(j) = branches
                    .iter()
                    .position(|b| &b.label == action.label() && &b.sort == action.sort())
                {
                    return Some(GlobalPrefix::Sent {
                        from: from.clone(),
                        to: to.clone(),
                        selected: j,
                        branches: branches.clone(),
                    });
                }
            }
            // [g-step-str1]
            if action.subject() != from && action.subject() != to {
                let stepped: Option<Vec<Branch<GlobalPrefix>>> = branches
                    .iter()
                    .map(|b| {
                        step_prefix(tree, &b.cont, action, visiting).map(|cont| Branch {
                            label: b.label.clone(),
                            sort: b.sort.clone(),
                            cont,
                        })
                    })
                    .collect();
                if let Some(branches) = stepped {
                    return Some(GlobalPrefix::Msg {
                        from: from.clone(),
                        to: to.clone(),
                        branches,
                    });
                }
            }
            None
        }
        GlobalPrefix::Sent {
            from,
            to,
            selected,
            branches,
        } => {
            let chosen = &branches[*selected];
            // [g-step-recv]
            if action.is_recv()
                && action.from() == from
                && action.to() == to
                && action.label() == &chosen.label
                && action.sort() == &chosen.sort
            {
                return Some(chosen.cont.clone());
            }
            // [g-step-str2]
            if action.subject() != to {
                if let Some(cont) = step_prefix(tree, &chosen.cont, action, visiting) {
                    let mut branches = branches.clone();
                    branches[*selected].cont = cont;
                    return Some(GlobalPrefix::Sent {
                        from: from.clone(),
                        to: to.clone(),
                        selected: *selected,
                        branches,
                    });
                }
            }
            None
        }
    }
}

/// The tree-node case of [`step_prefix`] — where cycles live, and therefore
/// where the visited set is consulted (mirroring [`enabled_tree_node`]).
fn step_tree_node(
    tree: &GlobalTree,
    id: NodeId,
    action: &Action,
    visiting: &mut Vec<NodeId>,
) -> Option<GlobalPrefix> {
    match tree.node(id) {
        GlobalTreeNode::End => None, // a terminated protocol performs no action
        GlobalTreeNode::Msg { from, to, branches } => {
            // [g-step-send]
            if action.is_send() && action.from() == from && action.to() == to {
                if let Some(j) = branches
                    .iter()
                    .position(|b| &b.label == action.label() && &b.sort == action.sort())
                {
                    return Some(GlobalPrefix::Sent {
                        from: from.clone(),
                        to: to.clone(),
                        selected: j,
                        branches: branches
                            .iter()
                            .map(|b| b.map_ref(|id| GlobalPrefix::Inj(*id)))
                            .collect(),
                    });
                }
            }
            // [g-step-str1]
            if action.subject() == from || action.subject() == to {
                return None;
            }
            // A step derivation is a finite tree: revisiting a node while
            // deriving the same action means there is no finite derivation
            // through this cycle.
            if visiting.contains(&id) {
                return None;
            }
            visiting.push(id);
            let stepped: Option<Vec<Branch<GlobalPrefix>>> = branches
                .iter()
                .map(|b| {
                    step_tree_node(tree, b.cont, action, visiting).map(|cont| Branch {
                        label: b.label.clone(),
                        sort: b.sort.clone(),
                        cont,
                    })
                })
                .collect();
            visiting.pop();
            stepped.map(|branches| GlobalPrefix::Msg {
                from: from.clone(),
                to: to.clone(),
                branches,
            })
        }
    }
}

/// Decides whether `action` is enabled in `prefix` — i.e. whether
/// [`global_step`] would succeed — without materialising the successor
/// state.
///
/// [`global_step`] clones every branch it steps under; on the hot paths
/// (candidate filtering, the product-construction checkers) most queried
/// actions are *not* enabled, so this boolean check avoids the allocation
/// entirely. Unlike the successor construction, the tree part carries a
/// visited set: an `[g-step-str1]` derivation that revisits a tree node has
/// no finite derivation, so the revisit answers `false` (where the naive
/// recursion would diverge on a branch cycle not involving the subject).
pub fn global_step_enabled(tree: &GlobalTree, prefix: &GlobalPrefix, action: &Action) -> bool {
    let mut visiting = Vec::new();
    enabled_prefix(tree, prefix, action, &mut visiting)
}

fn enabled_prefix(
    tree: &GlobalTree,
    prefix: &GlobalPrefix,
    action: &Action,
    visiting: &mut Vec<NodeId>,
) -> bool {
    match prefix {
        GlobalPrefix::Inj(id) => enabled_tree_node(tree, *id, action, visiting),
        GlobalPrefix::Msg { from, to, branches } => {
            // [g-step-send]
            if action.is_send()
                && action.from() == from
                && action.to() == to
                && branches
                    .iter()
                    .any(|b| &b.label == action.label() && &b.sort == action.sort())
            {
                return true;
            }
            // [g-step-str1]
            action.subject() != from
                && action.subject() != to
                && branches
                    .iter()
                    .all(|b| enabled_prefix(tree, &b.cont, action, visiting))
        }
        GlobalPrefix::Sent {
            from,
            to,
            selected,
            branches,
        } => {
            let chosen = &branches[*selected];
            // [g-step-recv]
            if action.is_recv()
                && action.from() == from
                && action.to() == to
                && action.label() == &chosen.label
                && action.sort() == &chosen.sort
            {
                return true;
            }
            // [g-step-str2]
            action.subject() != to && enabled_prefix(tree, &chosen.cont, action, visiting)
        }
    }
}

fn enabled_tree_node(
    tree: &GlobalTree,
    id: NodeId,
    action: &Action,
    visiting: &mut Vec<NodeId>,
) -> bool {
    match tree.node(id) {
        GlobalTreeNode::End => false,
        GlobalTreeNode::Msg { from, to, branches } => {
            if action.is_send()
                && action.from() == from
                && action.to() == to
                && branches
                    .iter()
                    .any(|b| &b.label == action.label() && &b.sort == action.sort())
            {
                return true;
            }
            if action.subject() == from || action.subject() == to {
                return false;
            }
            // A step derivation is a finite tree: revisiting a node while
            // deriving the same action means there is no finite derivation
            // through this cycle.
            if visiting.contains(&id) {
                return false;
            }
            visiting.push(id);
            let ok = branches
                .iter()
                .all(|b| enabled_tree_node(tree, b.cont, action, visiting));
            visiting.pop();
            ok
        }
    }
}

/// The set of actions enabled in the execution state `prefix` of `tree`,
/// i.e. the actions `a` for which [`global_step`] succeeds.
pub fn enabled_global_actions(tree: &GlobalTree, prefix: &GlobalPrefix) -> Vec<Action> {
    let mut candidates = Vec::new();
    // Blocked sets and visited keys are [`RoleSet`] bitsets over the tree's
    // role table: cloning and hashing them is a handful of word operations
    // instead of `BTreeSet<Role>`/`Vec<Role>` allocations per node visit.
    let mut seen: FxHashSet<(NodeId, RoleSet)> = FxHashSet::default();
    let mut bits = RoleBits::new(tree);
    collect_prefix(tree, prefix, &RoleSet::new(), &mut bits, &mut seen, &mut candidates);
    // Deduplicate while keeping a stable order, then keep only the candidates
    // that genuinely step (the structural rules impose conditions — e.g. that
    // *all* branches can perform the action — that the optimistic collection
    // above does not check).
    let mut unique: HashSet<Action> = HashSet::new();
    candidates.retain(|a| unique.insert(a.clone()));
    candidates
        .into_iter()
        .filter(|a| global_step_enabled(tree, prefix, a))
        .collect()
}

/// Maps roles to the bit indices [`RoleSet`]s use: roles of the tree map to
/// their role-table position; roles that only occur in a (possibly
/// hand-built) prefix get stable indices past the table, so the walk stays
/// total on arbitrary prefixes instead of assuming they came from this tree.
struct RoleBits<'a> {
    tree: &'a GlobalTree,
    extra: Vec<Role>,
}

impl<'a> RoleBits<'a> {
    fn new(tree: &'a GlobalTree) -> Self {
        RoleBits {
            tree,
            extra: Vec::new(),
        }
    }

    fn bit(&mut self, role: &Role) -> usize {
        if let Some(i) = self.tree.role_index(role) {
            return i;
        }
        let base = self.tree.role_table().len();
        if let Some(p) = self.extra.iter().position(|r| r == role) {
            return base + p;
        }
        self.extra.push(role.clone());
        base + self.extra.len() - 1
    }
}

fn collect_prefix(
    tree: &GlobalTree,
    prefix: &GlobalPrefix,
    blocked: &RoleSet,
    bits: &mut RoleBits<'_>,
    seen: &mut FxHashSet<(NodeId, RoleSet)>,
    out: &mut Vec<Action>,
) {
    match prefix {
        GlobalPrefix::Inj(id) => collect_tree(tree, *id, blocked, bits, seen, out),
        GlobalPrefix::Msg { from, to, branches } => {
            if !blocked.contains(bits.bit(from)) {
                for b in branches {
                    out.push(Action::send(
                        from.clone(),
                        to.clone(),
                        b.label.clone(),
                        b.sort.clone(),
                    ));
                }
            }
            let mut inner = blocked.clone();
            inner.insert(bits.bit(from));
            inner.insert(bits.bit(to));
            for b in branches {
                collect_prefix(tree, &b.cont, &inner, bits, seen, out);
            }
        }
        GlobalPrefix::Sent {
            from,
            to,
            selected,
            branches,
        } => {
            let chosen = &branches[*selected];
            if !blocked.contains(bits.bit(to)) {
                out.push(Action::recv(
                    to.clone(),
                    from.clone(),
                    chosen.label.clone(),
                    chosen.sort.clone(),
                ));
            }
            let mut inner = blocked.clone();
            inner.insert(bits.bit(to));
            collect_prefix(tree, &chosen.cont, &inner, bits, seen, out);
        }
    }
}

fn collect_tree(
    tree: &GlobalTree,
    id: NodeId,
    blocked: &RoleSet,
    bits: &mut RoleBits<'_>,
    seen: &mut FxHashSet<(NodeId, RoleSet)>,
    out: &mut Vec<Action>,
) {
    if !seen.insert((id, blocked.clone())) {
        return;
    }
    // Every role reachable from this node is already blocked: nothing below
    // can contribute an enabled action, so the walk can stop.
    if tree.participation(id).is_subset(blocked) {
        return;
    }
    match tree.node(id) {
        GlobalTreeNode::End => {}
        GlobalTreeNode::Msg { from, to, branches } => {
            if !blocked.contains(bits.bit(from)) {
                for b in branches {
                    out.push(Action::send(
                        from.clone(),
                        to.clone(),
                        b.label.clone(),
                        b.sort.clone(),
                    ));
                }
            }
            let mut inner = blocked.clone();
            inner.insert(bits.bit(from));
            inner.insert(bits.bit(to));
            for b in branches {
                collect_tree(tree, b.cont, &inner, bits, seen, out);
            }
        }
    }
}

/// Checks whether `trace` is admissible as a *prefix* of an execution of the
/// protocol: every action can be performed in sequence from `prefix`
/// (Definition 3.19, restricted to finite prefixes).
pub fn is_global_trace_prefix(tree: &GlobalTree, prefix: &GlobalPrefix, trace: &Trace) -> bool {
    run_global_trace(tree, prefix, trace).is_some()
}

/// Runs `trace` from `prefix`, returning the final state if every action is
/// enabled in sequence.
pub fn run_global_trace(
    tree: &GlobalTree,
    prefix: &GlobalPrefix,
    trace: &Trace,
) -> Option<GlobalPrefix> {
    let mut current = prefix.clone();
    for action in trace.iter() {
        current = global_step(tree, &current, action)?;
    }
    Some(current)
}

/// Enumerates every admissible trace prefix of length at most `depth`
/// starting from the initial state of `tree`.
///
/// This is the bounded, executable counterpart of the paper's coinductive
/// `trg` relation (Definition 3.19): a possibly-infinite admissible trace is
/// represented by the set of its finite prefixes, and two protocols have the
/// same admissible traces iff their prefix sets agree at every depth.
pub fn global_traces_up_to(tree: &GlobalTree, depth: usize) -> BTreeSet<Trace> {
    global_traces_from(tree, &GlobalPrefix::initial(tree), depth)
}

/// Enumerates every admissible trace prefix of length at most `depth`
/// starting from `prefix`.
pub fn global_traces_from(
    tree: &GlobalTree,
    prefix: &GlobalPrefix,
    depth: usize,
) -> BTreeSet<Trace> {
    let mut out = BTreeSet::new();
    let mut queue: VecDeque<(GlobalPrefix, Trace)> = VecDeque::new();
    queue.push_back((prefix.clone(), Trace::empty()));
    while let Some((state, trace)) = queue.pop_front() {
        out.insert(trace.clone());
        if trace.len() >= depth {
            continue;
        }
        for action in enabled_global_actions(tree, &state) {
            if let Some(next) = global_step(tree, &state, &action) {
                queue.push_back((next, trace.snoc(action)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::label::Label;
    use crate::common::sort::Sort;
    use crate::global::syntax::GlobalType;
    use crate::global::unravel::unravel_global;
    use crate::Role;

    fn r(name: &str) -> Role {
        Role::new(name)
    }
    fn l(name: &str) -> Label {
        Label::new(name)
    }

    /// p -> q : l(nat). end
    fn single_exchange() -> GlobalTree {
        unravel_global(&GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::End,
        ))
        .unwrap()
    }

    /// The ring protocol of §2.3: Alice -> Bob, Bob -> Carol, Carol -> Alice.
    fn ring() -> GlobalTree {
        let g = GlobalType::msg1(
            r("Alice"),
            r("Bob"),
            "l",
            Sort::Nat,
            GlobalType::msg1(
                r("Bob"),
                r("Carol"),
                "l",
                Sort::Nat,
                GlobalType::msg1(r("Carol"), r("Alice"), "l", Sort::Nat, GlobalType::End),
            ),
        );
        unravel_global(&g).unwrap()
    }

    #[test]
    fn stepping_a_foreign_role_on_a_looping_protocol_terminates_with_none() {
        // Regression: `[g-step-str1]` used to recurse forever when the
        // action's subject occurs nowhere in a protocol whose branches cycle
        // (the visited set of `global_step_enabled` now also guards the
        // successor construction).
        let g = GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Bool,
            GlobalType::var(0),
        ));
        let t = unravel_global(&g).unwrap();
        let p0 = GlobalPrefix::initial(&t);
        let foreign = Action::send(r("zz"), r("q"), l("l"), Sort::Bool);
        assert_eq!(global_step(&t, &p0, &foreign), None);
        assert!(!global_step_enabled(&t, &p0, &foreign));
        // The same prefix still steps normally for a participant.
        let send = Action::send(r("p"), r("q"), l("l"), Sort::Bool);
        let p1 = global_step(&t, &p0, &send).expect("send enabled");
        assert!(global_step(&t, &p1, &send.dual()).is_some());
    }

    #[test]
    fn g_step_send_then_recv_reaches_end() {
        // Figure 4: the two asynchronous stages of a single exchange.
        let t = single_exchange();
        let p0 = GlobalPrefix::initial(&t);
        let send = Action::send(r("p"), r("q"), l("l"), Sort::Nat);
        let recv = send.dual();

        let p1 = global_step(&t, &p0, &send).expect("send enabled");
        assert!(matches!(p1, GlobalPrefix::Sent { .. }));
        assert_eq!(p1.in_flight(), 1);

        // The receive is enabled only after the send.
        assert!(global_step(&t, &p0, &recv).is_none());
        let p2 = global_step(&t, &p1, &recv).expect("recv enabled after send");
        assert!(p2.is_terminated(&t));
    }

    #[test]
    fn g_step_send_requires_matching_label_and_sort() {
        let t = single_exchange();
        let p0 = GlobalPrefix::initial(&t);
        let wrong_label = Action::send(r("p"), r("q"), l("other"), Sort::Nat);
        let wrong_sort = Action::send(r("p"), r("q"), l("l"), Sort::Bool);
        assert!(global_step(&t, &p0, &wrong_label).is_none());
        assert!(global_step(&t, &p0, &wrong_sort).is_none());
    }

    #[test]
    fn g_step_str1_allows_independent_roles_to_run_ahead() {
        // p -> q : l(nat). a -> b : m(bool). end
        // a may send to b before p's message is delivered or even sent?
        // No: before p sends, a's send is *under* the p->q prefix and rule
        // [g-step-str1] requires the subject (a) to differ from p and q,
        // which holds, so it is enabled.
        let g = GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::msg1(r("a"), r("b"), "m", Sort::Bool, GlobalType::End),
        );
        let t = unravel_global(&g).unwrap();
        let p0 = GlobalPrefix::initial(&t);
        let a_sends = Action::send(r("a"), r("b"), l("m"), Sort::Bool);
        let stepped = global_step(&t, &p0, &a_sends).expect("str1 step enabled");
        assert!(matches!(stepped, GlobalPrefix::Msg { .. }));
        // Afterwards p can still send and q receive, and then b receives.
        let p_sends = Action::send(r("p"), r("q"), l("l"), Sort::Nat);
        let q_recvs = p_sends.dual();
        let b_recvs = a_sends.dual();
        let s1 = global_step(&t, &stepped, &p_sends).unwrap();
        let s2 = global_step(&t, &s1, &q_recvs).unwrap();
        let s3 = global_step(&t, &s2, &b_recvs).unwrap();
        assert!(s3.is_terminated(&t));
    }

    #[test]
    fn g_step_str1_blocks_dependent_roles() {
        // In the ring, Bob cannot forward to Carol before receiving from
        // Alice: Bob is the receiver of the pending Alice->Bob message, so
        // [g-step-str1] does not apply to an action whose subject is Bob.
        let t = ring();
        let p0 = GlobalPrefix::initial(&t);
        let bob_sends = Action::send(r("Bob"), r("Carol"), l("l"), Sort::Nat);
        assert!(global_step(&t, &p0, &bob_sends).is_none());
        assert!(!enabled_global_actions(&t, &p0).contains(&bob_sends));
    }

    #[test]
    fn g_step_str2_allows_sender_to_continue_before_delivery() {
        // p -> q : l(nat). p -> s : m(nat). end: after p sends to q (message
        // in flight), p may immediately send to s ([g-step-str2], subject p
        // differs from the receiver q).
        let g = GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::msg1(r("p"), r("s"), "m", Sort::Nat, GlobalType::End),
        );
        let t = unravel_global(&g).unwrap();
        let p0 = GlobalPrefix::initial(&t);
        let first = Action::send(r("p"), r("q"), l("l"), Sort::Nat);
        let second = Action::send(r("p"), r("s"), l("m"), Sort::Nat);
        let s1 = global_step(&t, &p0, &first).unwrap();
        let s2 = global_step(&t, &s1, &second).expect("str2 step enabled");
        assert_eq!(s2.in_flight(), 2);
        // But q's receive of the first message is also still enabled.
        assert!(global_step(&t, &s1, &first.dual()).is_some());
    }

    #[test]
    fn enabled_actions_of_initial_ring() {
        let t = ring();
        let p0 = GlobalPrefix::initial(&t);
        let enabled = enabled_global_actions(&t, &p0);
        // Only Alice's send is enabled initially (Bob and Carol are blocked
        // behind their receives).
        assert_eq!(enabled, vec![Action::send(r("Alice"), r("Bob"), l("l"), Sort::Nat)]);
    }

    #[test]
    fn enabled_actions_terminate_on_recursive_protocols() {
        // mu X. p -> q : l(nat). q -> p : m(nat). X
        let g = GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::msg1(r("q"), r("p"), "m", Sort::Nat, GlobalType::var(0)),
        ));
        let t = unravel_global(&g).unwrap();
        let enabled = enabled_global_actions(&t, &GlobalPrefix::initial(&t));
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0], Action::send(r("p"), r("q"), l("l"), Sort::Nat));
    }

    #[test]
    fn trace_prefix_checking() {
        let t = ring();
        let p0 = GlobalPrefix::initial(&t);
        let a1 = Action::send(r("Alice"), r("Bob"), l("l"), Sort::Nat);
        let a2 = a1.dual();
        let good = Trace::from(vec![a1.clone(), a2.clone()]);
        let bad = Trace::from(vec![a2, a1]);
        assert!(is_global_trace_prefix(&t, &p0, &good));
        assert!(!is_global_trace_prefix(&t, &p0, &bad));
        assert!(is_global_trace_prefix(&t, &p0, &Trace::empty()));
    }

    #[test]
    fn full_ring_execution_reaches_termination() {
        let t = ring();
        let p0 = GlobalPrefix::initial(&t);
        let mut actions = Vec::new();
        for (from, to) in [("Alice", "Bob"), ("Bob", "Carol"), ("Carol", "Alice")] {
            let s = Action::send(r(from), r(to), l("l"), Sort::Nat);
            actions.push(s.clone());
            actions.push(s.dual());
        }
        let end = run_global_trace(&t, &p0, &Trace::from(actions)).expect("trace admissible");
        assert!(end.is_terminated(&t));
    }

    #[test]
    fn enabled_actions_tolerate_roles_outside_the_tree() {
        // GlobalPrefix has public fields, so callers can hand-build prefixes
        // mentioning roles the tree has never heard of; the walk must stay
        // total rather than panic on the missing role-table entry.
        let t = single_exchange();
        let foreign = GlobalPrefix::Msg {
            from: r("alien"),
            to: r("visitor"),
            branches: vec![Branch {
                label: l("m"),
                sort: Sort::Unit,
                cont: GlobalPrefix::initial(&t),
            }],
        };
        let enabled = enabled_global_actions(&t, &foreign);
        // The alien send is collected and genuinely steps ([g-step-send]).
        assert!(enabled.contains(&Action::send(r("alien"), r("visitor"), l("m"), Sort::Unit)));
    }

    #[test]
    fn bounded_trace_enumeration_contains_expected_prefixes() {
        let t = single_exchange();
        let traces = global_traces_up_to(&t, 2);
        let send = Action::send(r("p"), r("q"), l("l"), Sort::Nat);
        assert!(traces.contains(&Trace::empty()));
        assert!(traces.contains(&Trace::from(vec![send.clone()])));
        assert!(traces.contains(&Trace::from(vec![send.clone(), send.dual()])));
        assert_eq!(traces.len(), 3);
    }
}
