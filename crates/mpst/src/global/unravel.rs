//! Unravelling of global types into semantic global trees
//! (Definition 3.3 / A.5, `Global/Unravel.v`).
//!
//! The paper defines unravelling `G ℜ Gc` as a coinductive relation between a
//! global type and the tree obtained by unfolding its recursion forever.
//! Because every guarded, closed global type denotes exactly one regular tree
//! (up to bisimilarity), we expose unravelling both as a *function*
//! ([`unravel_global`]) that constructs the finite graph representation and
//! as a *relation checker* ([`g_unravels_to`]) that decides whether a given
//! tree is (bisimilar to) the unravelling of a given type.

use std::collections::HashMap;

use crate::common::arena::NodeId;
use crate::common::branch::Branch;
use crate::common::intern::{GTerm, Interner, TypeId};
use crate::error::Result;
use crate::global::syntax::GlobalType;
use crate::global::tree::{GlobalTree, GlobalTreeNode};

/// Unravels a closed, guarded global type into its semantic tree.
///
/// The construction repeatedly head-unfolds recursion (`[g-unr-rec]`) and
/// creates one graph node per distinct head-normal form encountered
/// (`[g-unr-end]`, `[g-unr-msg]`); revisiting a head-normal form creates a
/// back-edge, which is how the infinite regular tree is represented finitely.
///
/// The type is first hash-consed into an [`Interner`], so head-normal forms
/// are shared maximally, revisit detection is an id-equality check, and the
/// unfold/substitution steps reuse every untouched subterm instead of
/// deep-cloning.
///
/// # Errors
///
/// Returns an error if the type is not well-formed (see
/// [`GlobalType::well_formed`]).
///
/// # Examples
///
/// ```
/// use zooid_mpst::global::{unravel_global, GlobalType};
/// use zooid_mpst::{Role, Sort};
///
/// let g = GlobalType::msg1(Role::new("p"), Role::new("q"), "l", Sort::Nat, GlobalType::End);
/// let tree = unravel_global(&g).unwrap();
/// assert_eq!(tree.len(), 2); // the message node and the end node
/// ```
pub fn unravel_global(g: &GlobalType) -> Result<GlobalTree> {
    // Tiny terms unravel faster by direct structural recursion than by
    // setting an interner up; everything else goes through hash-consing.
    if g.size() <= 6 {
        g.well_formed()?;
        let mut builder = BoxedBuilder::default();
        let root = builder.node_of(g);
        return Ok(GlobalTree::from_parts(builder.nodes, root));
    }
    let mut interner = Interner::new();
    let root = interner.intern_global(g);
    interner.well_formed_global(root)?;
    Ok(unravel_interned(&mut interner, root))
}

/// Unravels an already-interned, well-formed global type.
///
/// Callers must have validated [`GlobalType::well_formed`] before interning;
/// head-normalisation panics on unguarded or open terms.
pub(crate) fn unravel_interned(interner: &mut Interner, root: TypeId) -> GlobalTree {
    let mut builder = Builder::default();
    let root = builder.node_of(interner, root);
    GlobalTree::from_parts(builder.nodes, root)
}

/// Decides the unravelling relation `G ℜ Gc`: does `tree` (rooted at its
/// root) represent the infinite unfolding of `g`?
///
/// Since unravelling is functional up to bisimilarity, this is checked by
/// unravelling `g` and testing bisimilarity with `tree`.
///
/// Returns `false` (rather than an error) when `g` is not well-formed, since
/// ill-formed types unravel to nothing.
pub fn g_unravels_to(g: &GlobalType, tree: &GlobalTree) -> bool {
    match unravel_global(g) {
        Ok(t) => t.bisimilar(t.root(), tree, tree.root()),
        Err(_) => false,
    }
}

/// The direct builder for tiny types: unfolds boxed head-normal forms and
/// memoises them structurally (exactly the interned builder's construction,
/// minus the interner setup).
#[derive(Default)]
struct BoxedBuilder {
    nodes: Vec<GlobalTreeNode>,
    memo: HashMap<GlobalType, NodeId>,
}

impl BoxedBuilder {
    fn node_of(&mut self, g: &GlobalType) -> NodeId {
        let head = g.unfold_head();
        if let Some(&id) = self.memo.get(&head) {
            return id;
        }
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(GlobalTreeNode::End);
        self.memo.insert(head.clone(), id);
        let node = match &head {
            GlobalType::End => GlobalTreeNode::End,
            GlobalType::Msg { from, to, branches } => {
                let bs = branches
                    .iter()
                    .map(|b| Branch {
                        label: b.label.clone(),
                        sort: b.sort.clone(),
                        cont: self.node_of(&b.cont),
                    })
                    .collect();
                GlobalTreeNode::Msg {
                    from: from.clone(),
                    to: to.clone(),
                    branches: bs,
                }
            }
            GlobalType::Rec(_) | GlobalType::Var(_) => {
                unreachable!("unfold_head returns a head-normal form of a closed type")
            }
        };
        self.nodes[id.index()] = node;
        id
    }
}

#[derive(Default)]
struct Builder {
    nodes: Vec<GlobalTreeNode>,
    /// Head-normal form id → arena node. Hash-consing makes this lookup an
    /// id hash instead of a deep structural hash of the whole unfolding.
    memo: HashMap<TypeId, NodeId>,
}

impl Builder {
    /// Returns the node representing the unravelling of `t`, creating it (and
    /// its reachable sub-graph) if necessary.
    fn node_of(&mut self, interner: &mut Interner, t: TypeId) -> NodeId {
        let head = interner.unfold_head_global(t);
        if let Some(&id) = self.memo.get(&head) {
            return id;
        }
        // Allocate the node first so cycles through recursion variables can
        // refer back to it while the branches are still being processed.
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(GlobalTreeNode::End);
        self.memo.insert(head, id);
        let node = match interner.global(head).clone() {
            GTerm::End => GlobalTreeNode::End,
            GTerm::Msg { from, to, branches } => {
                let bs = branches
                    .iter()
                    .map(|b| Branch {
                        label: interner.label(b.label).clone(),
                        sort: interner.sort(b.sort).clone(),
                        cont: self.node_of(interner, b.cont),
                    })
                    .collect();
                GlobalTreeNode::Msg {
                    from: interner.role(from).clone(),
                    to: interner.role(to).clone(),
                    branches: bs,
                }
            }
            GTerm::Rec(_) | GTerm::Var(_) => {
                unreachable!("unfold_head returns a head-normal form of a closed type")
            }
        };
        self.nodes[id.index()] = node;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::label::Label;
    use crate::common::role::Role;
    use crate::common::sort::Sort;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    #[test]
    fn end_unravels_to_end() {
        let t = unravel_global(&GlobalType::End).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.node(t.root()).is_end());
        assert!(g_unravels_to(&GlobalType::End, &t));
    }

    #[test]
    fn unfolding_does_not_change_the_unravelling() {
        // [g-unr-rec]: mu X. G and G[mu X. G / X] unravel to the same tree.
        let g = GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::var(0),
        ));
        let t = unravel_global(&g).unwrap();
        assert!(g_unravels_to(&g.unfold_once(), &t));
        assert!(g_unravels_to(&g.unfold_once().unfold_once(), &t));
    }

    #[test]
    fn distinct_protocols_do_not_unravel_to_each_other() {
        let g1 = GlobalType::msg1(r("p"), r("q"), "l", Sort::Nat, GlobalType::End);
        let g2 = GlobalType::msg1(r("p"), r("q"), "m", Sort::Nat, GlobalType::End);
        let t1 = unravel_global(&g1).unwrap();
        assert!(g_unravels_to(&g1, &t1));
        assert!(!g_unravels_to(&g2, &t1));
    }

    #[test]
    fn ill_formed_types_do_not_unravel() {
        let unguarded = GlobalType::rec(GlobalType::var(0));
        assert!(unravel_global(&unguarded).is_err());
        let t = unravel_global(&GlobalType::End).unwrap();
        assert!(!g_unravels_to(&unguarded, &t));
    }

    #[test]
    fn example_a19_types_share_their_unravelling() {
        // G0 = mu X. p -> r : l(nat). X
        // G1 = p -> r : l(nat). mu X. p -> r : l(nat). X
        // (Example A.19: both unravel to the same infinite tree Gc01.)
        let g0 = GlobalType::rec(GlobalType::msg1(
            r("p"),
            r("r"),
            "l",
            Sort::Nat,
            GlobalType::var(0),
        ));
        let g1 = GlobalType::msg1(r("p"), r("r"), "l", Sort::Nat, g0.clone());
        let t0 = unravel_global(&g0).unwrap();
        let t1 = unravel_global(&g1).unwrap();
        assert!(t0.bisimilar(t0.root(), &t1, t1.root()));
    }

    #[test]
    fn arena_is_shared_across_identical_subterms() {
        // Two branches with identical continuations share one node.
        let cont = GlobalType::msg1(r("q"), r("p"), "done", Sort::Unit, GlobalType::End);
        let g = GlobalType::msg(
            r("p"),
            r("q"),
            vec![
                (Label::new("a"), Sort::Nat, cont.clone()),
                (Label::new("b"), Sort::Bool, cont),
            ],
        );
        let t = unravel_global(&g).unwrap();
        // root + shared continuation + end = 3 nodes.
        assert_eq!(t.len(), 3);
    }
}
