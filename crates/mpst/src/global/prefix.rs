//! Execution prefixes of global trees (the paper's `ig_ty`, Definition A.8).
//!
//! During execution a global protocol can be in a state where some messages
//! have been sent but not yet received. The paper represents such states with
//! the inductive prefix datatype `ig_ty` layered on top of the coinductive
//! tree `rg_ty`: only finitely many messages can be in flight at any time, so
//! the "sent" constructor (`p ~l~> q`) only ever appears in this finite
//! prefix. [`GlobalPrefix`] is the same construction: a finite structure whose
//! leaves ([`GlobalPrefix::Inj`]) point into a [`GlobalTree`] arena.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::common::arena::NodeId;
use crate::common::branch::Branch;
use crate::common::role::Role;
use crate::global::tree::{GlobalTree, GlobalTreeNode};

/// An execution state of a global protocol (the paper's `ig_ty`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GlobalPrefix {
    /// `inj_p Gc`: the protocol continues as the (unexecuted) tree rooted at
    /// the given node.
    Inj(NodeId),
    /// `p -> q : { l_i(S_i). G_i }`: a message that has not been sent yet,
    /// but whose continuations have already been partially executed (this
    /// arises from steps performed under the prefix, rule `[g-step-str1]`).
    Msg {
        /// The sending participant.
        from: Role,
        /// The receiving participant.
        to: Role,
        /// The alternatives offered by the sender.
        branches: Vec<Branch<GlobalPrefix>>,
    },
    /// `p ~l_j~> q : { l_i(S_i). G_i }`: the sender has committed to label
    /// `l_j` and the message is in flight, not yet received by `q`.
    Sent {
        /// The sending participant.
        from: Role,
        /// The receiving participant.
        to: Role,
        /// Index (into `branches`) of the label the sender selected.
        selected: usize,
        /// The alternatives; only the selected one can still be taken.
        branches: Vec<Branch<GlobalPrefix>>,
    },
}

impl GlobalPrefix {
    /// The initial execution state of a tree: nothing executed yet.
    pub fn initial(tree: &GlobalTree) -> GlobalPrefix {
        GlobalPrefix::Inj(tree.root())
    }

    /// Expands an [`GlobalPrefix::Inj`] leaf one level, turning the tree node
    /// it points to into the corresponding prefix constructor. Other
    /// constructors are returned unchanged.
    ///
    /// This is how the inductive LTS of Definition 3.13 "peels" steps off the
    /// coinductive tree.
    #[must_use]
    pub fn expand(&self, tree: &GlobalTree) -> GlobalPrefix {
        match self {
            GlobalPrefix::Inj(id) => match tree.node(*id) {
                GlobalTreeNode::End => GlobalPrefix::Inj(*id),
                GlobalTreeNode::Msg { from, to, branches } => GlobalPrefix::Msg {
                    from: from.clone(),
                    to: to.clone(),
                    branches: branches
                        .iter()
                        .map(|b| b.map_ref(|id| GlobalPrefix::Inj(*id)))
                        .collect(),
                },
            },
            other => other.clone(),
        }
    }

    /// Returns `true` if the prefix denotes the fully terminated protocol
    /// (an `Inj` leaf pointing at `end_c`).
    pub fn is_terminated(&self, tree: &GlobalTree) -> bool {
        match self {
            GlobalPrefix::Inj(id) => tree.node(*id).is_end(),
            _ => false,
        }
    }

    /// Number of in-flight messages (`Sent` constructors) in the prefix.
    /// This is the total number of enqueued messages of the corresponding
    /// queue environment (Definition 3.8).
    pub fn in_flight(&self) -> usize {
        match self {
            GlobalPrefix::Inj(_) => 0,
            GlobalPrefix::Msg { branches, .. } => {
                branches.iter().map(|b| b.cont.in_flight()).max().unwrap_or(0)
            }
            GlobalPrefix::Sent {
                selected, branches, ..
            } => 1 + branches[*selected].cont.in_flight(),
        }
    }

    /// Structural size of the prefix (number of prefix constructors).
    pub fn size(&self) -> usize {
        match self {
            GlobalPrefix::Inj(_) => 1,
            GlobalPrefix::Msg { branches, .. } | GlobalPrefix::Sent { branches, .. } => {
                1 + branches.iter().map(|b| b.cont.size()).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for GlobalPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalPrefix::Inj(id) => write!(f, "inj {id}"),
            GlobalPrefix::Msg { from, to, branches } => {
                write!(f, "{from}->{to}:{{")?;
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{}({}).{}", b.label, b.sort, b.cont)?;
                }
                f.write_str("}")
            }
            GlobalPrefix::Sent {
                from,
                to,
                selected,
                branches,
            } => {
                write!(f, "{from}~{}~>{to}:{{", branches[*selected].label)?;
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{}({}).{}", b.label, b.sort, b.cont)?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::sort::Sort;
    use crate::global::syntax::GlobalType;
    use crate::global::unravel::unravel_global;
    use crate::Role;

    fn r(name: &str) -> Role {
        Role::new(name)
    }

    fn single_msg_tree() -> GlobalTree {
        unravel_global(&GlobalType::msg1(
            r("p"),
            r("q"),
            "l",
            Sort::Nat,
            GlobalType::End,
        ))
        .unwrap()
    }

    #[test]
    fn initial_prefix_is_an_inj_leaf() {
        let t = single_msg_tree();
        let p = GlobalPrefix::initial(&t);
        assert_eq!(p, GlobalPrefix::Inj(t.root()));
        assert!(!p.is_terminated(&t));
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    fn expand_turns_inj_into_msg() {
        let t = single_msg_tree();
        let p = GlobalPrefix::initial(&t).expand(&t);
        match &p {
            GlobalPrefix::Msg { from, to, branches } => {
                assert_eq!(from, &r("p"));
                assert_eq!(to, &r("q"));
                assert_eq!(branches.len(), 1);
            }
            _ => panic!("expected Msg prefix"),
        }
        // expanding a non-Inj prefix is the identity
        assert_eq!(p.expand(&t), p);
    }

    #[test]
    fn termination_detects_end_leaf() {
        let t = unravel_global(&GlobalType::End).unwrap();
        assert!(GlobalPrefix::initial(&t).is_terminated(&t));
    }

    #[test]
    fn in_flight_counts_sent_constructors() {
        let t = single_msg_tree();
        let expanded = GlobalPrefix::initial(&t).expand(&t);
        if let GlobalPrefix::Msg { from, to, branches } = expanded {
            let sent = GlobalPrefix::Sent {
                from,
                to,
                selected: 0,
                branches,
            };
            assert_eq!(sent.in_flight(), 1);
            assert!(sent.size() >= 2);
        } else {
            panic!("expected Msg prefix");
        }
    }
}
