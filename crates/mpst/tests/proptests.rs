//! Property-based tests for the MPST metatheory layer: invariants of
//! substitution and unfolding, queue-environment laws, unravelling and
//! projection properties over the randomised protocol family.

use proptest::prelude::*;

use zooid_mpst::generators::{self, RandomProtocol};
use zooid_mpst::global::{unravel_global, GlobalType};
use zooid_mpst::local::{unravel_local, QueueEnv};
use zooid_mpst::projection::{cproject, is_cprojection, project, project_all};
use zooid_mpst::trace_equiv::{check_trace_equivalence, check_trace_equivalence_exhaustive};
use zooid_mpst::{Interner, Label, Role, RoleSet, Sort};

fn random_protocol(seed: u64) -> GlobalType {
    generators::random_global(seed, &RandomProtocol::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The generator only produces well-formed protocols.
    #[test]
    fn generated_protocols_are_well_formed(seed in any::<u64>()) {
        prop_assert!(random_protocol(seed).well_formed().is_ok());
    }

    /// Unfolding recursion preserves well-formedness, participants and the
    /// unravelling (equi-recursion, [g-unr-rec]).
    #[test]
    fn unfolding_is_transparent(seed in any::<u64>()) {
        let g = random_protocol(seed);
        let unfolded = g.unfold_once();
        prop_assert!(unfolded.well_formed().is_ok());
        prop_assert_eq!(g.participants(), unfolded.participants());
        let t1 = unravel_global(&g).unwrap();
        let t2 = unravel_global(&unfolded).unwrap();
        prop_assert!(t1.bisimilar(t1.root(), &t2, t2.root()));
    }

    /// The unravelling arena never has more nodes than the syntactic size of
    /// the protocol (regularity bound).
    #[test]
    fn unravelling_is_bounded_by_the_syntax(seed in any::<u64>()) {
        let g = random_protocol(seed);
        let tree = unravel_global(&g).unwrap();
        prop_assert!(tree.len() <= g.size() + 1);
    }

    /// Inductive projections, when defined, are well-formed local types whose
    /// partners are participants of the protocol, and they satisfy the
    /// coinductive projection relation after unravelling (Theorem 3.6 again,
    /// stated structurally).
    #[test]
    fn projections_are_well_formed_and_coherent(seed in any::<u64>()) {
        let g = random_protocol(seed);
        let participants = g.participants();
        if let Ok(all) = project_all(&g) {
            let gtree = unravel_global(&g).unwrap();
            for (role, local) in all {
                prop_assert!(local.well_formed().is_ok());
                for partner in local.partners() {
                    prop_assert!(participants.contains(&partner));
                }
                let ltree = unravel_local(&local).unwrap();
                prop_assert!(is_cprojection(&gtree, &role, &ltree));
            }
        }
    }

    /// Coinductive projection is at least as permissive as inductive
    /// projection, and both agree up to bisimilarity when the latter exists.
    #[test]
    fn coinductive_projection_extends_inductive_projection(seed in any::<u64>()) {
        let g = random_protocol(seed);
        let gtree = unravel_global(&g).unwrap();
        for role in g.participants() {
            if let Ok(inductive) = project(&g, &role) {
                let via_type = unravel_local(&inductive).unwrap();
                let via_tree = cproject(&gtree, &role).unwrap();
                prop_assert!(via_type.equivalent(&via_tree));
            }
        }
    }

    /// A role that does not occur in the protocol coinductively projects to
    /// `end_c`, and whenever the (stricter, partial) inductive projection is
    /// defined for it, it is `end` too.
    #[test]
    fn non_participants_project_to_end(seed in any::<u64>()) {
        let g = random_protocol(seed);
        let outsider = Role::new("outsider-role");
        prop_assert!(!g.participants().contains(&outsider));
        let gtree = unravel_global(&g).unwrap();
        prop_assert!(is_cprojection(&gtree, &outsider, &zooid_mpst::local::LocalTree::end()));
        if let Ok(local) = project(&g, &outsider) {
            prop_assert_eq!(local, zooid_mpst::local::LocalType::End);
        }
    }

    /// Queue environments are FIFO per ordered pair and enq/deq are inverse.
    #[test]
    fn queue_environments_are_fifo(labels in proptest::collection::vec(0u8..8, 1..20)) {
        let p = Role::new("p");
        let q = Role::new("q");
        let mut env = QueueEnv::empty();
        for l in &labels {
            env.enq(&p, &q, Label::new(format!("l{l}")), Sort::Nat);
        }
        prop_assert_eq!(env.total_messages(), labels.len());
        for l in &labels {
            let (label, _) = env.deq(&p, &q).unwrap();
            prop_assert_eq!(label, Label::new(format!("l{l}")));
        }
        prop_assert!(env.is_empty());
        prop_assert!(env.deq(&p, &q).is_none());
    }

    /// Hash-consing: interned-id equality coincides with structural equality,
    /// and interning round-trips through resolution.
    #[test]
    fn interned_id_equality_is_structural_equality(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let a = random_protocol(seed_a);
        let b = random_protocol(seed_b);
        let mut interner = Interner::new();
        let ia = interner.intern_global(&a);
        let ib = interner.intern_global(&b);
        prop_assert_eq!(ia == ib, a == b, "id equality must mirror structural equality");
        prop_assert_eq!(interner.resolve_global(ia), a);
        prop_assert_eq!(interner.resolve_global(ib), b);
        // Re-interning is stable.
        prop_assert_eq!(interner.intern_global(&a), ia);
    }

    /// Hash-consed unfolding agrees with the boxed implementation.
    #[test]
    fn interned_unfolding_matches_boxed_unfolding(seed in any::<u64>()) {
        let g = random_protocol(seed);
        let mut interner = Interner::new();
        let id = interner.intern_global(&g);
        let unfolded = interner.unfold_once_global(id);
        prop_assert_eq!(interner.resolve_global(unfolded), g.unfold_once());
        let hnf = interner.unfold_head_global(id);
        prop_assert_eq!(interner.resolve_global(hnf), g.unfold_head());
    }

    /// The on-the-fly trace-equivalence checker returns the same verdict as
    /// the seed's set-based checker on random projectable protocols.
    #[test]
    fn on_the_fly_trace_equivalence_agrees_with_set_based(seed in any::<u64>()) {
        let params = RandomProtocol { roles: 3, depth: 3, max_branches: 2, loop_back_percent: 20 };
        let g = generators::random_global(seed, &params);
        if project_all(&g).is_ok() {
            for depth in [0usize, 2, 4] {
                let fast = check_trace_equivalence(&g, depth).unwrap();
                let slow = check_trace_equivalence_exhaustive(&g, depth).unwrap();
                prop_assert_eq!(fast.holds, slow.holds, "verdicts differ at depth {}", depth);
            }
        }
    }

    /// `RoleSet` behaves like a reference set of indices.
    #[test]
    fn role_set_matches_reference_semantics(indices in proptest::collection::vec(0usize..200, 0..40)) {
        let mut set = RoleSet::new();
        let mut reference = std::collections::BTreeSet::new();
        for &i in &indices {
            prop_assert_eq!(set.insert(i), reference.insert(i));
        }
        prop_assert_eq!(set.len(), reference.len());
        prop_assert_eq!(set.iter().collect::<Vec<_>>(),
                        reference.iter().copied().collect::<Vec<_>>());
        for &i in &indices {
            prop_assert_eq!(set.remove(i), reference.remove(&i));
        }
        prop_assert!(set.is_empty());
        prop_assert_eq!(set, RoleSet::new());
    }

    /// The scalable generator families are always projectable and their
    /// participant counts match the requested size.
    #[test]
    fn generator_families_scale(n in 2usize..10) {
        let ring = generators::ring_n(n);
        prop_assert_eq!(ring.participants().len(), n);
        prop_assert!(project_all(&ring).is_ok());
        let chain = generators::chain_n(n);
        prop_assert!(project_all(&chain).is_ok());
        let fan = generators::fanout_n(n);
        prop_assert_eq!(fan.participants().len(), n + 1);
        prop_assert!(project_all(&fan).is_ok());
    }
}
