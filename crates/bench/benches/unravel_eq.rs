//! Bench E3: equality up to unravelling — the decision procedure that stands
//! in for the paper's "simple proof by coinduction" when a process implements
//! an unrolling of its projected local type (§5.1).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zooid_dsl::unravel_eq;
use zooid_mpst::generators;
use zooid_mpst::projection::project;
use zooid_mpst::Role;

fn bench_unravel_eq(c: &mut Criterion) {
    let mut group = c.benchmark_group("unravel_eq_unrollings");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    // Compare each projection of the ping-pong and chain protocols with its
    // n-fold unrolling, for growing n.
    let alice = project(&generators::ping_pong(), &Role::new("Alice")).expect("projectable");
    let chain_head = project(&generators::chain_n(4), &Role::new("w0")).expect("projectable");
    for unrollings in [1usize, 4, 16, 64] {
        for (name, base) in [("ping_pong_alice", &alice), ("chain4_w0", &chain_head)] {
            let mut unrolled = base.clone();
            for _ in 0..unrollings {
                unrolled = unrolled.unfold_once();
            }
            let id = format!("{name}/{unrollings}");
            group.bench_function(BenchmarkId::from_parameter(id), |b| {
                b.iter(|| assert!(unravel_eq(std::hint::black_box(base), std::hint::black_box(&unrolled))));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_unravel_eq);
criterion_main!(benches);
