//! Bench B1: unravelling global types into their semantic trees (the graph
//! construction underlying every coinductive check).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zooid_bench::scaling_protocols;
use zooid_mpst::global::unravel_global;

fn bench_unravel(c: &mut Criterion) {
    let mut group = c.benchmark_group("unravel");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (name, g) in scaling_protocols(&[2, 8, 32, 128]) {
        group.bench_with_input(BenchmarkId::from_parameter(&name), &g, |b, g| {
            b.iter(|| unravel_global(std::hint::black_box(g)).expect("well-formed"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_unravel);
criterion_main!(benches);
