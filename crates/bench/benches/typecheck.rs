//! Bench E11/B1: type checking of the certified case-study endpoints (the
//! `of_lt` judgement the DSL re-derives at certification time), plus the full
//! certification step of `Protocol::implement`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zooid_bench::all_case_studies;
use zooid_proc::type_check;

fn bench_typecheck(c: &mut Criterion) {
    let cases = all_case_studies();

    let mut group = c.benchmark_group("type_check");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for case in &cases {
        for (role, wt) in &case.endpoints {
            let id = format!("{}/{}", case.name, role);
            group.bench_function(BenchmarkId::from_parameter(id), |b| {
                b.iter(|| {
                    type_check(
                        std::hint::black_box(wt.proc()),
                        std::hint::black_box(wt.local_type()),
                        &case.externals,
                    )
                    .expect("well-typed")
                });
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("certification");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for case in &cases {
        for (role, wt) in &case.endpoints {
            let id = format!("{}/{}", case.name, role);
            group.bench_function(BenchmarkId::from_parameter(id), |b| {
                b.iter(|| {
                    case.protocol
                        .implement(role, wt.clone(), &case.externals)
                        .expect("certifiable")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_typecheck);
criterion_main!(benches);
