//! Bench E6/B1: inductive projection of global types onto all their
//! participants, over the scalable protocol families.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zooid_bench::scaling_protocols;
use zooid_mpst::projection::project_all;

fn bench_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("projection");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (name, g) in scaling_protocols(&[2, 8, 32, 128]) {
        group.bench_with_input(BenchmarkId::from_parameter(&name), &g, |b, g| {
            b.iter(|| project_all(std::hint::black_box(g)).expect("projectable"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_projection);
criterion_main!(benches);
