//! Bench E13: end-to-end execution of certified sessions on the in-memory
//! runtime (throughput of the extraction + transport path), for each
//! terminating case study and for a fixed number of pipeline rounds.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zooid_bench::{all_case_studies, CaseStudy};
use zooid_runtime::SessionHarness;

fn run_case(case: &CaseStudy) {
    let mut harness = SessionHarness::new(case.protocol.clone());
    for (role, wt) in &case.endpoints {
        let cert = case
            .protocol
            .implement(role, wt.clone(), &case.externals)
            .expect("certifiable");
        harness.add_endpoint(cert, case.externals.clone()).expect("unique role");
    }
    if let Some(limit) = case.max_steps {
        harness.with_max_steps(limit);
        harness.with_recv_timeout(Duration::from_millis(500));
    }
    let report = harness.run().expect("session runs");
    assert!(report.compliant, "{:?}", report.violations);
}

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_execution");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    for case in all_case_studies() {
        group.bench_function(BenchmarkId::from_parameter(case.name), |b| {
            b.iter(|| run_case(&case));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_execution);
criterion_main!(benches);
