//! Bench E9/E10: the bounded step-correspondence and trace-equivalence
//! checkers (Theorems 3.16, 3.17 and 3.21) on the paper's protocols.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zooid_mpst::generators;
use zooid_mpst::trace_equiv::{check_step_soundness, check_trace_equivalence};

fn bench_trace_equiv(c: &mut Criterion) {
    let cases = [
        ("ring3", generators::ring3()),
        ("pipeline", generators::pipeline()),
        ("ping_pong", generators::ping_pong()),
        ("two_buyer", generators::two_buyer()),
    ];

    let mut group = c.benchmark_group("step_soundness_depth4");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (name, g) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), g, |b, g| {
            b.iter(|| {
                let report = check_step_soundness(std::hint::black_box(g), 4).expect("projectable");
                assert!(report.holds);
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("trace_equivalence_depth5");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (name, g) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), g, |b, g| {
            b.iter(|| {
                let report = check_trace_equivalence(std::hint::black_box(g), 5).expect("projectable");
                assert!(report.holds);
            });
        });
    }
    group.finish();

    // The scaling families at depth 8 (experiment B1 applied to the checker):
    // the asynchronous `chain`/`fanout` families enable several actions per
    // state, which is where the on-the-fly product construction collapses
    // interleavings that the set-based enumeration would explore one trace at
    // a time.
    let mut group = c.benchmark_group("trace_equivalence_scaling_depth8");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    let mut scaling = Vec::new();
    for &n in &[2usize, 8, 32] {
        scaling.push((format!("ring/{n}"), generators::ring_n(n)));
        scaling.push((format!("chain/{n}"), generators::chain_n(n)));
        scaling.push((format!("fanout/{n}"), generators::fanout_n(n)));
    }
    for (name, g) in &scaling {
        group.bench_with_input(BenchmarkId::from_parameter(name), g, |b, g| {
            b.iter(|| {
                let report = check_trace_equivalence(std::hint::black_box(g), 8).expect("projectable");
                assert!(report.holds);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_equiv);
criterion_main!(benches);
