//! Bench: throughput of the sharded session server vs the
//! thread-per-participant harness, on batches of concurrent sessions.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zooid_dsl::Protocol;
use zooid_mpst::generators;
use zooid_runtime::SessionHarness;
use zooid_server::synth::skeleton_endpoints;
use zooid_server::{ProtocolRegistry, ServerConfig, SessionServer, SessionSpec};

const SESSIONS: usize = 256;

fn run_server_batch(protocol: &Protocol, shards: usize, sessions: usize) {
    let mut registry = ProtocolRegistry::new();
    let id = registry.register(protocol.clone()).expect("registrable");
    let endpoints = skeleton_endpoints(protocol).expect("synthesizable");
    let mut server = SessionServer::start(registry, ServerConfig::with_shards(shards));
    for _ in 0..sessions {
        server.submit(SessionSpec::new(id, endpoints.clone())).expect("submits");
    }
    let outcomes = server.drain();
    assert_eq!(outcomes.len(), sessions);
    assert!(outcomes.iter().all(|o| o.all_finished_and_compliant()));
    server.shutdown();
}

fn run_harness_batch(protocol: &Protocol, sessions: usize) {
    let endpoints = skeleton_endpoints(protocol).expect("synthesizable");
    for _ in 0..sessions {
        let mut harness = SessionHarness::new(protocol.clone());
        for (cert, ext) in endpoints.clone() {
            harness.add_endpoint(cert, ext).expect("unique role");
        }
        let report = harness.run().expect("session runs");
        assert!(report.all_finished_and_compliant());
    }
}

fn bench_server_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));
    let protocol = Protocol::new("ring", generators::ring_n(4)).expect("well-formed");
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(
            BenchmarkId::new("server", format!("ring4/{SESSIONS}sessions/{shards}shards")),
            |b| b.iter(|| run_server_batch(&protocol, shards, SESSIONS)),
        );
    }
    group.bench_function(
        BenchmarkId::new("harness", format!("ring4/{SESSIONS}sessions")),
        |b| b.iter(|| run_harness_batch(&protocol, SESSIONS)),
    );
    group.finish();
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
