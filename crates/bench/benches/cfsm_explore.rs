//! Bench E12/B1: explicit-state exploration of the communicating-automata
//! systems (deadlock/orphan/reception checks), on the case studies and the
//! scalable families.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zooid_cfsm::{check_protocol, System};
use zooid_mpst::generators;

fn bench_cfsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("cfsm_explore_bound2");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let protocols = vec![
        ("ring3".to_owned(), generators::ring3()),
        ("pipeline".to_owned(), generators::pipeline()),
        ("ping_pong".to_owned(), generators::ping_pong()),
        ("two_buyer".to_owned(), generators::two_buyer()),
        ("ring/6".to_owned(), generators::ring_n(6)),
        ("chain/5".to_owned(), generators::chain_n(5)),
        ("fanout/5".to_owned(), generators::fanout_n(5)),
        ("branching/5".to_owned(), generators::branching(5)),
    ];
    for (name, g) in &protocols {
        group.bench_with_input(BenchmarkId::from_parameter(name), g, |b, g| {
            b.iter(|| {
                let report = check_protocol(std::hint::black_box(g), 2, 500_000).expect("projectable");
                assert!(report.is_safe());
            });
        });
    }
    group.finish();
}

/// Interned engine vs the retained explicit-state oracle over the same
/// visited-configuration budget (the differential pair of `BENCH_pr2.json`).
fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("cfsm_engine_vs_exhaustive");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let cap = 10_000;
    for (name, g) in [
        ("ring/8".to_owned(), generators::ring_n(8)),
        ("chain/8".to_owned(), generators::chain_n(8)),
        ("fanout/8".to_owned(), generators::fanout_n(8)),
        ("fanout/32".to_owned(), generators::fanout_n(32)),
    ] {
        let system = System::from_global(&g).expect("projectable");
        let compiled = system.compile();
        group.bench_with_input(
            BenchmarkId::new("interned", &name),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    let outcome = std::hint::black_box(compiled).explore(2, cap);
                    std::hint::black_box(outcome.configurations);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exhaustive", &name),
            &system,
            |b, system| {
                b.iter(|| {
                    let outcome = std::hint::black_box(system).explore_exhaustive(2, cap);
                    std::hint::black_box(outcome.configurations);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cfsm, bench_engines);
criterion_main!(benches);
