//! Bench E12/B1: explicit-state exploration of the communicating-automata
//! systems (deadlock/orphan/reception checks), on the case studies and the
//! scalable families.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zooid_cfsm::check_protocol;
use zooid_mpst::generators;

fn bench_cfsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("cfsm_explore_bound2");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let protocols = vec![
        ("ring3".to_owned(), generators::ring3()),
        ("pipeline".to_owned(), generators::pipeline()),
        ("ping_pong".to_owned(), generators::ping_pong()),
        ("two_buyer".to_owned(), generators::two_buyer()),
        ("ring/6".to_owned(), generators::ring_n(6)),
        ("chain/5".to_owned(), generators::chain_n(5)),
        ("fanout/5".to_owned(), generators::fanout_n(5)),
        ("branching/5".to_owned(), generators::branching(5)),
    ];
    for (name, g) in &protocols {
        group.bench_with_input(BenchmarkId::from_parameter(name), g, |b, g| {
            b.iter(|| {
                let report = check_protocol(std::hint::black_box(g), 2, 500_000).expect("projectable");
                assert!(report.is_safe());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cfsm);
criterion_main!(benches);
