//! Shared fixtures for the evaluation harness: the paper's case-study
//! protocols, their DSL endpoint implementations, and the scalable protocol
//! families used by the Criterion benches (see `EXPERIMENTS.md`).

#![forbid(unsafe_code)]

use zooid_dsl::builder::{self, BranchAlt, SelectAlt};
use zooid_dsl::{Protocol, WtProc};
use zooid_mpst::generators;
use zooid_mpst::global::GlobalType;
use zooid_mpst::local::LocalType;
use zooid_mpst::{Role, Sort};
use zooid_proc::{Expr, Externals};

/// One named case study, as evaluated in §5 of the paper: the protocol plus
/// one certified-able endpoint implementation per role.
pub struct CaseStudy {
    /// Short identifier (used as the row name in reports).
    pub name: &'static str,
    /// Which paper section the case study reproduces.
    pub section: &'static str,
    /// The protocol.
    pub protocol: Protocol,
    /// One endpoint implementation per participant.
    pub endpoints: Vec<(Role, WtProc)>,
    /// External actions shared by all endpoints of the case study.
    pub externals: Externals,
    /// Step limit for sessions of non-terminating protocols (`None` for
    /// protocols that terminate by themselves).
    pub max_steps: Option<usize>,
}

fn r(name: &str) -> Role {
    Role::new(name)
}

/// The §2.3 ring.
pub fn ring_case() -> CaseStudy {
    let protocol = Protocol::new("ring", generators::ring3()).expect("well-formed");
    let forward = |from: &str, to: &str| {
        builder::branch(
            r(from),
            vec![BranchAlt::new(
                "l",
                Sort::Nat,
                "x",
                builder::send(r(to), "l", Sort::Nat, Expr::add(Expr::var("x"), Expr::lit(1u64)), builder::finish())
                    .expect("send"),
            )],
        )
        .expect("branch")
    };
    let alice = builder::send(
        r("Bob"),
        "l",
        Sort::Nat,
        Expr::lit(1u64),
        builder::recv1(r("Carol"), "l", Sort::Nat, "y", builder::finish()).expect("recv"),
    )
    .expect("send");
    CaseStudy {
        name: "ring",
        section: "§2.3",
        protocol,
        endpoints: vec![
            (r("Alice"), alice),
            (r("Bob"), forward("Alice", "Carol")),
            (r("Carol"), forward("Bob", "Alice")),
        ],
        externals: Externals::new(),
        max_steps: None,
    }
}

/// The §5.1 recursive pipeline (run with a step limit).
pub fn pipeline_case() -> CaseStudy {
    let protocol = Protocol::new("pipeline", generators::pipeline()).expect("well-formed");
    let mut externals = Externals::new();
    externals.register_interact("compute", Sort::Nat, Sort::Nat, |v| {
        zooid_proc::Value::Nat(v.as_nat().unwrap_or(0) + 1)
    });
    let alice = builder::loop_(
        builder::send(r("Bob"), "l", Sort::Nat, Expr::lit(1u64), builder::jump(0)).expect("send"),
    )
    .expect("loop");
    let bob = builder::loop_(
        builder::recv1(
            r("Alice"),
            "l",
            Sort::Nat,
            "x",
            builder::interact(
                "compute",
                Expr::var("x"),
                "res",
                builder::send(r("Carol"), "l", Sort::Nat, Expr::var("res"), builder::jump(0))
                    .expect("send"),
            ),
        )
        .expect("recv"),
    )
    .expect("loop");
    let carol = builder::loop_(
        builder::recv1(r("Bob"), "l", Sort::Nat, "y", builder::jump(0)).expect("recv"),
    )
    .expect("loop");
    CaseStudy {
        name: "pipeline",
        section: "§5.1",
        protocol,
        endpoints: vec![(r("Alice"), alice), (r("Bob"), bob), (r("Carol"), carol)],
        externals,
        max_steps: Some(200),
    }
}

/// The §5.1 / §B.1 ping-pong with the `alice4` client (terminates when the
/// reply reaches the threshold).
pub fn ping_pong_case() -> CaseStudy {
    let protocol = Protocol::new("ping-pong", generators::ping_pong()).expect("well-formed");
    let inner = builder::select(
        r("Bob"),
        vec![
            SelectAlt::case(
                Expr::ge(Expr::var("x"), Expr::lit(64u64)),
                "l1",
                Sort::Unit,
                Expr::unit(),
                builder::finish(),
            ),
            SelectAlt::otherwise("l2", Sort::Nat, Expr::var("x"), builder::jump(0)),
        ],
    )
    .expect("select");
    let alice = builder::select(
        r("Bob"),
        vec![
            SelectAlt::skip("l1", Sort::Unit, LocalType::End),
            SelectAlt::otherwise(
                "l2",
                Sort::Nat,
                Expr::lit(0u64),
                builder::loop_(builder::recv1(r("Bob"), "l3", Sort::Nat, "x", inner).expect("recv"))
                    .expect("loop"),
            ),
        ],
    )
    .expect("select");
    let bob = builder::loop_(
        builder::branch(
            r("Alice"),
            vec![
                BranchAlt::new("l1", Sort::Unit, "_q", builder::finish()),
                BranchAlt::new(
                    "l2",
                    Sort::Nat,
                    "x",
                    builder::send(
                        r("Alice"),
                        "l3",
                        Sort::Nat,
                        Expr::add(Expr::var("x"), Expr::lit(8u64)),
                        builder::jump(0),
                    )
                    .expect("send"),
                ),
            ],
        )
        .expect("branch"),
    )
    .expect("loop");
    CaseStudy {
        name: "ping-pong/alice4",
        section: "§5.1, §B.1",
        protocol,
        endpoints: vec![(r("Alice"), alice), (r("Bob"), bob)],
        externals: Externals::new(),
        max_steps: None,
    }
}

/// The §5.2 two-buyer protocol (B accepts: A covers most of the price).
pub fn two_buyer_case() -> CaseStudy {
    let protocol = Protocol::new("two-buyer", generators::two_buyer()).expect("well-formed");
    let buyer_a = builder::send(
        r("S"),
        "ItemId",
        Sort::Nat,
        Expr::lit(42u64),
        builder::recv1(
            r("S"),
            "Quote",
            Sort::Nat,
            "quote",
            builder::send(
                r("B"),
                "Propose",
                Sort::Nat,
                Expr::sub(Expr::var("quote"), Expr::lit(220u64)),
                builder::finish(),
            )
            .expect("send"),
        )
        .expect("recv"),
    )
    .expect("send");
    let buyer_b = builder::recv1(
        r("S"),
        "Quote",
        Sort::Nat,
        "x",
        builder::recv1(
            r("A"),
            "Propose",
            Sort::Nat,
            "y",
            builder::select(
                r("S"),
                vec![
                    SelectAlt::case(
                        Expr::le(Expr::var("y"), Expr::div(Expr::var("x"), Expr::lit(3u64))),
                        "Accept",
                        Sort::Nat,
                        Expr::var("y"),
                        builder::recv1(r("S"), "Date", Sort::Nat, "d", builder::finish())
                            .expect("recv"),
                    ),
                    SelectAlt::otherwise("Reject", Sort::Unit, Expr::unit(), builder::finish()),
                ],
            )
            .expect("select"),
        )
        .expect("recv"),
    )
    .expect("recv");
    let seller = builder::recv1(
        r("A"),
        "ItemId",
        Sort::Nat,
        "item",
        builder::send(
            r("A"),
            "Quote",
            Sort::Nat,
            Expr::lit(300u64),
            builder::send(
                r("B"),
                "Quote",
                Sort::Nat,
                Expr::lit(300u64),
                builder::branch(
                    r("B"),
                    vec![
                        BranchAlt::new(
                            "Accept",
                            Sort::Nat,
                            "share",
                            builder::send(r("B"), "Date", Sort::Nat, Expr::lit(7u64), builder::finish())
                                .expect("send"),
                        ),
                        BranchAlt::new("Reject", Sort::Unit, "_u", builder::finish()),
                    ],
                )
                .expect("branch"),
            )
            .expect("send"),
        )
        .expect("send"),
    )
    .expect("recv");
    CaseStudy {
        name: "two-buyer",
        section: "§5.2",
        protocol,
        endpoints: vec![(r("A"), buyer_a), (r("B"), buyer_b), (r("S"), seller)],
        externals: Externals::new(),
        max_steps: None,
    }
}

/// All the case studies, in the order they are reported.
pub fn all_case_studies() -> Vec<CaseStudy> {
    vec![ring_case(), pipeline_case(), ping_pong_case(), two_buyer_case()]
}

/// The scalable protocol families swept by the benchmarks (experiment B1).
pub fn scaling_protocols(sizes: &[usize]) -> Vec<(String, GlobalType)> {
    let mut out = Vec::new();
    for &n in sizes {
        out.push((format!("ring/{n}"), generators::ring_n(n)));
        out.push((format!("chain/{n}"), generators::chain_n(n)));
        out.push((format!("fanout/{n}"), generators::fanout_n(n)));
    }
    for depth in [2usize, 4, 6] {
        out.push((format!("branching/{depth}"), generators::branching(depth)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_case_study_certifies_every_endpoint() {
        for case in all_case_studies() {
            for (role, wt) in &case.endpoints {
                case.protocol
                    .implement(role, wt.clone(), &case.externals)
                    .unwrap_or_else(|e| panic!("{}::{role}: {e}", case.name));
            }
        }
    }

    #[test]
    fn scaling_protocols_are_well_formed() {
        for (name, g) in scaling_protocols(&[2, 4, 8]) {
            assert!(g.well_formed().is_ok(), "{name}");
        }
    }

    /// The on-the-fly trace-equivalence checker must return exactly the
    /// verdict of the seed's set-based checker on every case study and
    /// scaling protocol (PR 1 acceptance criterion).
    #[test]
    fn on_the_fly_checker_matches_set_based_on_all_case_studies() {
        use zooid_mpst::trace_equiv::{
            check_trace_equivalence, check_trace_equivalence_exhaustive,
        };
        let mut protocols: Vec<(String, GlobalType)> = all_case_studies()
            .into_iter()
            .map(|case| (case.name.to_owned(), case.protocol.global().clone()))
            .collect();
        protocols.extend(scaling_protocols(&[2, 4, 8]));
        for (name, g) in protocols {
            for depth in [0usize, 2, 5] {
                let fast = check_trace_equivalence(&g, depth).unwrap();
                let slow = check_trace_equivalence_exhaustive(&g, depth).unwrap();
                assert_eq!(fast.holds, slow.holds, "{name} at depth {depth}");
            }
        }
    }
}
