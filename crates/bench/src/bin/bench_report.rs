//! Emits a machine-readable benchmark report (`BENCH_pr10.json`) so future
//! PRs can track the performance trajectory of the hot paths.
//!
//! For every scalable protocol family (`ring`, `chain`, `fanout`) at sizes
//! 2/8/32/128 it records the median wall-clock nanoseconds of:
//!
//! * `unravel`      — [`unravel_global`];
//! * `projection`   — [`project_all`];
//! * `trace_equiv`  — the on-the-fly [`check_trace_equivalence`] (depth 8 up
//!   to size 32, depth 4 at size 128 to keep the exhaustive baseline
//!   tractable);
//! * `cfsm_explore` — the interned CFSM engine ([`System::explore`]) at
//!   channel bound 2, capped at a fixed number of visited configurations so
//!   every family stays tractable at size 128.
//!
//! Two families track the exploration modes added in PR 4:
//!
//! * `cfsm_explore_por` — the ample-set partial-order reduction
//!   ([`System::explore_por`]) against the full interned engine
//!   ([`System::explore`]) at the same channel bound and configuration
//!   budget. On the concurrent families the reduction collapses the
//!   interleaving space to its causal skeleton, so the same (identical!)
//!   verdict arrives after a fraction of the configurations; the harness
//!   asserts verdict agreement before timing;
//! * `cfsm_explore_par` — the work-stealing parallel frontier
//!   ([`System::explore_parallel`]) at 1/2/4 worker threads on the largest
//!   residual (post-reduction) state space, baselined against its own
//!   single-thread run. Observed scaling is bounded by the CPUs the
//!   container actually grants (this harness records, it does not assume).
//!
//! Three families track the serving layer (PR 3, rebuilt on the compiled
//! data plane in PR 5):
//!
//! * `endpoint_step` — per-visible-action cost of the **compiled** endpoint
//!   executor ([`CompiledEndpointTask`]: program counter + slot array,
//!   dense-indexed transport, no codec) against the tree-walking
//!   [`EndpointTask`] running the same looping sessions (recursive
//!   chain/fanout at several sizes) cooperatively on one thread to a fixed
//!   step budget. Both sides run in *quiet* mode (no observer, trace
//!   recording off — the fire-and-forget configuration) so the family
//!   measures stepping itself; per-action monitoring cost is tracked
//!   separately by `monitor_action`;
//! * `server_throughput` — wall-clock of a whole batch of concurrent
//!   in-memory sessions (10,000 in full mode) on the sharded
//!   `zooid_server::SessionServer`, at 1 and 4 worker shards (plus a
//!   4-shard `notrace` case with per-endpoint trace recording off — the
//!   fire-and-forget configuration); the baseline is the
//!   thread-per-participant [`SessionHarness`] running the same workload
//!   (measured on a smaller batch and scaled per-session, since spawning 3
//!   threads per session makes large batches pointless);
//! * `monitor_action` — per-action cost of the `CompiledMonitor` (dense
//!   interned transition tables) on a compliant trace, against the
//!   `TraceMonitor` (boxed global-LTS replay) observing the same trace.
//!
//! One family tracks the networked serving plane added in PR 7:
//!
//! * `server_throughput_tcp` — wall-clock of the same session batch served
//!   over real loopback sockets by the event-driven
//!   [`zooid_server::NetServer`] (one non-blocking IO thread, framed
//!   multiplexed wire protocol, client threads windowing their opens and
//!   awaiting `Done` frames), baselined against the in-memory 4-shard
//!   `server_throughput` figure from the same run — the delta *is* the
//!   wire.
//!
//! One family tracks the columnar data plane added in PR 6:
//!
//! * `batch_step` — per-visible-action cost of the **columnar batch
//!   executor** ([`zooid_runtime::SessionBatch`]: struct-of-arrays state,
//!   `(role, pc)` cohort stepping, shared frame arena, zero-hash
//!   monitoring) running whole populations of identical monitored sessions,
//!   against the per-session compiled executor plus `CompiledMonitor` — the
//!   slab configuration the server falls back to — running the same
//!   sessions one at a time. Both sides are fire-and-forget (trace
//!   recording off); measured at several batch widths.
//!
//! One family tracks the observability plane added in PR 8:
//!
//! * `obs_overhead` — the same columnar batch stepping with the shard
//!   worker's full observability instrumentation attached (flight-recorder
//!   admission events, per-quantum clock reads into the per-action
//!   histogram, the cohort-width fold, session wall-time recording per
//!   outcome) against the bare loop. The ratio is the whole cost of the
//!   recorder and must stay within noise; `scripts/ci.sh` asserts it.
//!
//! One family tracks the hostile-world plane added in PR 9:
//!
//! * `fault_overhead` — whole sessions driven with every endpoint wrapped
//!   in an **empty-plan** [`zooid_runtime::faults::FaultyTransport`] (the
//!   bystander configuration of the hostile campaign suite) against the
//!   same cooperative schedule on the bare in-memory transport. With no
//!   fault specs the wrapper never consults its PRNG; the delta is pure
//!   per-operation bookkeeping (the counted-op and tick clocks) and must
//!   stay within noise; `scripts/ci.sh` asserts the ratio.
//!
//! Each remaining entry also carries a `baseline_ns`:
//!
//! * for `unravel`/`projection`, the seed implementation's medians, measured
//!   with the same vendored-criterion harness on the same machine at the seed
//!   commit (before the interning/memoisation rework of PR 1);
//! * for `trace_equiv`, the medians of the retained set-based reference
//!   checker ([`check_trace_equivalence_exhaustive`]), measured live in the
//!   same run;
//! * for `cfsm_explore`, the medians of the retained explicit-state explorer
//!   ([`System::explore_exhaustive`]), measured live in the same run over
//!   the *same* visited-configuration budget (the harness asserts both
//!   engines visit identical configuration counts before timing them).
//!
//! Run with `cargo run --release -p zooid-bench --bin bench-report`; writes
//! `BENCH_pr10.json` in the current directory. `--smoke` shrinks sizes and
//! budgets for CI smoke runs, `--out PATH` redirects the report.

use std::sync::Arc;
use std::time::Instant;

use zooid_cfsm::System;
use zooid_dsl::Protocol;
use zooid_mpst::common::intern::FxHashMap;
use zooid_mpst::generators;
use zooid_mpst::global::unravel_global;
use zooid_mpst::global::GlobalType;
use zooid_mpst::projection::project_all;
use zooid_mpst::trace_equiv::{check_trace_equivalence, check_trace_equivalence_exhaustive};
use zooid_mpst::{Action, Label, Role, Sort};
use zooid_cfsm::CompiledSystem;
use zooid_proc::{erase, CompiledProc, Externals, Proc};
use zooid_runtime::cbatch::{BatchLayout, SessionBatch};
use zooid_runtime::checkpoint::SessionCheckpoint;
use zooid_runtime::wal::{encode_quantum, encode_quantum_naive, WalIndexer};
use zooid_runtime::cexec::{CompiledEndpointTask, EndpointProgram};
use zooid_runtime::exec::{EndpointTask, ExecOptions, StepOutcome};
use zooid_runtime::faults::{FaultPlan, FaultyTransport};
use zooid_runtime::transport::{InMemoryNetwork, InMemoryTransport, Transport};
use zooid_runtime::{CompiledMonitor, SessionHarness, TraceMonitor};
use zooid_runtime::MuxFrame;
use zooid_server::obs::ShardObs;
use zooid_server::synth::skeleton_endpoints;
use zooid_server::{
    FlightEvent, NetClient, NetServer, NetServerConfig, ProtocolRegistry, ServerConfig, Service,
    SessionServer, SessionSpec,
};

const SIZES: [usize; 4] = [2, 8, 32, 128];
const SMOKE_SIZES: [usize; 2] = [2, 8];

/// Channel bound used by the `cfsm_explore` family.
const CFSM_BOUND: usize = 2;
/// Visited-configuration cap for the `cfsm_explore` family (the concurrent
/// families are exponential in protocol size, so the benchmark measures
/// time-to-visit-a-fixed-budget rather than time-to-exhaustion).
const CFSM_MAX_CONFIGS: usize = 10_000;

/// Seed medians (ns) for `unravel_global`, measured at the seed commit.
const SEED_UNRAVEL_NS: [(&str, u64); 12] = [
    ("ring/2", 1009),
    ("chain/2", 1117),
    ("fanout/2", 3896),
    ("ring/8", 19513),
    ("chain/8", 30803),
    ("fanout/8", 53443),
    ("ring/32", 236812),
    ("chain/32", 742297),
    ("fanout/32", 1045725),
    ("ring/128", 4156248),
    ("chain/128", 12030801),
    ("fanout/128", 17828562),
];

/// Seed medians (ns) for `project_all`, measured at the seed commit.
const SEED_PROJECTION_NS: [(&str, u64); 12] = [
    ("ring/2", 662),
    ("chain/2", 555),
    ("fanout/2", 1561),
    ("ring/8", 7409),
    ("chain/8", 7076),
    ("fanout/8", 15907),
    ("ring/32", 117457),
    ("chain/32", 115328),
    ("fanout/32", 276486),
    ("ring/128", 2069838),
    ("chain/128", 2185952),
    ("fanout/128", 4714854),
];

/// Median nanoseconds per call over up to `samples` timed samples, bounded by
/// a total time budget. Calls faster than ~2µs are timed in batches so timer
/// quantisation does not dominate the medians.
fn median_ns<F: FnMut()>(mut f: F, samples: usize, budget_ms: u64) -> u64 {
    // Warm-up, and estimate the cost of one call.
    let t0 = Instant::now();
    f();
    let per_call = t0.elapsed().as_nanos().max(1);
    let batch: u32 = if per_call >= 2_000 {
        1
    } else {
        (2_000 / per_call) as u32 + 1
    };
    for _ in 0..batch.min(64) {
        f();
    }
    let deadline = Instant::now() + std::time::Duration::from_millis(budget_ms);
    let mut observed = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        observed.push(t0.elapsed().as_nanos() as u64 / u64::from(batch));
        if Instant::now() > deadline {
            break;
        }
    }
    observed.sort_unstable();
    observed[observed.len() / 2]
}

/// Interleaved paired measurement for ratio families: alternates single
/// timed runs of `f(true)` and `f(false)` so machine drift (frequency
/// scaling, cache evictions, neighbours on the CI box) lands on both sides
/// equally, and returns `(median_true_ns, median_false_ns)`. A family that
/// asserts a *ratio* needs the pairing far more than it needs long budgets.
fn paired_median_ns<F: FnMut(bool)>(mut f: F, samples: usize) -> (u64, u64) {
    // Warm both paths.
    f(true);
    f(false);
    let mut on = Vec::with_capacity(samples);
    let mut off = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        f(true);
        on.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        f(false);
        off.push(t.elapsed().as_nanos() as u64);
    }
    on.sort_unstable();
    off.sort_unstable();
    (on[on.len() / 2], off[off.len() / 2])
}

struct Entry {
    bench: &'static str,
    case: String,
    median_ns: u64,
    baseline_ns: u64,
    baseline: &'static str,
}

fn families(n: usize) -> Vec<(String, GlobalType)> {
    vec![
        (format!("ring/{n}"), generators::ring_n(n)),
        (format!("chain/{n}"), generators::chain_n(n)),
        (format!("fanout/{n}"), generators::fanout_n(n)),
    ]
}

/// A *recursive* fan-out: each round the hub sends one task to every worker
/// and then collects every ack, forever — the looping cousin of
/// [`generators::fanout_n`] (same batched phase structure), used by the
/// `endpoint_step` family so per-step costs amortize over thousands of
/// steps per session.
fn fanout_loop(n: usize) -> GlobalType {
    let hub = Role::new("hub");
    let workers: Vec<Role> = (0..n).map(|i| Role::new(format!("w{i}"))).collect();
    let mut g = GlobalType::var(0);
    for w in workers.iter().rev() {
        g = GlobalType::msg1(w.clone(), hub.clone(), "ack", Sort::Unit, g);
    }
    for w in workers.iter().rev() {
        g = GlobalType::msg1(hub.clone(), w.clone(), "task", Sort::Nat, g);
    }
    GlobalType::rec(g)
}

/// One cooperative session drive (drain rounds until every endpoint is
/// done or none can progress), shared by both engines of `endpoint_step` so
/// the schedule — and any future tweak to it — is identical by
/// construction. Returns the number of visible actions performed.
fn drive_session<T>(
    roles: &[Role],
    make_task: impl Fn(&Role) -> T,
    mut step_quiet: impl FnMut(&mut T, &mut InMemoryTransport) -> StepOutcome,
    is_done: impl Fn(&T) -> bool,
    mark_stalled: impl Fn(&mut T),
) -> usize {
    let mut network = InMemoryNetwork::new(roles.iter().cloned());
    let mut tasks: Vec<(T, InMemoryTransport)> = roles
        .iter()
        .map(|role| {
            let transport = network.take_endpoint(role).expect("unique roles");
            (make_task(role), transport)
        })
        .collect();
    let mut actions = 0usize;
    loop {
        let mut progressed = false;
        for (task, transport) in &mut tasks {
            while let StepOutcome::Progress = step_quiet(task, transport) {
                progressed = true;
                actions += 1;
            }
        }
        if tasks.iter().all(|(t, _)| is_done(t)) {
            break;
        }
        if !progressed {
            for (task, _) in &mut tasks {
                mark_stalled(task);
            }
            break;
        }
    }
    actions
}

/// Steps every compiled endpoint of one session cooperatively until all are
/// done, returning the number of visible actions.
fn run_compiled_session(
    programs: &[(Role, Arc<EndpointProgram>)],
    options: &ExecOptions,
) -> usize {
    let roles: Vec<Role> = programs.iter().map(|(r, _)| r.clone()).collect();
    drive_session(
        &roles,
        |role| {
            let (_, program) = programs
                .iter()
                .find(|(r, _)| r == role)
                .expect("every role has a program");
            CompiledEndpointTask::new(Arc::clone(program), Externals::new(), options.clone())
        },
        |task, transport| task.step_mem_quiet(transport),
        CompiledEndpointTask::is_done,
        CompiledEndpointTask::mark_stalled,
    )
}

/// The same cooperative schedule over compiled tasks with a live
/// [`CompiledMonitor`] observing every action (trace recording off) — the
/// per-session slab configuration the batch executor replaces, used as the
/// `batch_step` baseline.
fn run_monitored_session(
    programs: &[(Role, Arc<EndpointProgram>)],
    system: &Arc<CompiledSystem>,
    options: &ExecOptions,
) -> usize {
    let roles: Vec<Role> = programs.iter().map(|(r, _)| r.clone()).collect();
    let mut monitor = CompiledMonitor::new(Arc::clone(system));
    monitor.set_record_trace(false);
    drive_session(
        &roles,
        |role| {
            let (_, program) = programs
                .iter()
                .find(|(r, _)| r == role)
                .expect("every role has a program");
            CompiledEndpointTask::new(Arc::clone(program), Externals::new(), options.clone())
        },
        |task, transport| {
            task.step_mem(transport, &mut |va, interned| match interned {
                Some(interned) => {
                    monitor.observe_interned(interned, || erase(va));
                }
                None => {
                    monitor.observe(&erase(va));
                }
            })
        },
        CompiledEndpointTask::is_done,
        CompiledEndpointTask::mark_stalled,
    )
}

/// The cooperative tree-walking schedule over caller-supplied transports —
/// the `fault_overhead` family uses it to drive the *same* session once on
/// bare in-memory endpoints and once with every endpoint wrapped in an
/// empty-plan [`FaultyTransport`], so the two sides differ in nothing but
/// the wrapper.
fn run_tree_session_over<T: Transport>(
    procs: &[(Role, Proc)],
    endpoints: Vec<(Role, T)>,
    options: &ExecOptions,
) -> usize {
    let mut tasks: Vec<(EndpointTask, T)> = endpoints
        .into_iter()
        .map(|(role, transport)| {
            let (_, proc) = procs
                .iter()
                .find(|(r, _)| *r == role)
                .expect("every role has a process");
            (
                EndpointTask::new(proc.clone(), role, Externals::new(), options.clone()),
                transport,
            )
        })
        .collect();
    let mut actions = 0usize;
    loop {
        let mut progressed = false;
        for (task, transport) in &mut tasks {
            while let StepOutcome::Progress = task.step_quiet(transport) {
                progressed = true;
                actions += 1;
            }
        }
        if tasks.iter().all(|(t, _)| t.is_done()) {
            break;
        }
        if !progressed {
            for (task, _) in &mut tasks {
                task.mark_stalled();
            }
            break;
        }
    }
    actions
}

/// The same cooperative schedule over tree-walking tasks.
fn run_tree_session(procs: &[(Role, Proc)], options: &ExecOptions) -> usize {
    let roles: Vec<Role> = procs.iter().map(|(r, _)| r.clone()).collect();
    drive_session(
        &roles,
        |role| {
            let (_, proc) = procs
                .iter()
                .find(|(r, _)| r == role)
                .expect("every role has a process");
            EndpointTask::new(proc.clone(), role.clone(), Externals::new(), options.clone())
        },
        |task, transport| task.step_quiet(transport),
        EndpointTask::is_done,
        EndpointTask::mark_stalled,
    )
}

fn seed_baseline(table: &[(&str, u64)], case: &str) -> u64 {
    table
        .iter()
        .find(|(name, _)| *name == case)
        .map(|(_, ns)| *ns)
        .unwrap_or(0)
}

struct Options {
    smoke: bool,
    out: String,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        out: "BENCH_pr10.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                opts.out = args.next().expect("--out needs a path");
            }
            other => panic!("unknown argument `{other}` (expected --smoke or --out PATH)"),
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let sizes: &[usize] = if opts.smoke { &SMOKE_SIZES } else { &SIZES };
    // Smoke runs trade statistical stability for wall-clock: CI only checks
    // the report's shape, not its numbers.
    let (samples, budget_ms) = if opts.smoke { (5, 200) } else { (50, 2_000) };
    let cfsm_cap = if opts.smoke { 2_000 } else { CFSM_MAX_CONFIGS };
    let mut entries: Vec<Entry> = Vec::new();

    for &n in sizes {
        for (case, g) in families(n) {
            let ns = median_ns(
                || {
                    std::hint::black_box(unravel_global(std::hint::black_box(&g)).unwrap());
                },
                samples,
                budget_ms,
            );
            entries.push(Entry {
                bench: "unravel",
                case: case.clone(),
                median_ns: ns,
                baseline_ns: seed_baseline(&SEED_UNRAVEL_NS, &case),
                baseline: "seed unravel_global (measured at seed commit)",
            });

            let ns = median_ns(
                || {
                    std::hint::black_box(project_all(std::hint::black_box(&g)).unwrap());
                },
                samples,
                budget_ms,
            );
            entries.push(Entry {
                bench: "projection",
                case: case.clone(),
                median_ns: ns,
                baseline_ns: seed_baseline(&SEED_PROJECTION_NS, &case),
                baseline: "seed project_all (measured at seed commit)",
            });

            // Keep the exhaustive baseline tractable at size 128.
            let depth = if n >= 128 { 6 } else { 8 };
            let ns = median_ns(
                || {
                    let report =
                        check_trace_equivalence(std::hint::black_box(&g), depth).unwrap();
                    assert!(report.holds);
                },
                if opts.smoke { 5 } else { 15 },
                if opts.smoke { 300 } else { 5_000 },
            );
            let baseline_ns = median_ns(
                || {
                    let report =
                        check_trace_equivalence_exhaustive(std::hint::black_box(&g), depth)
                            .unwrap();
                    assert!(report.holds);
                },
                if opts.smoke { 3 } else { 9 },
                if opts.smoke { 500 } else { 8_000 },
            );
            entries.push(Entry {
                bench: "trace_equiv",
                case: format!("{case}/depth{depth}"),
                median_ns: ns,
                baseline_ns,
                baseline: "set-based checker (check_trace_equivalence_exhaustive, same run)",
            });

            // CFSM exploration: interned engine vs the retained
            // explicit-state oracle, over the same configuration budget.
            // The engine compiles once (its intended amortised usage); the
            // timed loop measures exploration only.
            let system = System::from_global(&g).expect("bench families are projectable");
            let compiled = system.compile();
            let fast_probe = compiled.explore(CFSM_BOUND, cfsm_cap);
            let slow_probe = system.explore_exhaustive(CFSM_BOUND, cfsm_cap);
            assert_eq!(
                fast_probe.configurations, slow_probe.configurations,
                "{case}: engines must visit the same configurations"
            );
            assert_eq!(fast_probe.verdict(), slow_probe.verdict(), "{case}");
            let ns = median_ns(
                || {
                    let outcome =
                        std::hint::black_box(&compiled).explore(CFSM_BOUND, cfsm_cap);
                    std::hint::black_box(outcome.configurations);
                },
                if opts.smoke { 5 } else { 15 },
                if opts.smoke { 300 } else { 5_000 },
            );
            let baseline_ns = median_ns(
                || {
                    let outcome = std::hint::black_box(&system)
                        .explore_exhaustive(CFSM_BOUND, cfsm_cap);
                    std::hint::black_box(outcome.configurations);
                },
                if opts.smoke { 3 } else { 9 },
                if opts.smoke { 500 } else { 8_000 },
            );
            entries.push(Entry {
                bench: "cfsm_explore",
                case: format!("{case}/bound{CFSM_BOUND}/cap{cfsm_cap}"),
                median_ns: ns,
                baseline_ns,
                baseline: "explicit-state explorer (System::explore_exhaustive, same run)",
            });
        }
    }

    // ------------------------------------------------------------------
    // cfsm_explore_por: the ample-set partial-order reduction vs the full
    // interned engine, same bound, same configuration budget, same verdict.
    // The concurrent families are where interleavings explode; ring is the
    // sequential control.
    // ------------------------------------------------------------------
    let por_cases: Vec<(String, GlobalType, usize)> = if opts.smoke {
        vec![
            ("ring/8".into(), generators::ring_n(8), 20_000),
            ("fanout/8".into(), generators::fanout_n(8), 20_000),
        ]
    } else {
        vec![
            ("ring/32".into(), generators::ring_n(32), 50_000),
            ("chain/8".into(), generators::chain_n(8), 200_000),
            ("fanout/8".into(), generators::fanout_n(8), 50_000),
            ("fanout/10".into(), generators::fanout_n(10), 200_000),
        ]
    };
    for (case, g, cap) in &por_cases {
        let system = System::from_global(g).expect("bench families are projectable");
        let compiled = system.compile();
        let full_probe = compiled.explore(CFSM_BOUND, *cap);
        let por_probe = compiled.explore_por(CFSM_BOUND, *cap);
        assert!(
            !full_probe.truncated && !por_probe.truncated,
            "{case}: POR cases are sized to complete within the budget"
        );
        assert_eq!(
            full_probe.verdict(),
            por_probe.verdict(),
            "{case}: reduction must preserve the verdict"
        );
        let ns = median_ns(
            || {
                let outcome = std::hint::black_box(&compiled).explore_por(CFSM_BOUND, *cap);
                std::hint::black_box(outcome.configurations);
            },
            if opts.smoke { 5 } else { 15 },
            if opts.smoke { 300 } else { 5_000 },
        );
        let baseline_ns = median_ns(
            || {
                let outcome = std::hint::black_box(&compiled).explore(CFSM_BOUND, *cap);
                std::hint::black_box(outcome.configurations);
            },
            if opts.smoke { 3 } else { 9 },
            if opts.smoke { 500 } else { 8_000 },
        );
        entries.push(Entry {
            bench: "cfsm_explore_por",
            case: format!(
                "{case}/bound{CFSM_BOUND}/cap{cap}/residual{}of{}",
                por_probe.configurations, full_probe.configurations
            ),
            median_ns: ns,
            baseline_ns,
            baseline: "full interned engine (System::explore, same bound/cap/verdict, same run)",
        });
    }

    // ------------------------------------------------------------------
    // cfsm_explore_par: the work-stealing frontier at 1/2/4 threads on the
    // largest residual state space, baselined against its own 1-thread
    // run. The smoke run keeps threads=2 in the loop so CI exercises the
    // termination protocol and cross-thread determinism every time.
    // ------------------------------------------------------------------
    let (par_case, par_g, par_cap): (&str, GlobalType, usize) = if opts.smoke {
        ("fanout/8", generators::fanout_n(8), 20_000)
    } else {
        ("fanout/14", generators::fanout_n(14), 200_000)
    };
    let par_threads: &[usize] = if opts.smoke { &[1, 2] } else { &[1, 2, 4] };
    {
        let system = System::from_global(&par_g).expect("bench families are projectable");
        let compiled = system.compile();
        let por_probe = compiled.explore_por(CFSM_BOUND, par_cap);
        let mut thread1_ns = 0u64;
        for &threads in par_threads {
            let probe = compiled.explore_parallel(CFSM_BOUND, par_cap, threads);
            assert_eq!(probe.verdict(), por_probe.verdict(), "{par_case}/t{threads}");
            assert_eq!(
                probe.configurations, por_probe.configurations,
                "{par_case}/t{threads}: parallel frontier must cover the reduced space"
            );
            let ns = median_ns(
                || {
                    let outcome = std::hint::black_box(&compiled)
                        .explore_parallel(CFSM_BOUND, par_cap, threads);
                    std::hint::black_box(outcome.configurations);
                },
                if opts.smoke { 3 } else { 7 },
                if opts.smoke { 500 } else { 8_000 },
            );
            if threads == 1 {
                thread1_ns = ns;
            }
            entries.push(Entry {
                bench: "cfsm_explore_par",
                case: format!(
                    "{par_case}/threads{threads}/cap{par_cap}/residual{}",
                    por_probe.configurations
                ),
                median_ns: ns,
                baseline_ns: thread1_ns,
                baseline: "explore_parallel at 1 thread (same workload, same run)",
            });
        }
    }

    // ------------------------------------------------------------------
    // endpoint_step: per-visible-action cost of the compiled endpoint
    // executor vs the tree-walking oracle, on looping sessions stepped
    // cooperatively on one thread to a fixed per-endpoint budget. Trace
    // recording is off on both sides (the throughput configuration) so the
    // family measures stepping, not Vec pushes.
    // ------------------------------------------------------------------
    let endpoint_cases: Vec<(String, GlobalType, usize)> = if opts.smoke {
        vec![
            ("chain/2".into(), generators::chain_n(2), 256),
            ("fanout/4".into(), fanout_loop(4), 256),
        ]
    } else {
        vec![
            ("chain/2".into(), generators::chain_n(2), 2_048),
            ("chain/8".into(), generators::chain_n(8), 2_048),
            ("fanout/4".into(), fanout_loop(4), 2_048),
            ("fanout/16".into(), fanout_loop(16), 2_048),
        ]
    };
    for (case, g, steps) in &endpoint_cases {
        let procs: Vec<(Role, Proc)> = project_all(g)
            .expect("bench families are projectable")
            .into_iter()
            .map(|(role, local)| {
                let proc = zooid_server::synth::skeleton_proc(&local)
                    .expect("bench families synthesize");
                (role, proc)
            })
            .collect();
        let externals = Externals::new();
        let programs: Vec<(Role, Arc<EndpointProgram>)> = procs
            .iter()
            .map(|(role, proc)| {
                let compiled = CompiledProc::compile(proc, role, &externals)
                    .expect("skeletons compile");
                (role.clone(), Arc::new(EndpointProgram::new(Arc::new(compiled))))
            })
            .collect();
        let options = ExecOptions::with_max_steps(*steps).record_actions(false);

        let compiled_actions = run_compiled_session(&programs, &options);
        let tree_actions = run_tree_session(&procs, &options);
        assert_eq!(
            compiled_actions, tree_actions,
            "{case}: engines must perform the same number of visible actions"
        );
        assert!(
            compiled_actions > 0,
            "{case}: the session made no progress under the cooperative schedule"
        );

        let ns = median_ns(
            || {
                std::hint::black_box(run_compiled_session(&programs, &options));
            },
            if opts.smoke { 5 } else { 15 },
            if opts.smoke { 300 } else { 5_000 },
        );
        let baseline_ns = median_ns(
            || {
                std::hint::black_box(run_tree_session(&procs, &options));
            },
            if opts.smoke { 3 } else { 9 },
            if opts.smoke { 500 } else { 8_000 },
        );
        entries.push(Entry {
            bench: "endpoint_step",
            case: format!("{case}/steps{steps}/actions{compiled_actions}/peraction"),
            median_ns: (ns / compiled_actions as u64).max(1),
            baseline_ns: (baseline_ns / tree_actions as u64).max(1),
            baseline: "tree-walking EndpointTask (same session, same schedule, same run)",
        });
    }

    // ------------------------------------------------------------------
    // batch_step: per-visible-action cost of the columnar batch executor
    // (cohort stepping over struct-of-arrays state, shared frame arena,
    // zero-hash monitoring) vs the per-session compiled executor with a
    // live monitor — the slab configuration it replaces — running the same
    // population one session at a time. Fire-and-forget on both sides.
    // The batch object is reused across iterations (slots recycle), which
    // is the server's steady state; the slab rebuilds each session, which
    // is the slab's steady state.
    // ------------------------------------------------------------------
    let batch_cases: Vec<(String, GlobalType, Option<usize>, usize)> = if opts.smoke {
        vec![
            ("ring/4".into(), generators::ring_n(4), None, 64),
            ("fanout_loop/4".into(), fanout_loop(4), Some(64), 64),
        ]
    } else {
        vec![
            ("ring/4".into(), generators::ring_n(4), None, 64),
            ("ring/4".into(), generators::ring_n(4), None, 256),
            ("fanout_loop/4".into(), fanout_loop(4), Some(256), 64),
            ("fanout_loop/4".into(), fanout_loop(4), Some(256), 256),
        ]
    };
    for (case, g, max_steps, width) in &batch_cases {
        let mut procs: Vec<(Role, Proc)> = project_all(g)
            .expect("bench families are projectable")
            .into_iter()
            .map(|(role, local)| {
                let proc = zooid_server::synth::skeleton_proc(&local)
                    .expect("bench families synthesize");
                (role, proc)
            })
            .collect();
        procs.sort_by(|a, b| a.0.cmp(&b.0));
        let system = Arc::new(
            System::from_global(g)
                .expect("bench families are projectable")
                .compile(),
        );
        let externals = Externals::new();
        let programs: Vec<(Role, Arc<EndpointProgram>)> = procs
            .iter()
            .map(|(role, proc)| {
                let compiled =
                    CompiledProc::compile(proc, role, &externals).expect("skeletons compile");
                (
                    role.clone(),
                    Arc::new(EndpointProgram::with_system(Arc::new(compiled), &system)),
                )
            })
            .collect();
        let roles: Arc<[Role]> = procs
            .iter()
            .map(|(r, _)| r.clone())
            .collect::<Vec<_>>()
            .into();
        let layout = BatchLayout::new(
            roles,
            programs.iter().map(|(_, p)| Arc::clone(p)).collect(),
            Arc::clone(&system),
        )
        .expect("bench skeletons are batch-eligible");
        let options = match max_steps {
            Some(steps) => ExecOptions::with_max_steps(*steps),
            None => ExecOptions::default(),
        }
        .record_actions(false);

        // Probe once: both data planes must perform the same number of
        // visible actions per session (looping cases end at the step limit
        // and leave as stalled stragglers on both sides).
        let slab_actions = run_monitored_session(&programs, &system, &options);
        assert!(slab_actions > 0, "{case}: the session made no progress");
        let mut batch = SessionBatch::new(Arc::clone(&layout), options.clone(), *width);
        for token in 0..*width {
            assert!(batch.admit(token as u64), "batch sized for the width");
        }
        let probe = batch.run_quantum(usize::MAX);
        assert!(batch.is_empty(), "an unbounded quantum drains the batch");
        assert_eq!(
            probe.actions,
            slab_actions * width,
            "{case}: data planes must perform the same visible actions"
        );
        let actions_total = probe.actions;

        let ns = median_ns(
            || {
                for token in 0..*width {
                    assert!(batch.admit(token as u64));
                }
                let out = batch.run_quantum(usize::MAX);
                std::hint::black_box(out.actions);
            },
            if opts.smoke { 5 } else { 15 },
            if opts.smoke { 300 } else { 5_000 },
        );
        let baseline_ns = median_ns(
            || {
                for _ in 0..*width {
                    std::hint::black_box(run_monitored_session(&programs, &system, &options));
                }
            },
            if opts.smoke { 3 } else { 9 },
            if opts.smoke { 500 } else { 8_000 },
        );
        entries.push(Entry {
            bench: "batch_step",
            case: format!("{case}/w{width}/actions{actions_total}/peraction"),
            median_ns: (ns / actions_total as u64).max(1),
            baseline_ns: (baseline_ns / actions_total as u64).max(1),
            baseline: "per-session CompiledEndpointTask + CompiledMonitor (same sessions, same run)",
        });
    }

    // ------------------------------------------------------------------
    // obs_overhead: the columnar batch executor stepped exactly as the
    // shard worker steps it *with* the observability plane attached —
    // flight-recorder admission events, two clock reads per quantum into
    // the per-action histogram, the cohort-width fold, and session
    // wall-time recording per outcome — against the bare stepping loop
    // (the `batch_step` configuration). The delta is the whole price of
    // the recorder; it must stay within noise of the uninstrumented
    // plane (CI asserts the ratio).
    // ------------------------------------------------------------------
    let obs_cases: Vec<(String, GlobalType, Option<usize>, usize)> = if opts.smoke {
        vec![("ring/4".into(), generators::ring_n(4), None, 64)]
    } else {
        vec![
            // Short sessions: per-admission bookkeeping amortises over only
            // 8 actions — the recorder's worst case.
            ("ring/4".into(), generators::ring_n(4), None, 64),
            ("ring/4".into(), generators::ring_n(4), None, 256),
            // Long sessions: the steady state the shard worker actually
            // runs in, where the per-quantum clock reads dominate.
            ("fanout_loop/4".into(), fanout_loop(4), Some(256), 64),
        ]
    };
    for (case, g, max_steps, width) in &obs_cases {
        let mut procs: Vec<(Role, Proc)> = project_all(g)
            .expect("bench families are projectable")
            .into_iter()
            .map(|(role, local)| {
                let proc = zooid_server::synth::skeleton_proc(&local)
                    .expect("bench families synthesize");
                (role, proc)
            })
            .collect();
        procs.sort_by(|a, b| a.0.cmp(&b.0));
        let system = Arc::new(
            System::from_global(g)
                .expect("bench families are projectable")
                .compile(),
        );
        let externals = Externals::new();
        let programs: Vec<Arc<EndpointProgram>> = procs
            .iter()
            .map(|(role, proc)| {
                let compiled =
                    CompiledProc::compile(proc, role, &externals).expect("skeletons compile");
                Arc::new(EndpointProgram::with_system(Arc::new(compiled), &system))
            })
            .collect();
        let roles: Arc<[Role]> = procs
            .iter()
            .map(|(r, _)| r.clone())
            .collect::<Vec<_>>()
            .into();
        let layout = BatchLayout::new(roles, programs, Arc::clone(&system))
            .expect("bench skeletons are batch-eligible");
        let options = match max_steps {
            Some(steps) => ExecOptions::with_max_steps(*steps),
            None => ExecOptions::default(),
        }
        .record_actions(false);

        let mut batch = SessionBatch::new(Arc::clone(&layout), options.clone(), *width);
        let obs = ShardObs::new();
        let mut admitted: FxHashMap<u64, Instant> = FxHashMap::default();
        let probe_actions = {
            for token in 0..*width {
                assert!(batch.admit(token as u64), "batch sized for the width");
            }
            let out = batch.run_quantum(usize::MAX);
            assert!(batch.is_empty(), "an unbounded quantum drains the batch");
            assert!(out.actions > 0, "{case}: the batch made no progress");
            out.actions
        };

        let (ns, baseline_ns) = paired_median_ns(
            |instrumented| {
                if !instrumented {
                    for token in 0..*width {
                        assert!(batch.admit(token as u64));
                    }
                    let out = batch.run_quantum(usize::MAX);
                    std::hint::black_box(out.actions);
                    return;
                }
                // One clock read stamps the whole admission sweep, exactly
                // as the shard worker's inbox drain does.
                let at = Instant::now();
                for token in 0..*width {
                    assert!(batch.admit(token as u64));
                    admitted.insert(token as u64, at);
                    obs.recorder.record(FlightEvent::Admitted {
                        session: token as u64,
                        batched: true,
                    });
                }
                let started = Instant::now();
                let out = batch.run_quantum(usize::MAX);
                let ended = Instant::now();
                if out.actions > 0 {
                    let per = u64::try_from(
                        ended.saturating_duration_since(started).as_nanos(),
                    )
                    .unwrap_or(u64::MAX)
                        / out.actions as u64;
                    obs.action_cost.record(per);
                }
                for (bucket, &n) in out.cohort_widths.iter().enumerate() {
                    obs.cohort_width.add_count(bucket, n);
                }
                for outcome in &out.finished {
                    if let Some(start) = admitted.remove(&outcome.token) {
                        let wall =
                            u64::try_from(ended.saturating_duration_since(start).as_nanos())
                                .unwrap_or(u64::MAX);
                        obs.session_wall.record(wall);
                    }
                }
                // Step-limited sessions leave the batch as demotions; the
                // shard worker records the event and keeps their admission
                // stamp until the slab concludes them — the bench stops at
                // the batch boundary, so stamp the wall time here too.
                for demoted in &out.demoted {
                    obs.recorder.record(FlightEvent::BatchDemoted {
                        session: demoted.token,
                    });
                    if let Some(start) = admitted.remove(&demoted.token) {
                        let wall =
                            u64::try_from(ended.saturating_duration_since(start).as_nanos())
                                .unwrap_or(u64::MAX);
                        obs.session_wall.record(wall);
                    }
                }
                std::hint::black_box(out.actions);
            },
            if opts.smoke { 31 } else { 101 },
        );
        assert!(
            obs.session_wall.snapshot().count() > 0,
            "{case}: the instrumented runs recorded no session wall times"
        );
        entries.push(Entry {
            bench: "obs_overhead",
            case: format!("{case}/w{width}/actions{probe_actions}/peraction"),
            median_ns: (ns / probe_actions as u64).max(1),
            baseline_ns: (baseline_ns / probe_actions as u64).max(1),
            baseline: "identical batch stepping with the observability plane detached",
        });
    }

    // ------------------------------------------------------------------
    // fault_overhead: the hostile-world wrapper tax. Every endpoint of a
    // session runs behind a FaultyTransport carrying an *empty* fault
    // plan — the bystander configuration the hostile campaign suite
    // wraps honest endpoints in — against the identical cooperative
    // schedule on the bare in-memory transport. With no specs the
    // wrapper never consults its PRNG, so the delta is pure counted-op
    // and tick-clock bookkeeping; it must stay within noise of the bare
    // transport (CI asserts the ratio).
    // ------------------------------------------------------------------
    let fault_cases: Vec<(String, GlobalType, Option<usize>)> = if opts.smoke {
        vec![("ring/4".into(), generators::ring_n(4), None)]
    } else {
        vec![
            // Short sessions: setup and teardown amortise over 8 actions —
            // the wrapper's worst case.
            ("ring/4".into(), generators::ring_n(4), None),
            ("two_buyer".into(), generators::two_buyer(), None),
            // Long sessions: steady-state per-operation cost dominates.
            ("fanout_loop/4".into(), fanout_loop(4), Some(512)),
        ]
    };
    for (case, g, max_steps) in &fault_cases {
        let mut procs: Vec<(Role, Proc)> = project_all(g)
            .expect("bench families are projectable")
            .into_iter()
            .map(|(role, local)| {
                let proc = zooid_server::synth::skeleton_proc(&local)
                    .expect("bench families synthesize");
                (role, proc)
            })
            .collect();
        procs.sort_by(|a, b| a.0.cmp(&b.0));
        let roles: Vec<Role> = procs.iter().map(|(r, _)| r.clone()).collect();
        let options = match max_steps {
            Some(steps) => ExecOptions::with_max_steps(*steps),
            None => ExecOptions::default(),
        }
        .record_actions(false);
        let plan = FaultPlan::new(0xFA17);

        let bare_endpoints = |roles: &[Role]| -> Vec<(Role, InMemoryTransport)> {
            let mut network = InMemoryNetwork::new(roles.iter().cloned());
            roles
                .iter()
                .map(|r| (r.clone(), network.take_endpoint(r).expect("unique roles")))
                .collect()
        };
        let probe_actions = {
            let actions = run_tree_session_over(&procs, bare_endpoints(&roles), &options);
            assert!(actions > 0, "{case}: the probe session made no progress");
            actions
        };

        let (ns, baseline_ns) = paired_median_ns(
            |wrapped| {
                if wrapped {
                    let endpoints: Vec<(Role, FaultyTransport<InMemoryTransport>)> =
                        bare_endpoints(&roles)
                            .into_iter()
                            .map(|(role, t)| (role, FaultyTransport::new(t, &plan)))
                            .collect();
                    std::hint::black_box(run_tree_session_over(&procs, endpoints, &options));
                } else {
                    std::hint::black_box(run_tree_session_over(
                        &procs,
                        bare_endpoints(&roles),
                        &options,
                    ));
                }
            },
            if opts.smoke { 31 } else { 101 },
        );
        entries.push(Entry {
            bench: "fault_overhead",
            case: format!("{case}/actions{probe_actions}/peraction"),
            median_ns: (ns / probe_actions as u64).max(1),
            baseline_ns: (baseline_ns / probe_actions as u64).max(1),
            baseline: "identical cooperative run on the bare in-memory transport",
        });
    }

    // ------------------------------------------------------------------
    // server_throughput: a batch of concurrent sessions on the sharded
    // server vs the thread-per-participant harness.
    // ------------------------------------------------------------------
    let sessions: usize = if opts.smoke { 500 } else { 10_000 };
    let protocol = Protocol::new("ring", generators::ring_n(4)).expect("well-formed");
    let endpoints = skeleton_endpoints(&protocol).expect("synthesizable");
    // The endpoint list is shared across submissions (an `Arc` slice), the
    // intended way to start many sessions of one implementation.
    let shared: Arc<[_]> = endpoints.clone().into();

    // Baseline: the harness spawns 4 OS threads per session, so it is
    // measured on a smaller batch and scaled per-session.
    let harness_sessions = sessions.min(if opts.smoke { 50 } else { 512 });
    let harness_ns = median_ns(
        || {
            for _ in 0..harness_sessions {
                let mut harness = SessionHarness::new(protocol.clone());
                for (cert, ext) in endpoints.clone() {
                    harness.add_endpoint(cert, ext).expect("unique role");
                }
                let report = harness.run().expect("session runs");
                assert!(report.all_finished_and_compliant());
            }
        },
        if opts.smoke { 2 } else { 3 },
        if opts.smoke { 2_000 } else { 20_000 },
    );
    let harness_batch_ns =
        (harness_ns as f64 * sessions as f64 / harness_sessions as f64) as u64;

    // (shards, record per-endpoint traces?): the `notrace` case is the
    // fire-and-forget configuration — monitor verdicts only.
    let mut inmem4_ns = harness_batch_ns;
    for (shards, record) in [(1usize, true), (4, true), (4, false)] {
        let ns = median_ns(
            || {
                let mut registry = ProtocolRegistry::new();
                let id = registry.register(protocol.clone()).expect("registrable");
                let mut server =
                    SessionServer::start(registry, ServerConfig::with_shards(shards));
                for _ in 0..sessions {
                    let mut spec = SessionSpec::new(id, Arc::clone(&shared));
                    spec.options.record_actions = record;
                    server.submit(spec).expect("submits");
                }
                let outcomes = server.drain();
                assert_eq!(outcomes.len(), sessions);
                if record {
                    assert!(outcomes.iter().all(|o| o.all_finished_and_compliant()));
                } else {
                    assert!(outcomes.iter().all(|o| o.compliant && o.complete));
                }
                let report = server.shutdown();
                assert_eq!(report.sessions_completed() as u64, sessions as u64);
            },
            if opts.smoke { 2 } else { 3 },
            if opts.smoke { 2_000 } else { 20_000 },
        );
        if shards == 4 && record {
            inmem4_ns = ns;
        }
        entries.push(Entry {
            bench: "server_throughput",
            case: format!(
                "ring4/s{sessions}/shards{shards}{}",
                if record { "" } else { "/notrace" }
            ),
            median_ns: ns,
            baseline_ns: harness_batch_ns,
            baseline: "SessionHarness thread-per-endpoint (smaller batch, scaled per-session)",
        });
    }

    // ------------------------------------------------------------------
    // server_throughput_tcp: the same session batch served over real
    // loopback sockets by the event-driven NetServer. Client threads each
    // own one multiplexed connection, window their opens (so the
    // per-connection in-flight cap never trips) and await every Done
    // frame. The baseline is the in-memory 4-shard figure from this same
    // run, so the reported speedup is exactly the cost of the wire.
    // ------------------------------------------------------------------
    let conns: usize = if opts.smoke { 2 } else { 8 };
    let tcp_sessions = (sessions / conns) * conns;
    let per_conn = tcp_sessions / conns;
    const OPEN_WINDOW: usize = 256;
    let ns = median_ns(
        || {
            let mut registry = ProtocolRegistry::new();
            let id = registry.register(protocol.clone()).expect("registrable");
            let service = Service {
                protocol: id,
                endpoints: Arc::clone(&shared),
                options: ExecOptions::default(),
            };
            let config = NetServerConfig {
                server: ServerConfig::with_shards(4),
                ..NetServerConfig::default()
            };
            let net = NetServer::start(registry, [service], config).expect("binds loopback");
            let addr = net.local_addr();
            let clients: Vec<_> = (0..conns)
                .map(|_| {
                    std::thread::spawn(move || {
                        let mut client = NetClient::connect(addr).expect("connects");
                        let mut to_open = per_conn;
                        let mut inflight = 0usize;
                        let mut done = 0usize;
                        while done < per_conn {
                            while to_open > 0 && inflight < OPEN_WINDOW {
                                client.open("ring").expect("opens");
                                to_open -= 1;
                                inflight += 1;
                            }
                            match client
                                .poll_event(std::time::Duration::from_secs(30))
                                .expect("server stays up")
                            {
                                Some(MuxFrame::Accepted { .. }) => {}
                                Some(MuxFrame::Done {
                                    compliant, complete, ..
                                }) => {
                                    assert!(compliant && complete, "session misbehaved");
                                    inflight -= 1;
                                    done += 1;
                                }
                                Some(other) => panic!("unexpected frame {other:?}"),
                                None => panic!("server went silent"),
                            }
                        }
                    })
                })
                .collect();
            for client in clients {
                client.join().expect("client thread");
            }
            let report = net.shutdown();
            assert_eq!(report.net.sessions_done as usize, tcp_sessions);
            assert_eq!(report.net.bad_frames, 0);
        },
        if opts.smoke { 2 } else { 3 },
        if opts.smoke { 2_000 } else { 20_000 },
    );
    entries.push(Entry {
        bench: "server_throughput_tcp",
        case: format!("ring4/s{tcp_sessions}/conns{conns}/shards4"),
        median_ns: ns,
        baseline_ns: inmem4_ns,
        baseline: "in-memory SessionServer, same batch (4 shards, traced, same run)",
    });

    // ------------------------------------------------------------------
    // monitor_action: per-action cost of the compiled monitor vs the
    // global-LTS replay monitor, on compliant traces. The ring trace is
    // sequential (the global prefix never holds more than one pending
    // message — the replay monitor's best case); the fanout trace delays
    // every receive behind all the sends, so the prefix grows to n
    // in-flight messages and the replay cost grows with it, while the
    // compiled monitor stays flat.
    // ------------------------------------------------------------------
    let monitor_cases: &[(&str, usize)] = if opts.smoke {
        &[("ring", 4), ("fanout", 8)]
    } else {
        &[("ring", 4), ("ring", 16), ("ring", 64), ("fanout", 16), ("fanout", 64)]
    };
    for &(family, n) in monitor_cases {
        let (g, trace) = match family {
            "ring" => {
                let mut trace = Vec::with_capacity(2 * n);
                for i in 0..n {
                    let from = Role::new(format!("w{i}"));
                    let to = Role::new(format!("w{}", (i + 1) % n));
                    let send = Action::send(from, to, Label::new("l"), Sort::Nat);
                    trace.push(send.clone());
                    trace.push(send.dual());
                }
                (generators::ring_n(n), trace)
            }
            "fanout" => {
                let hub = Role::new("hub");
                let tasks: Vec<Action> = (0..n)
                    .map(|i| {
                        Action::send(
                            hub.clone(),
                            Role::new(format!("w{i}")),
                            Label::new("task"),
                            Sort::Nat,
                        )
                    })
                    .collect();
                let acks: Vec<Action> = (0..n)
                    .map(|i| {
                        Action::send(
                            Role::new(format!("w{i}")),
                            hub.clone(),
                            Label::new("ack"),
                            Sort::Unit,
                        )
                    })
                    .collect();
                let mut trace = Vec::with_capacity(4 * n);
                trace.extend(tasks.iter().cloned());
                trace.extend(tasks.iter().map(Action::dual));
                trace.extend(acks.iter().cloned());
                trace.extend(acks.iter().map(Action::dual));
                (generators::fanout_n(n), trace)
            }
            other => unreachable!("unknown monitor family {other}"),
        };
        let compiled_template = CompiledMonitor::for_global(&g).expect("projectable");
        let reference_template = TraceMonitor::new(&g).expect("well-formed");
        let actions = trace.len() as u64;
        let ns = median_ns(
            || {
                let mut monitor = compiled_template.clone();
                for action in &trace {
                    assert!(monitor.observe(action));
                }
                assert!(monitor.is_complete());
            },
            if opts.smoke { 5 } else { 25 },
            if opts.smoke { 300 } else { 3_000 },
        );
        let baseline_ns = median_ns(
            || {
                let mut monitor = reference_template.clone();
                for action in &trace {
                    assert!(monitor.observe(action));
                }
                assert!(monitor.is_complete());
            },
            if opts.smoke { 5 } else { 25 },
            if opts.smoke { 300 } else { 3_000 },
        );
        entries.push(Entry {
            bench: "monitor_action",
            case: format!("{family}/{n}/peraction"),
            median_ns: (ns / actions).max(1),
            baseline_ns: (baseline_ns / actions).max(1),
            baseline: "TraceMonitor global-LTS replay (same trace, same run)",
        });
    }

    // ------------------------------------------------------------------
    // checkpoint_restore: latency of bringing one mid-flight session back
    // through the durability plane — decode the checkpoint blob and
    // re-certify it against the compiled tables (`SessionCheckpoint::decode`
    // + `into_demoted`) — vs recovery by replay: re-executing the session
    // from its initial state to the same quantum boundary, which is what a
    // server without checkpoints would have to do.
    // ------------------------------------------------------------------
    // Two regimes: a shallow kill point (restore pays the codec without
    // much replay to beat) and a deep one (replay cost grows with history,
    // the checkpoint stays near-constant — the durability win).
    let ckpt_cases: Vec<(String, GlobalType, Option<usize>, usize)> = vec![
        ("ring/8".into(), generators::ring_n(8), None, 4),
        ("fanout_loop/4".into(), fanout_loop(4), Some(256), 200),
    ];
    for (case, g, max_steps, kill_after) in &ckpt_cases {
        let mut procs: Vec<(Role, Proc)> = project_all(g)
            .expect("bench families are projectable")
            .into_iter()
            .map(|(role, local)| {
                let proc = zooid_server::synth::skeleton_proc(&local)
                    .expect("bench families synthesize");
                (role, proc)
            })
            .collect();
        procs.sort_by(|a, b| a.0.cmp(&b.0));
        let system = Arc::new(
            System::from_global(g)
                .expect("bench families are projectable")
                .compile(),
        );
        let externals = Externals::new();
        let programs: Vec<Arc<EndpointProgram>> = procs
            .iter()
            .map(|(role, proc)| {
                let compiled =
                    CompiledProc::compile(proc, role, &externals).expect("skeletons compile");
                Arc::new(EndpointProgram::with_system(Arc::new(compiled), &system))
            })
            .collect();
        let roles: Arc<[Role]> = procs
            .iter()
            .map(|(r, _)| r.clone())
            .collect::<Vec<_>>()
            .into();
        let layout = BatchLayout::new(roles, programs.clone(), Arc::clone(&system))
            .expect("bench skeletons are batch-eligible");
        let options = match max_steps {
            Some(steps) => ExecOptions::with_max_steps(*steps),
            None => ExecOptions::default(),
        };
        // The mid-flight state under test: one session interrupted after
        // `kill_after` budget-1 quanta.
        let mut batch = SessionBatch::new(Arc::clone(&layout), options.clone(), 1);
        assert!(batch.admit(0));
        for _ in 0..*kill_after {
            let out = batch.run_quantum(1);
            assert!(
                out.finished.is_empty() && out.demoted.is_empty(),
                "{case}: the kill point must be mid-flight"
            );
        }
        let demoted = batch.demote_now(0).expect("session still live");
        let bytes = SessionCheckpoint::from_demoted(&demoted).encode();

        let ns = median_ns(
            || {
                let restored = SessionCheckpoint::decode(std::hint::black_box(&bytes))
                    .expect("own encoding decodes")
                    .into_demoted(&programs, &system)
                    .expect("own checkpoint re-validates");
                std::hint::black_box(restored.endpoints.len());
            },
            if opts.smoke { 5 } else { 25 },
            if opts.smoke { 300 } else { 3_000 },
        );
        let baseline_ns = median_ns(
            || {
                let mut replay = SessionBatch::new(Arc::clone(&layout), options.clone(), 1);
                assert!(replay.admit(0));
                for _ in 0..*kill_after {
                    replay.run_quantum(1);
                }
                let state = replay.demote_now(0).expect("still live");
                std::hint::black_box(state.endpoints.len());
            },
            if opts.smoke { 5 } else { 25 },
            if opts.smoke { 300 } else { 3_000 },
        );
        entries.push(Entry {
            bench: "checkpoint_restore",
            case: format!("{case}/q{kill_after}/bytes{}/restore", bytes.len()),
            median_ns: ns.max(1),
            baseline_ns: baseline_ns.max(1),
            baseline: "recovery by replay (re-run the session to the same quantum, same run)",
        });
    }

    // ------------------------------------------------------------------
    // wal_append: audit-log density of the columnar write-ahead format —
    // per-quantum records split into a skeleton column (session, role,
    // per-program event-template id) and a value column — vs serializing
    // each record's full `ValueAction` (roles, label, sort spelled out
    // per record). Reported in bytes per logged action, so speedup is the
    // density win of the structural-entropy split.
    // ------------------------------------------------------------------
    let wal_cases: Vec<(String, GlobalType, Option<usize>)> = vec![
        ("ring/8".into(), generators::ring_n(8), None),
        ("two_buyer".into(), generators::two_buyer(), None),
        ("fanout_loop/4".into(), fanout_loop(4), Some(64)),
    ];
    for (case, g, max_steps) in &wal_cases {
        let mut procs: Vec<(Role, Proc)> = project_all(g)
            .expect("bench families are projectable")
            .into_iter()
            .map(|(role, local)| {
                let proc = zooid_server::synth::skeleton_proc(&local)
                    .expect("bench families synthesize");
                (role, proc)
            })
            .collect();
        procs.sort_by(|a, b| a.0.cmp(&b.0));
        let system = Arc::new(
            System::from_global(g)
                .expect("bench families are projectable")
                .compile(),
        );
        let externals = Externals::new();
        let programs: Vec<Arc<EndpointProgram>> = procs
            .iter()
            .map(|(role, proc)| {
                let compiled =
                    CompiledProc::compile(proc, role, &externals).expect("skeletons compile");
                Arc::new(EndpointProgram::with_system(Arc::new(compiled), &system))
            })
            .collect();
        let roles: Arc<[Role]> = procs
            .iter()
            .map(|(r, _)| r.clone())
            .collect::<Vec<_>>()
            .into();
        let layout = BatchLayout::new(roles, programs.clone(), Arc::clone(&system))
            .expect("bench skeletons are batch-eligible");
        let options = match max_steps {
            Some(steps) => ExecOptions::with_max_steps(*steps),
            None => ExecOptions::default(),
        };
        // One recorded session supplies the log: every visible action of
        // every endpoint, columnarized through the shared indexer.
        let mut batch = SessionBatch::new(Arc::clone(&layout), options, 1);
        assert!(batch.admit(0));
        let out = batch.run_quantum(usize::MAX);
        let indexer = WalIndexer::new(layout.programs());
        // Concluded sessions report their actions in `finished`; looping
        // cases end at the step limit and leave as demoted stragglers.
        let records: Vec<_> = out
            .finished
            .iter()
            .flat_map(|o| o.endpoints.iter())
            .flat_map(|r| r.actions.iter())
            .chain(
                out.demoted
                    .iter()
                    .flat_map(|d| d.endpoints.iter())
                    .flat_map(|ep| ep.actions.iter()),
            )
            .map(|va| {
                indexer
                    .record(0, va)
                    .expect("bench skeleton actions columnarize")
            })
            .collect();
        assert!(!records.is_empty(), "{case}: the log must not be empty");
        let actions = records.len() as u64;
        let columnar = encode_quantum(&records).len() as u64;
        let naive = encode_quantum_naive(&records, &indexer)
            .expect("records resolve")
            .len() as u64;
        assert!(
            columnar < naive,
            "{case}: the columnar skeleton must be denser ({columnar} vs {naive} bytes)"
        );
        entries.push(Entry {
            bench: "wal_append",
            case: format!("{case}/n{actions}/bytesperaction"),
            median_ns: (columnar / actions).max(1),
            baseline_ns: (naive / actions).max(1),
            baseline: "naive per-record serialization (encode_quantum_naive, same records)",
        });
    }

    let mut json = String::from("{\n  \"pr\": 10,\n  \"benches\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let speedup = if e.median_ns > 0 && e.baseline_ns > 0 {
            e.baseline_ns as f64 / e.median_ns as f64
        } else {
            0.0
        };
        json.push_str(&format!(
            "    {{\"bench\": \"{}\", \"case\": \"{}\", \"median_ns\": {}, \
             \"baseline_ns\": {}, \"speedup\": {:.2}, \"baseline\": \"{}\"}}{}\n",
            e.bench,
            e.case,
            e.median_ns,
            e.baseline_ns,
            speedup,
            e.baseline,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&opts.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", opts.out));
    println!("{json}");
    eprintln!("wrote {} ({} entries)", opts.out, entries.len());
}
