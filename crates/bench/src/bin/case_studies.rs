//! Regenerates the case-study evaluation of §5 (experiments E2–E5 and E12 in
//! `DESIGN.md`): for every case study, report projectability, certification
//! of all endpoints, the outcome of an end-to-end run with the compliance
//! monitor, and the CFSM safety/liveness verdicts.
//!
//! Run with `cargo run -p zooid-bench --bin case-studies`.

use std::time::Duration;

use zooid_bench::all_case_studies;
use zooid_cfsm::check_protocol;
use zooid_runtime::SessionHarness;

fn main() {
    println!(
        "{:<18} {:<10} {:>5} {:>12} {:>10} {:>9} {:>10} {:>9} {:>6}",
        "case study", "section", "roles", "projectable", "certified", "messages", "compliant", "deadlock", "live"
    );
    println!("{}", "-".repeat(100));
    let mut all_ok = true;
    for case in all_case_studies() {
        let roles = case.protocol.roles();
        let projectable = case.protocol.project_all().is_ok();

        let mut certified = 0usize;
        let mut harness = SessionHarness::new(case.protocol.clone());
        for (role, wt) in &case.endpoints {
            match case.protocol.implement(role, wt.clone(), &case.externals) {
                Ok(cert) => {
                    certified += 1;
                    harness
                        .add_endpoint(cert, case.externals.clone())
                        .expect("endpoint added once");
                }
                Err(e) => eprintln!("  {}::{role}: certification failed: {e}", case.name),
            }
        }
        if let Some(limit) = case.max_steps {
            harness.with_max_steps(limit);
            harness.with_recv_timeout(Duration::from_millis(500));
        }
        let (messages, compliant) = match harness.run() {
            Ok(report) => (report.messages_exchanged(), report.compliant),
            Err(e) => {
                eprintln!("  {}: session failed: {e}", case.name);
                (0, false)
            }
        };

        let safety = check_protocol(case.protocol.global(), 2, 200_000)
            .expect("case-study protocols are projectable");

        let row_ok = projectable
            && certified == case.endpoints.len()
            && compliant
            && safety.is_safe()
            && safety.is_live();
        all_ok &= row_ok;
        println!(
            "{:<18} {:<10} {:>5} {:>12} {:>10} {:>9} {:>10} {:>9} {:>6}",
            case.name,
            case.section,
            roles.len(),
            projectable,
            format!("{certified}/{}", case.endpoints.len()),
            messages,
            compliant,
            safety.is_safe(),
            safety.is_live(),
        );
    }
    println!("{}", "-".repeat(100));
    println!(
        "overall: {}",
        if all_ok { "all case studies reproduce" } else { "SOME CASE STUDY FAILED" }
    );
    if !all_ok {
        std::process::exit(1);
    }
}
