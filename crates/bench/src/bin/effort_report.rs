//! Regenerates the analogue of the paper's §5.3 "Mechanisation effort"
//! summary (experiment E1 in `DESIGN.md`): lines of code, number of public
//! items and number of tests per crate of this repository.
//!
//! Run with `cargo run -p zooid-bench --bin effort-report` from the workspace
//! root.

use std::fs;
use std::path::{Path, PathBuf};

#[derive(Default)]
struct CrateStats {
    files: usize,
    code_lines: usize,
    doc_lines: usize,
    test_fns: usize,
    property_tests: usize,
    pub_items: usize,
}

fn visit(dir: &Path, stats: &mut CrateStats) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            visit(&path, stats);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let Ok(content) = fs::read_to_string(&path) else { continue };
            stats.files += 1;
            let mut in_proptest_block = false;
            for line in content.lines() {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                if trimmed.starts_with("///") || trimmed.starts_with("//!") {
                    stats.doc_lines += 1;
                } else {
                    stats.code_lines += 1;
                }
                if trimmed.starts_with("#[test]") {
                    stats.test_fns += 1;
                }
                if trimmed.starts_with("proptest!") {
                    in_proptest_block = true;
                }
                if in_proptest_block && trimmed.starts_with("fn ") {
                    stats.property_tests += 1;
                }
                if trimmed.starts_with("pub fn ")
                    || trimmed.starts_with("pub struct ")
                    || trimmed.starts_with("pub enum ")
                    || trimmed.starts_with("pub trait ")
                    || trimmed.starts_with("pub type ")
                    || trimmed.starts_with("pub mod ")
                {
                    stats.pub_items += 1;
                }
            }
        }
    }
}

fn main() {
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).parent().and_then(Path::parent).map(Path::to_path_buf))
        .ok()
        .flatten()
        .unwrap_or_else(|| PathBuf::from("."));

    let areas: Vec<(&str, PathBuf)> = vec![
        ("zooid-mpst (metatheory)", root.join("crates/mpst/src")),
        ("zooid-mpst (tests)", root.join("crates/mpst/tests")),
        ("zooid-proc (process language)", root.join("crates/proc/src")),
        ("zooid-proc (tests)", root.join("crates/proc/tests")),
        ("zooid-dsl (Zooid DSL)", root.join("crates/dsl/src")),
        ("zooid-runtime (runtime)", root.join("crates/runtime/src")),
        ("zooid-runtime (tests)", root.join("crates/runtime/tests")),
        ("zooid-cfsm (automata)", root.join("crates/cfsm/src")),
        ("zooid-bench (evaluation)", root.join("crates/bench")),
        ("facade + examples", root.join("src")),
        ("examples", root.join("examples")),
        ("integration tests", root.join("tests")),
    ];

    println!(
        "{:<34} {:>6} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "area", "files", "code loc", "doc loc", "#tests", "#props", "pub items"
    );
    println!("{}", "-".repeat(90));
    let mut total = CrateStats::default();
    for (name, dir) in &areas {
        let mut stats = CrateStats::default();
        visit(dir, &mut stats);
        println!(
            "{:<34} {:>6} {:>9} {:>9} {:>8} {:>8} {:>9}",
            name,
            stats.files,
            stats.code_lines,
            stats.doc_lines,
            stats.test_fns,
            stats.property_tests,
            stats.pub_items
        );
        total.files += stats.files;
        total.code_lines += stats.code_lines;
        total.doc_lines += stats.doc_lines;
        total.test_fns += stats.test_fns;
        total.property_tests += stats.property_tests;
        total.pub_items += stats.pub_items;
    }
    println!("{}", "-".repeat(90));
    println!(
        "{:<34} {:>6} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "total",
        total.files,
        total.code_lines,
        total.doc_lines,
        total.test_fns,
        total.property_tests,
        total.pub_items
    );
    println!();
    println!(
        "paper (§5.3): 7.3 KLOC of Coq + 1.7 KLOC of OCaml, 269 definitions, 396 proved lemmas"
    );
    println!(
        "this repo:    {:.1} KLOC of Rust ({} public items, {} unit/integration tests, {} property tests)",
        total.code_lines as f64 / 1000.0,
        total.pub_items,
        total.test_fns,
        total.property_tests
    );
}
