//! Load simulation for the multi-session server: two registered protocols,
//! 1,000 concurrent sessions multiplexed on 4 worker shards.
//!
//! Where the other examples run *one* session with one OS thread per
//! participant, this one exercises the serving layer: every protocol is
//! compiled exactly once by the [`ProtocolRegistry`], sessions are resumable
//! endpoint tasks stepped in bounded quanta by the sharded scheduler, and
//! every communication is checked live by a compiled per-role monitor.
//!
//! It also exercises the observability plane: latency percentiles come off
//! the lock-free shard histograms, and a tail of deliberately misbehaving
//! sessions (certified against a decoy protocol) shows the monitor's
//! violations being captured as incidents whose trace prefixes *replay* to
//! the same verdict against the compiled system.
//!
//! Then comes the hostile-world campaign: synthesized byzantine casts
//! (one minimal mutation each) are thrown at the server, the default
//! quarantine policy stops every flagged session at its first violation,
//! and the per-protocol quarantine counters and a replayed incident show
//! the containment working.
//!
//! The final act is durability: a second server (single-action quanta, so
//! sessions stay in flight) is drained shard by shard — every in-flight
//! session leaves as an encoded, re-certifiable checkpoint — and the
//! checkpoints are migrated onto other shards where they resume and finish
//! compliant. Violators submitted under
//! [`QuarantinePolicy::RestartFromCheckpoint`] get restarted from their
//! last certified snapshot until their retry budget runs out.
//!
//! Run with `cargo run --release --example load_sim`.

use std::time::Instant;

use zooid::dsl::Protocol;
use zooid::mpst::generators;
use zooid::server::synth::{byzantine_driver, skeleton_endpoints};
use zooid::server::{
    ByzantineMutation, ExpectedClass, ProtocolRegistry, QuarantinePolicy, ServerConfig,
    SessionServer, SessionSpec,
};

const SESSIONS: usize = 1_000;
const SHARDS: usize = 4;
/// Deliberately misbehaving sessions appended after the main run to show
/// incident capture and replay.
const BAD_SESSIONS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Register two protocols; each is projected and compiled exactly once.
    let mut registry = ProtocolRegistry::new();
    let ring = registry.register(Protocol::new("ring", generators::ring_n(4))?)?;
    let two_buyer = registry.register(Protocol::new("two_buyer", generators::two_buyer())?)?;
    println!("registered {} protocols", registry.len());

    // Certify one skeleton implementation per role, reused by every session.
    let ring_endpoints = skeleton_endpoints(registry.get(ring).unwrap().protocol())?;
    let buyer_endpoints = skeleton_endpoints(registry.get(two_buyer).unwrap().protocol())?;

    let mut server = SessionServer::start(registry, ServerConfig::with_shards(SHARDS));
    println!(
        "serving {SESSIONS} sessions on {} worker shards...",
        server.shard_count()
    );

    let started = Instant::now();
    for i in 0..SESSIONS {
        let spec = if i % 2 == 0 {
            SessionSpec::new(ring, ring_endpoints.clone())
        } else {
            SessionSpec::new(two_buyer, buyer_endpoints.clone())
        };
        server.submit(spec)?;
    }
    let outcomes = server.drain();
    let elapsed = started.elapsed();

    assert_eq!(outcomes.len(), SESSIONS);
    let compliant = outcomes.iter().filter(|o| o.all_finished_and_compliant()).count();
    let messages: usize = outcomes.iter().map(|o| o.messages_exchanged()).sum();
    println!(
        "finished {SESSIONS} sessions in {elapsed:?} ({:.0} sessions/s, {messages} messages)",
        SESSIONS as f64 / elapsed.as_secs_f64()
    );
    assert_eq!(compliant, SESSIONS, "every session must be compliant");

    // Latency percentiles, straight from the lock-free shard histograms.
    let obs = server.report().obs;
    println!("\nlatency (session wall time): {}", obs.session_wall_ns);
    println!("latency (per-action cost):   {}", obs.action_cost_ns);
    println!("batch cohort width:          {}", obs.cohort_width);

    // Incident demo: a handful of sessions certified against a *rotated*
    // ring — same participants and per-role communication sites (so they
    // batch), but the wrong global order. The monitor catches the first
    // out-of-order send, demotes the session, and the flight recorder
    // captures a replayable incident.
    let rotated = Protocol::new("ring", generators::ring(&["w3", "w0", "w1", "w2"]))?;
    let bad_endpoints = skeleton_endpoints(&rotated)?;
    for _ in 0..BAD_SESSIONS {
        server.submit(SessionSpec::new(ring, bad_endpoints.clone()))?;
    }
    let bad_outcomes = server.drain();
    assert!(bad_outcomes.iter().all(|o| !o.compliant));
    assert!(
        bad_outcomes.iter().all(|o| o.quarantined),
        "the default policy quarantines every flagged session"
    );

    let system = std::sync::Arc::clone(server.registry().get(ring).unwrap().compiled());
    let incidents = server.incidents();
    println!("\ncaptured {} incidents:", incidents.len());
    for incident in &incidents {
        let s = incident.summary();
        println!(
            "  session {} role {} violated at position {} ({}): prefix of {} actions replays: {}",
            s.session,
            s.role,
            s.position,
            s.action,
            s.prefix_len,
            incident.replays_violation(&system),
        );
    }
    assert!(incidents.iter().all(|i| i.replays_violation(&system)));

    // Fault campaign: synthesized byzantine casts, one minimal mutation
    // per driver, each with a known expected class. Sessions landing in
    // the Violation class are quarantined — stopped at their first
    // violation, never stepped again — and counted per protocol.
    println!("\nbyzantine campaign against `ring`:");
    let ring_protocol = Protocol::new("ring", generators::ring_n(4))?;
    let mut expected_quarantines = BAD_SESSIONS;
    for mutation in ByzantineMutation::all() {
        let Some(driver) = byzantine_driver(&ring_protocol, mutation)? else {
            println!("  {mutation}: not applicable to this protocol shape");
            continue;
        };
        let id = server.submit(SessionSpec::new(ring, driver.endpoints.clone()))?;
        let outcome = server
            .drain()
            .into_iter()
            .find(|o| o.id == id)
            .expect("submitted session drains");
        match driver.mutation.expected() {
            ExpectedClass::Violation => {
                assert!(!outcome.compliant && outcome.quarantined);
                expected_quarantines += 1;
                println!(
                    "  {mutation}: quarantined after {} violation(s), actor {}",
                    outcome.violations.len(),
                    driver.actor
                );
            }
            ExpectedClass::Silence => {
                assert!(outcome.compliant && !outcome.complete && !outcome.quarantined);
                println!("  {mutation}: compliant silence (stalled, not quarantined)");
            }
        }
    }

    // One replayed incident from the campaign, re-certified against the
    // compiled system.
    let incident = server
        .incidents()
        .into_iter()
        .last()
        .expect("the campaign captured incidents");
    let s = incident.summary();
    println!(
        "  last incident: session {} role {} at position {} ({}) — replays: {}",
        s.session,
        s.role,
        s.position,
        s.action,
        incident.replays_violation(&system),
    );
    assert!(incident.replays_violation(&system));

    let report = server.shutdown();
    println!("\n{report}");
    println!("quarantined sessions per protocol:");
    for (protocol, count) in &report.obs.per_protocol_quarantined {
        println!("  protocol #{protocol}: {count}");
    }
    assert_eq!(
        report.sessions_quarantined() as usize,
        expected_quarantines,
        "quarantine counters must match the campaign"
    );
    assert_eq!(report.sessions_violated() as usize, expected_quarantines);

    // Durability act: drain shards mid-flight, migrate the checkpoints,
    // and restart violators from their last certified snapshot. A fresh
    // server with single-action quanta keeps sessions in flight long
    // enough to catch them between quanta.
    println!("\ndrain-and-recover:");
    let mut registry = ProtocolRegistry::new();
    let ring = registry.register(Protocol::new("ring", generators::ring_n(4))?)?;
    let ring_endpoints = skeleton_endpoints(registry.get(ring).unwrap().protocol())?;
    let mut server = SessionServer::start(
        registry,
        ServerConfig {
            shards: 2,
            quantum: 1,
            quarantine: QuarantinePolicy::RestartFromCheckpoint { max_retries: 2 },
            ..ServerConfig::default()
        },
    );
    const MIGRATED_SESSIONS: usize = 64;
    for _ in 0..MIGRATED_SESSIONS {
        server.submit(SessionSpec::new(ring, ring_endpoints.clone()))?;
    }

    // Drain both shards: every session still in flight leaves as an
    // encoded checkpoint (already-finished ones deliver outcomes instead).
    let mut migrated = Vec::new();
    for shard in 0..server.shard_count() {
        migrated.extend(server.drain_shard(shard)?);
    }
    let bytes: usize = migrated.iter().map(|m| m.bytes.len()).sum();
    println!(
        "  drained {} in-flight sessions ({bytes} checkpoint bytes)",
        migrated.len()
    );

    // Migrate each checkpoint onto the *other* shard; decode re-validates
    // every index before the session is re-admitted, so a restored session
    // is re-certified, not just trusted.
    for m in migrated {
        let home = m.id.0 as usize % server.shard_count();
        server.migrate_session(m, (home + 1) % server.shard_count())?;
    }

    // Violators under RestartFromCheckpoint: each gets restarted from its
    // last certified snapshot, violates again, and after `max_retries`
    // restarts is quarantined for good.
    for _ in 0..BAD_SESSIONS {
        server.submit(SessionSpec::new(ring, bad_endpoints.clone()))?;
    }

    let outcomes = server.drain();
    assert_eq!(outcomes.len(), MIGRATED_SESSIONS + BAD_SESSIONS);
    let compliant = outcomes
        .iter()
        .filter(|o| o.all_finished_and_compliant())
        .count();
    assert_eq!(compliant, MIGRATED_SESSIONS, "migrated sessions finish compliant");
    assert_eq!(
        outcomes.iter().filter(|o| o.quarantined).count(),
        BAD_SESSIONS,
        "violators quarantine once their retries run out"
    );

    let report = server.shutdown();
    println!(
        "  {} sessions finished compliant after migration; {} restarts granted, {} sessions quarantined",
        compliant,
        report.sessions_restarted(),
        report.sessions_quarantined(),
    );
    assert_eq!(report.sessions_restarted() as usize, 2 * BAD_SESSIONS);
    assert_eq!(report.sessions_quarantined() as usize, BAD_SESSIONS);
    Ok(())
}
