//! Load simulation for the multi-session server: two registered protocols,
//! 1,000 concurrent sessions multiplexed on 4 worker shards.
//!
//! Where the other examples run *one* session with one OS thread per
//! participant, this one exercises the serving layer: every protocol is
//! compiled exactly once by the [`ProtocolRegistry`], sessions are resumable
//! endpoint tasks stepped in bounded quanta by the sharded scheduler, and
//! every communication is checked live by a compiled per-role monitor.
//!
//! Run with `cargo run --release --example load_sim`.

use std::time::Instant;

use zooid::dsl::Protocol;
use zooid::mpst::generators;
use zooid::server::synth::skeleton_endpoints;
use zooid::server::{ProtocolRegistry, ServerConfig, SessionServer, SessionSpec};

const SESSIONS: usize = 1_000;
const SHARDS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Register two protocols; each is projected and compiled exactly once.
    let mut registry = ProtocolRegistry::new();
    let ring = registry.register(Protocol::new("ring", generators::ring_n(4))?)?;
    let two_buyer = registry.register(Protocol::new("two_buyer", generators::two_buyer())?)?;
    println!("registered {} protocols", registry.len());

    // Certify one skeleton implementation per role, reused by every session.
    let ring_endpoints = skeleton_endpoints(registry.get(ring).unwrap().protocol())?;
    let buyer_endpoints = skeleton_endpoints(registry.get(two_buyer).unwrap().protocol())?;

    let mut server = SessionServer::start(registry, ServerConfig::with_shards(SHARDS));
    println!(
        "serving {SESSIONS} sessions on {} worker shards...",
        server.shard_count()
    );

    let started = Instant::now();
    for i in 0..SESSIONS {
        let spec = if i % 2 == 0 {
            SessionSpec::new(ring, ring_endpoints.clone())
        } else {
            SessionSpec::new(two_buyer, buyer_endpoints.clone())
        };
        server.submit(spec)?;
    }
    let outcomes = server.drain();
    let elapsed = started.elapsed();

    assert_eq!(outcomes.len(), SESSIONS);
    let compliant = outcomes.iter().filter(|o| o.all_finished_and_compliant()).count();
    let messages: usize = outcomes.iter().map(|o| o.messages_exchanged()).sum();
    println!(
        "finished {SESSIONS} sessions in {elapsed:?} ({:.0} sessions/s, {messages} messages)",
        SESSIONS as f64 / elapsed.as_secs_f64()
    );
    assert_eq!(compliant, SESSIONS, "every session must be compliant");

    let report = server.shutdown();
    println!("\n{report}");
    assert_eq!(report.sessions_completed() as usize, SESSIONS);
    assert_eq!(report.sessions_violated(), 0);
    Ok(())
}
