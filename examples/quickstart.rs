//! Quickstart: the ring protocol of §2.3, end to end.
//!
//! A certified process for `Alice` that sends a number to `Bob` and then
//! receives one from `Carol`, but only after `Bob` and `Carol` have exchanged
//! a message themselves. The example walks through the whole Zooid workflow:
//!
//! 1. write the global type;
//! 2. project it onto every participant (`\project`);
//! 3. implement each participant with the well-typed-by-construction
//!    builders;
//! 4. certify the implementations against the protocol;
//! 5. run the session on the in-memory runtime with a live compliance
//!    monitor;
//! 6. double-check deadlock freedom and liveness with the CFSM explorer.
//!
//! Run with `cargo run --example quickstart`.

use zooid::cfsm::check_protocol;
use zooid::dsl::builder::{self, BranchAlt};
use zooid::dsl::Protocol;
use zooid::mpst::global::GlobalType;
use zooid::mpst::{Role, Sort};
use zooid::proc::{Expr, Externals};
use zooid::runtime::SessionHarness;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alice = Role::new("Alice");
    let bob = Role::new("Bob");
    let carol = Role::new("Carol");

    // G = Alice -> Bob : l(nat). Bob -> Carol : l(nat). Carol -> Alice : l(nat). end
    let g = GlobalType::msg1(
        alice.clone(),
        bob.clone(),
        "l",
        Sort::Nat,
        GlobalType::msg1(
            bob.clone(),
            carol.clone(),
            "l",
            Sort::Nat,
            GlobalType::msg1(carol.clone(), alice.clone(), "l", Sort::Nat, GlobalType::End),
        ),
    );
    let protocol = Protocol::new("ring", g)?;
    println!("protocol: {protocol}");

    // Step 2: \project — the local types of every participant.
    println!("\nprojections:");
    for (role, local) in protocol.project_all()? {
        println!("  {role}: {local}");
    }

    // Step 3: implement the three endpoints.
    // Alice: send Bob (l, 7)! recv Carol (l, y)? finish
    let alice_impl = builder::send(
        bob.clone(),
        "l",
        Sort::Nat,
        Expr::lit(7u64),
        builder::recv1(carol.clone(), "l", Sort::Nat, "y", builder::finish())?,
    )?;
    // Bob and Carol: forward the received number, incremented.
    let forward = |from: &Role, to: &Role| -> zooid::dsl::Result<zooid::dsl::WtProc> {
        builder::branch(
            from.clone(),
            vec![BranchAlt::new(
                "l",
                Sort::Nat,
                "x",
                builder::send(
                    to.clone(),
                    "l",
                    Sort::Nat,
                    Expr::add(Expr::var("x"), Expr::lit(1u64)),
                    builder::finish(),
                )?,
            )],
        )
    };
    let bob_impl = forward(&alice, &carol)?;
    let carol_impl = forward(&bob, &alice)?;

    // Step 4: certification (typing + equality up to unravelling with the
    // projections).
    let ext = Externals::new();
    let alice_cert = protocol.implement(&alice, alice_impl, &ext)?;
    let bob_cert = protocol.implement(&bob, bob_impl, &ext)?;
    let carol_cert = protocol.implement(&carol, carol_impl, &ext)?;
    println!("\nall three endpoints certified");

    // Step 5: run the session with a live compliance monitor.
    let mut harness = SessionHarness::new(protocol.clone());
    harness.add_endpoint(alice_cert, ext.clone())?;
    harness.add_endpoint(bob_cert, ext.clone())?;
    harness.add_endpoint(carol_cert, ext.clone())?;
    let report = harness.run()?;

    println!("\nsession finished:");
    println!("  compliant: {}", report.compliant);
    println!("  complete:  {}", report.complete);
    println!("  messages:  {}", report.messages_exchanged());
    println!("  trace:     {}", report.global_trace);
    let alice_report = &report.endpoints[&alice];
    println!(
        "  Alice received back: {}",
        alice_report.actions.last().expect("alice acted").value
    );

    // Step 6: deadlock freedom / liveness via the communicating-automata
    // substrate.
    let safety = check_protocol(protocol.global(), 2, 100_000)?;
    println!("\ncfsm exploration:");
    println!("  configurations: {}", safety.outcome.configurations);
    println!("  deadlock-free:  {}", safety.is_safe());
    println!("  live:           {}", safety.is_live());

    assert!(report.all_finished_and_compliant());
    assert!(safety.is_safe() && safety.is_live());
    Ok(())
}
