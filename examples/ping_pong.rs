//! The ping-pong protocol of §5.1 and Appendix B.1, with the `alice4`
//! client: Alice keeps pinging Bob until the reply exceeds a threshold.
//!
//! The client's inferred local type is an *unrolling* of the projection; the
//! certification step accepts it through equality up to unravelling — the
//! same flexibility the paper obtains with a small coinductive proof.
//!
//! Run with `cargo run --example ping_pong`.

use zooid::dsl::builder::{self, BranchAlt, SelectAlt};
use zooid::dsl::{unravel_eq, Protocol};
use zooid::mpst::generators;
use zooid::mpst::local::LocalType;
use zooid::mpst::{Role, Sort};
use zooid::proc::{Expr, Externals};
use zooid::runtime::SessionHarness;

/// Alice stops as soon as Bob replies with a number >= K.
const K: u64 = 10;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alice = Role::new("Alice");
    let bob = Role::new("Bob");

    let protocol = Protocol::new("ping-pong", generators::ping_pong())?;
    println!("protocol: {protocol}");
    let alice_lt = protocol.get(&alice)?;
    println!("  Alice: {alice_lt}");
    println!("  Bob:   {}", protocol.get(&bob)?);

    // alice4 (§5.1): select Bob [ skip => l1 | otherwise => l2, 0 !
    //   loop { recv Bob (l3, x)? select Bob [ case x >= K => l1, ()! finish
    //                                       | otherwise  => l2, x ! jump ] } ]
    let inner = builder::select(
        bob.clone(),
        vec![
            SelectAlt::case(
                Expr::ge(Expr::var("x"), Expr::lit(K)),
                "l1",
                Sort::Unit,
                Expr::unit(),
                builder::finish(),
            ),
            SelectAlt::otherwise("l2", Sort::Nat, Expr::var("x"), builder::jump(0)),
        ],
    )?;
    let alice_impl = builder::select(
        bob.clone(),
        vec![
            SelectAlt::skip("l1", Sort::Unit, LocalType::End),
            SelectAlt::otherwise(
                "l2",
                Sort::Nat,
                Expr::lit(0u64),
                builder::loop_(builder::recv1(bob.clone(), "l3", Sort::Nat, "x", inner)?)?,
            ),
        ],
    )?;

    // The inferred type is an unrolling of the projection.
    println!("\ninferred type for alice4: {}", alice_impl.local_type());
    assert_ne!(alice_impl.local_type(), &alice_lt);
    assert!(unravel_eq(alice_impl.local_type(), &alice_lt));

    // Bob, the ping-pong server: replies x + 3 to every ping.
    let bob_impl = builder::loop_(builder::branch(
        alice.clone(),
        vec![
            BranchAlt::new("l1", Sort::Unit, "_quit", builder::finish()),
            BranchAlt::new(
                "l2",
                Sort::Nat,
                "x",
                builder::send(
                    alice.clone(),
                    "l3",
                    Sort::Nat,
                    Expr::add(Expr::var("x"), Expr::lit(3u64)),
                    builder::jump(0),
                )?,
            ),
        ],
    )?)?;

    let ext = Externals::new();
    let alice_cert = protocol.implement(&alice, alice_impl, &ext)?;
    let bob_cert = protocol.implement(&bob, bob_impl, &ext)?;
    println!("both endpoints certified");

    let mut harness = SessionHarness::new(protocol);
    harness.add_endpoint(alice_cert, ext.clone())?;
    harness.add_endpoint(bob_cert, ext)?;
    let report = harness.run()?;

    println!("\nsession finished:");
    println!("  compliant: {}", report.compliant);
    println!("  complete:  {}", report.complete);
    println!("  messages:  {}", report.messages_exchanged());
    let alice_report = &report.endpoints[&alice];
    println!("  Alice performed {} actions", alice_report.steps());
    // Alice pings with 0, 3, 6, 9 and stops once the reply reaches 12 >= K.
    assert!(report.all_finished_and_compliant(), "{:?}", report.violations);
    Ok(())
}
