//! The recursive pipeline of §5.1: `mu X. Alice -> Bob : l(nat).
//! Bob -> Carol : l(nat). X`.
//!
//! Bob is implemented exactly as in the paper: he receives a number from
//! Alice, calls an external `compute` function (the OCaml function of the
//! paper, here a registered Rust closure) and forwards the result to Carol,
//! forever. Because the protocol never terminates, the session is run with a
//! per-endpoint step limit.
//!
//! Run with `cargo run --example pipeline`.

use zooid::cfsm::check_protocol;
use zooid::dsl::builder::{self};
use zooid::dsl::Protocol;
use zooid::mpst::generators;
use zooid::mpst::{Role, Sort};
use zooid::proc::{Expr, Externals, Value};
use zooid::runtime::SessionHarness;

const ROUNDS: usize = 50;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alice = Role::new("Alice");
    let bob = Role::new("Bob");
    let carol = Role::new("Carol");

    let protocol = Protocol::new("pipeline", generators::pipeline())?;
    println!("protocol: {protocol}");
    for (role, local) in protocol.project_all()? {
        println!("  {role}: {local}");
    }

    // Alice: loop { send Bob (l, 1)! jump }
    let alice_impl = builder::loop_(builder::send(
        bob.clone(),
        "l",
        Sort::Nat,
        Expr::lit(1u64),
        builder::jump(0),
    )?)?;

    // Bob (§5.1): loop { recv Alice (l, x)? interact compute x (res.
    //             send Carol (l, res)! jump) }
    let mut bob_ext = Externals::new();
    bob_ext.register_interact("compute", Sort::Nat, Sort::Nat, |v| {
        Value::Nat(v.as_nat().unwrap_or(0) * 2 + 1)
    });
    let bob_impl = builder::loop_(builder::recv1(
        alice.clone(),
        "l",
        Sort::Nat,
        "x",
        builder::interact(
            "compute",
            Expr::var("x"),
            "res",
            builder::send(carol.clone(), "l", Sort::Nat, Expr::var("res"), builder::jump(0))?,
        ),
    )?)?;

    // Carol: loop { recv Bob (l, y)? write log y. jump }
    let mut carol_ext = Externals::new();
    carol_ext.register_write("log", Sort::Nat, |_| {});
    let carol_impl = builder::loop_(builder::recv1(
        bob.clone(),
        "l",
        Sort::Nat,
        "y",
        builder::write("log", Expr::var("y"), builder::jump(0)),
    )?)?;

    let alice_cert = protocol.implement(&alice, alice_impl, &Externals::new())?;
    let bob_cert = protocol.implement(&bob, bob_impl, &bob_ext)?;
    let carol_cert = protocol.implement(&carol, carol_impl, &carol_ext)?;
    println!("\nall three endpoints certified");

    let mut harness = SessionHarness::new(protocol.clone());
    harness.add_endpoint(alice_cert, Externals::new())?;
    harness.add_endpoint(bob_cert, bob_ext)?;
    harness.add_endpoint(carol_cert, carol_ext)?;
    // The pipeline is infinite: stop every endpoint after 2 * ROUNDS
    // communications and give receivers a short patience.
    harness.with_max_steps(2 * ROUNDS);
    harness.with_recv_timeout(std::time::Duration::from_millis(500));
    let report = harness.run()?;

    println!("\nran {ROUNDS} pipeline rounds:");
    println!("  compliant:          {}", report.compliant);
    println!("  messages exchanged: {}", report.messages_exchanged());
    let carol_report = &report.endpoints[&carol];
    println!(
        "  last value logged by Carol: {}",
        carol_report.actions.last().expect("carol received").value
    );
    assert!(report.compliant, "violations: {:?}", report.violations);

    let safety = check_protocol(protocol.global(), 2, 100_000)?;
    println!(
        "\ncfsm: {} configurations, safe = {}, live = {}",
        safety.outcome.configurations,
        safety.is_safe(),
        safety.is_live()
    );
    Ok(())
}
