//! The two-buyer protocol of §5.2 / Figure 10.
//!
//! Buyer `A` asks seller `S` for an item; `S` quotes the price to both
//! buyers; `A` proposes how much of the price it wants `B` to cover; `B`
//! accepts (and receives a delivery date) exactly when its share is at most a
//! third of the quote, otherwise it rejects.
//!
//! Run with `cargo run --example two_buyer`.

use zooid::cfsm::check_protocol;
use zooid::dsl::builder::{self, BranchAlt, SelectAlt};
use zooid::dsl::Protocol;
use zooid::mpst::generators;
use zooid::mpst::local::LocalType;
use zooid::mpst::{Role, Sort};
use zooid::proc::{Expr, Externals, Value};
use zooid::runtime::SessionHarness;

/// The price the seller quotes.
const QUOTE: u64 = 300;
/// How much buyer A offers to pay itself.
const A_CONTRIBUTION: u64 = 220;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let a = Role::new("A");
    let b = Role::new("B");
    let s = Role::new("S");

    let protocol = Protocol::new("two-buyer", generators::two_buyer())?;
    println!("protocol: {protocol}");
    for (role, local) in protocol.project_all()? {
        println!("  {role}: {local}");
    }

    // Buyer A: ask for the item, learn the quote, propose that B covers the
    // remainder (quote - contribution).
    let a_impl = builder::send(
        s.clone(),
        "ItemId",
        Sort::Nat,
        Expr::lit(42u64),
        builder::recv1(
            s.clone(),
            "Quote",
            Sort::Nat,
            "quote",
            builder::send(
                b.clone(),
                "Propose",
                Sort::Nat,
                Expr::sub(Expr::var("quote"), Expr::lit(A_CONTRIBUTION)),
                builder::finish(),
            )?,
        )?,
    )?;

    // Buyer B (Figure 10): accept iff the proposed share is at most a third
    // of the quote, paying the rest; otherwise reject.
    let b_impl = builder::recv1(
        s.clone(),
        "Quote",
        Sort::Nat,
        "x",
        builder::recv1(
            a.clone(),
            "Propose",
            Sort::Nat,
            "y",
            builder::select(
                s.clone(),
                vec![
                    SelectAlt::case(
                        Expr::le(Expr::var("y"), Expr::div(Expr::var("x"), Expr::lit(3u64))),
                        "Accept",
                        Sort::Nat,
                        Expr::var("y"),
                        builder::recv1(s.clone(), "Date", Sort::Nat, "d", builder::finish())?,
                    ),
                    SelectAlt::otherwise("Reject", Sort::Unit, Expr::unit(), builder::finish()),
                ],
            )?,
        )?,
    )?;

    // Seller S: quote the same price to both buyers, then wait for B's
    // decision; on acceptance send the delivery date.
    let s_impl = builder::recv1(
        a.clone(),
        "ItemId",
        Sort::Nat,
        "item",
        builder::send(
            a.clone(),
            "Quote",
            Sort::Nat,
            Expr::lit(QUOTE),
            builder::send(
                b.clone(),
                "Quote",
                Sort::Nat,
                Expr::lit(QUOTE),
                builder::branch(
                    b.clone(),
                    vec![
                        BranchAlt::new(
                            "Accept",
                            Sort::Nat,
                            "share",
                            builder::send(
                                b.clone(),
                                "Date",
                                Sort::Nat,
                                Expr::lit(20260621u64),
                                builder::finish(),
                            )?,
                        ),
                        BranchAlt::new("Reject", Sort::Unit, "_u", builder::finish()),
                    ],
                )?,
            )?,
        )?,
    )?;

    // B's projection and implementation line up syntactically (no recursion
    // in this protocol), as the paper notes.
    assert_eq!(b_impl.local_type(), &protocol.get(&b)?);
    let _ = LocalType::End; // (type referenced for documentation purposes)

    let ext = Externals::new();
    let a_cert = protocol.implement(&a, a_impl, &ext)?;
    let b_cert = protocol.implement(&b, b_impl, &ext)?;
    let s_cert = protocol.implement(&s, s_impl, &ext)?;
    println!("\nall three endpoints certified");

    let mut harness = SessionHarness::new(protocol.clone());
    harness.add_endpoint(a_cert, ext.clone())?;
    harness.add_endpoint(b_cert, ext.clone())?;
    harness.add_endpoint(s_cert, ext)?;
    let report = harness.run()?;

    println!("\nsession finished:");
    println!("  compliant: {}", report.compliant);
    println!("  complete:  {}", report.complete);
    let b_report = &report.endpoints[&b];
    let decision = &b_report.actions[2];
    println!("  B's decision: {} ({})", decision.label, decision.value);
    // With a 300 quote and a proposal of 80 <= 100, B accepts.
    assert_eq!(decision.label.name(), "Accept");
    assert_eq!(decision.value, Value::Nat(QUOTE - A_CONTRIBUTION));
    assert!(report.all_finished_and_compliant());

    let safety = check_protocol(protocol.global(), 2, 100_000)?;
    println!(
        "\ncfsm: {} configurations, safe = {}, live = {}",
        safety.outcome.configurations,
        safety.is_safe(),
        safety.is_live()
    );
    Ok(())
}
