//! The offloading client/server pair of §4.1: a server `q` that keeps adding
//! a constant to whatever the client sends, and a client `p` that keeps
//! asking until the running value exceeds a threshold.
//!
//! This example exercises the part of the DSL that mixes computation
//! (expressions, conditionals) with communication, and runs the two
//! endpoints over the *TCP* transport of §4.5 instead of the in-memory
//! harness, with a compliance monitor checking the client's trace afterwards.
//!
//! Run with `cargo run --example calculator`.

use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr, TcpListener, TcpStream};

use zooid::dsl::builder::{self, BranchAlt, SelectAlt};
use zooid::dsl::Protocol;
use zooid::mpst::global::GlobalType;
use zooid::mpst::local::LocalType;
use zooid::mpst::{Label, Role, Sort};
use zooid::proc::{erase, Expr, Externals};
use zooid::runtime::exec::{execute, ExecOptions};
use zooid::runtime::tcp::TcpTransport;
use zooid::runtime::TraceMonitor;

/// The server adds this to every request.
const M: u64 = 7;
/// The client stops once the value exceeds this threshold.
const N: u64 = 50;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = Role::new("p");
    let q = Role::new("q");

    // G = mu X. p -> q : { l1(nat). q -> p : l1(nat). X ; l2(unit). end }
    let g = GlobalType::rec(GlobalType::msg(
        p.clone(),
        q.clone(),
        vec![
            (
                Label::new("l1"),
                Sort::Nat,
                GlobalType::msg1(q.clone(), p.clone(), "l1", Sort::Nat, GlobalType::var(0)),
            ),
            (Label::new("l2"), Sort::Unit, GlobalType::End),
        ],
    ));
    let protocol = Protocol::new("calculator", g)?;
    println!("protocol: {protocol}");

    // The server (procq of §4.1): loop { recv p { l1(x). send p (l1, x+M).
    // jump ; l2(_). finish } }.
    let server = builder::loop_(builder::branch(
        p.clone(),
        vec![
            BranchAlt::new(
                "l1",
                Sort::Nat,
                "x",
                builder::send(
                    p.clone(),
                    "l1",
                    Sort::Nat,
                    Expr::add(Expr::var("x"), Expr::lit(M)),
                    builder::jump(0),
                )?,
            ),
            BranchAlt::new("l2", Sort::Unit, "_u", builder::finish()),
        ],
    )?)?;

    // The client (procp of §4.1): send q (l1, 0)! loop { recv q (l1, x)?
    //   select q [ case x > N => l2, ()! finish | otherwise => l1, x ! jump ] }.
    let client_loop = builder::loop_(builder::recv1(
        q.clone(),
        "l1",
        Sort::Nat,
        "x",
        builder::select(
            q.clone(),
            vec![
                SelectAlt::case(
                    Expr::lt(Expr::lit(N), Expr::var("x")),
                    "l2",
                    Sort::Unit,
                    Expr::unit(),
                    builder::finish(),
                ),
                SelectAlt::otherwise("l1", Sort::Nat, Expr::var("x"), builder::jump(0)),
            ],
        )?,
    )?)?;
    let client = builder::select(
        q.clone(),
        vec![
            SelectAlt::otherwise("l1", Sort::Nat, Expr::lit(0u64), client_loop),
            SelectAlt::skip(
                "l2",
                Sort::Unit,
                LocalType::End,
            ),
        ],
    )?;

    let ext = Externals::new();
    let client_cert = protocol.implement(&p, client, &ext)?;
    let server_cert = protocol.implement(&q, server, &ext)?;
    println!("both endpoints certified");

    // Run the two endpoints over TCP on the loopback interface.
    let listener = TcpListener::bind((IpAddr::V4(Ipv4Addr::LOCALHOST), 0))?;
    let addr = listener.local_addr()?;
    let server_proc = server_cert.proc().clone();
    let server_role = q.clone();
    let client_role = p.clone();
    let server_thread = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut streams = BTreeMap::new();
        streams.insert(client_role, stream);
        let mut transport = TcpTransport::from_streams(server_role.clone(), streams);
        execute(
            &server_proc,
            &server_role,
            &mut transport,
            &Externals::new(),
            &ExecOptions::default(),
        )
    });

    let stream = TcpStream::connect(addr)?;
    let mut streams = BTreeMap::new();
    streams.insert(q.clone(), stream);
    let mut transport = TcpTransport::from_streams(p.clone(), streams);
    let client_report = execute(
        client_cert.proc(),
        &p,
        &mut transport,
        &Externals::new(),
        &ExecOptions::default(),
    );
    let server_report = server_thread.join().expect("server thread");

    println!("\nclient finished: {:?}", client_report.status);
    println!("server finished: {:?}", server_report.status);
    println!("client exchanged {} messages", client_report.steps());
    let last_reply = client_report
        .actions
        .iter()
        .rev()
        .find(|a| !a.is_send)
        .expect("client received something");
    println!("last value received by the client: {}", last_reply.value);

    // Check the client's trace against the protocol after the fact: every
    // action of the client must be accepted by the global LTS in order
    // (receives of the server's replies included).
    let mut monitor = TraceMonitor::new(protocol.global())?;
    for action in &client_report.actions {
        // The monitor tracks the whole protocol, so reconstruct the missing
        // half of each exchange: the server's receive right after the
        // client's send, and the server's send right before the client's
        // receive.
        let erased = erase(action);
        if action.is_send {
            monitor.observe(&erased);
            monitor.observe(&erased.dual());
        } else {
            monitor.observe(&erased.dual());
            monitor.observe(&erased);
        }
    }
    println!("client trace compliant: {}", monitor.is_compliant());
    assert!(client_report.status.is_finished());
    assert!(server_report.status.is_finished());
    assert!(monitor.is_compliant());
    Ok(())
}
