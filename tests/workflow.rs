//! End-to-end runs of the §5 workflow (experiments E2–E5 in `DESIGN.md`):
//! specify the global type, project it, implement every participant in the
//! DSL, certify, execute on the session harness with a live monitor, and
//! cross-check deadlock freedom and liveness with the CFSM explorer.

use zooid::cfsm::check_protocol;
use zooid::dsl::builder::{self, BranchAlt, SelectAlt};
use zooid::dsl::{DslError, Protocol, WtProc};
use zooid::mpst::generators;
use zooid::mpst::local::LocalType;
use zooid::mpst::{Role, Sort};
use zooid::proc::{Expr, Externals, Value};
use zooid::runtime::SessionHarness;

fn r(name: &str) -> Role {
    Role::new(name)
}

/// Builds the §2.3 ring endpoints.
fn ring_endpoints(protocol: &Protocol) -> Vec<(Role, WtProc)> {
    let forward = |from: &str, to: &str| {
        builder::branch(
            r(from),
            vec![BranchAlt::new(
                "l",
                Sort::Nat,
                "x",
                builder::send(r(to), "l", Sort::Nat, Expr::var("x"), builder::finish()).unwrap(),
            )],
        )
        .unwrap()
    };
    let alice = builder::send(
        r("Bob"),
        "l",
        Sort::Nat,
        Expr::lit(5u64),
        builder::recv1(r("Carol"), "l", Sort::Nat, "y", builder::finish()).unwrap(),
    )
    .unwrap();
    assert_eq!(protocol.roles().len(), 3);
    vec![
        (r("Alice"), alice),
        (r("Bob"), forward("Alice", "Carol")),
        (r("Carol"), forward("Bob", "Alice")),
    ]
}

#[test]
fn e5_ring_workflow_end_to_end() {
    let protocol = Protocol::new("ring", generators::ring3()).unwrap();
    let projections = protocol.project_all().unwrap();
    assert_eq!(projections.len(), 3);

    let ext = Externals::new();
    let mut harness = SessionHarness::new(protocol.clone());
    for (role, wt) in ring_endpoints(&protocol) {
        let cert = protocol.implement(&role, wt, &ext).unwrap();
        harness.add_endpoint(cert, ext.clone()).unwrap();
    }
    let report = harness.run().unwrap();
    assert!(report.all_finished_and_compliant(), "{:?}", report.violations);
    assert_eq!(report.messages_exchanged(), 3);

    let safety = check_protocol(protocol.global(), 2, 10_000).unwrap();
    assert!(safety.is_safe() && safety.is_live());
    assert_eq!(safety.verdict(), zooid::cfsm::system::Verdict::Safe);
    assert!(safety.first_violation().is_none());
}

#[test]
fn e3_ping_pong_workflow_with_all_client_variants() {
    let protocol = Protocol::new("ping-pong", generators::ping_pong()).unwrap();
    let alice_lt = protocol.get(&r("Alice")).unwrap();
    let ext = Externals::new();

    // Bob, the server.
    let bob = builder::loop_(
        builder::branch(
            r("Alice"),
            vec![
                BranchAlt::new("l1", Sort::Unit, "_q", builder::finish()),
                BranchAlt::new(
                    "l2",
                    Sort::Nat,
                    "x",
                    builder::send(
                        r("Alice"),
                        "l3",
                        Sort::Nat,
                        Expr::add(Expr::var("x"), Expr::lit(2u64)),
                        builder::jump(0),
                    )
                    .unwrap(),
                ),
            ],
        )
        .unwrap(),
    )
    .unwrap();

    // alice0: quit immediately (skip the ping branch).
    let alice0 = builder::loop_(
        builder::select(
            r("Bob"),
            vec![
                SelectAlt::otherwise("l1", Sort::Unit, Expr::unit(), builder::finish()),
                SelectAlt::skip(
                    "l2",
                    Sort::Nat,
                    LocalType::recv1(r("Bob"), "l3", Sort::Nat, LocalType::var(0)),
                ),
            ],
        )
        .unwrap(),
    )
    .unwrap();

    // alice4: ping until the reply reaches 6.
    let inner = builder::select(
        r("Bob"),
        vec![
            SelectAlt::case(
                Expr::ge(Expr::var("x"), Expr::lit(6u64)),
                "l1",
                Sort::Unit,
                Expr::unit(),
                builder::finish(),
            ),
            SelectAlt::otherwise("l2", Sort::Nat, Expr::var("x"), builder::jump(0)),
        ],
    )
    .unwrap();
    let alice4 = builder::select(
        r("Bob"),
        vec![
            SelectAlt::skip("l1", Sort::Unit, LocalType::End),
            SelectAlt::otherwise(
                "l2",
                Sort::Nat,
                Expr::lit(0u64),
                builder::loop_(builder::recv1(r("Bob"), "l3", Sort::Nat, "x", inner).unwrap())
                    .unwrap(),
            ),
        ],
    )
    .unwrap();

    // Both clients certify against the same projection: alice0 syntactically,
    // alice4 up to unravelling.
    assert_eq!(alice0.local_type(), &alice_lt);
    assert_ne!(alice4.local_type(), &alice_lt);
    assert!(zooid::dsl::unravel_eq(alice4.local_type(), &alice_lt));

    for (client_name, client) in [("alice0", alice0), ("alice4", alice4)] {
        let mut harness = SessionHarness::new(protocol.clone());
        harness
            .add_endpoint(protocol.implement(&r("Alice"), client, &ext).unwrap(), ext.clone())
            .unwrap();
        harness
            .add_endpoint(protocol.implement(&r("Bob"), bob.clone(), &ext).unwrap(), ext.clone())
            .unwrap();
        let report = harness.run().unwrap();
        assert!(
            report.all_finished_and_compliant(),
            "{client_name}: {:?}",
            report.violations
        );
    }
}

#[test]
fn e4_two_buyer_workflow_accept_and_reject_paths() {
    let protocol = Protocol::new("two-buyer", generators::two_buyer()).unwrap();
    let ext = Externals::new();

    let buyer_a = |contribution: u64| {
        builder::send(
            r("S"),
            "ItemId",
            Sort::Nat,
            Expr::lit(1u64),
            builder::recv1(
                r("S"),
                "Quote",
                Sort::Nat,
                "quote",
                builder::send(
                    r("B"),
                    "Propose",
                    Sort::Nat,
                    Expr::sub(Expr::var("quote"), Expr::lit(contribution)),
                    builder::finish(),
                )
                .unwrap(),
            )
            .unwrap(),
        )
        .unwrap()
    };
    let buyer_b = builder::recv1(
        r("S"),
        "Quote",
        Sort::Nat,
        "x",
        builder::recv1(
            r("A"),
            "Propose",
            Sort::Nat,
            "y",
            builder::select(
                r("S"),
                vec![
                    SelectAlt::case(
                        Expr::le(Expr::var("y"), Expr::div(Expr::var("x"), Expr::lit(3u64))),
                        "Accept",
                        Sort::Nat,
                        Expr::var("y"),
                        builder::recv1(r("S"), "Date", Sort::Nat, "d", builder::finish()).unwrap(),
                    ),
                    SelectAlt::otherwise("Reject", Sort::Unit, Expr::unit(), builder::finish()),
                ],
            )
            .unwrap(),
        )
        .unwrap(),
    )
    .unwrap();
    let seller = builder::recv1(
        r("A"),
        "ItemId",
        Sort::Nat,
        "item",
        builder::send(
            r("A"),
            "Quote",
            Sort::Nat,
            Expr::lit(300u64),
            builder::send(
                r("B"),
                "Quote",
                Sort::Nat,
                Expr::lit(300u64),
                builder::branch(
                    r("B"),
                    vec![
                        BranchAlt::new(
                            "Accept",
                            Sort::Nat,
                            "share",
                            builder::send(r("B"), "Date", Sort::Nat, Expr::lit(99u64), builder::finish())
                                .unwrap(),
                        ),
                        BranchAlt::new("Reject", Sort::Unit, "_u", builder::finish()),
                    ],
                )
                .unwrap(),
            )
            .unwrap(),
        )
        .unwrap(),
    )
    .unwrap();

    // contribution 250 -> share 50 <= 100: B accepts;
    // contribution 100 -> share 200 > 100: B rejects.
    for (contribution, expected_label) in [(250u64, "Accept"), (100u64, "Reject")] {
        let mut harness = SessionHarness::new(protocol.clone());
        harness
            .add_endpoint(
                protocol.implement(&r("A"), buyer_a(contribution), &ext).unwrap(),
                ext.clone(),
            )
            .unwrap();
        harness
            .add_endpoint(protocol.implement(&r("B"), buyer_b.clone(), &ext).unwrap(), ext.clone())
            .unwrap();
        harness
            .add_endpoint(protocol.implement(&r("S"), seller.clone(), &ext).unwrap(), ext.clone())
            .unwrap();
        let report = harness.run().unwrap();
        assert!(report.compliant && report.complete, "{:?}", report.violations);
        let decision = &report.endpoints[&r("B")].actions[2];
        assert_eq!(decision.label.name(), expected_label, "contribution {contribution}");
    }
}

#[test]
fn e2_pipeline_workflow_with_external_compute() {
    let protocol = Protocol::new("pipeline", generators::pipeline()).unwrap();

    let alice = builder::loop_(
        builder::send(r("Bob"), "l", Sort::Nat, Expr::lit(3u64), builder::jump(0)).unwrap(),
    )
    .unwrap();
    let mut bob_ext = Externals::new();
    bob_ext.register_interact("compute", Sort::Nat, Sort::Nat, |v| {
        Value::Nat(v.as_nat().unwrap() + 100)
    });
    let bob = builder::loop_(
        builder::recv1(
            r("Alice"),
            "l",
            Sort::Nat,
            "x",
            builder::interact(
                "compute",
                Expr::var("x"),
                "res",
                builder::send(r("Carol"), "l", Sort::Nat, Expr::var("res"), builder::jump(0)).unwrap(),
            ),
        )
        .unwrap(),
    )
    .unwrap();
    let carol = builder::loop_(
        builder::recv1(r("Bob"), "l", Sort::Nat, "y", builder::jump(0)).unwrap(),
    )
    .unwrap();

    let ext = Externals::new();
    let mut harness = SessionHarness::new(protocol.clone());
    harness
        .add_endpoint(protocol.implement(&r("Alice"), alice, &ext).unwrap(), ext.clone())
        .unwrap();
    harness
        .add_endpoint(protocol.implement(&r("Bob"), bob, &bob_ext).unwrap(), bob_ext)
        .unwrap();
    harness
        .add_endpoint(protocol.implement(&r("Carol"), carol, &ext).unwrap(), ext.clone())
        .unwrap();
    harness.with_max_steps(20);
    harness.with_recv_timeout(std::time::Duration::from_millis(300));
    let report = harness.run().unwrap();
    assert!(report.compliant, "{:?}", report.violations);
    // Carol observes Bob's computed values.
    let carol_report = &report.endpoints[&r("Carol")];
    assert!(carol_report
        .actions
        .iter()
        .all(|a| a.value == Value::Nat(103)));
}

#[test]
fn certification_failures_are_precise() {
    let protocol = Protocol::new("ring", generators::ring3()).unwrap();
    let ext = Externals::new();

    // Wrong role: Alice's implementation offered as Bob.
    let alice = builder::send(
        r("Bob"),
        "l",
        Sort::Nat,
        Expr::lit(1u64),
        builder::recv1(r("Carol"), "l", Sort::Nat, "y", builder::finish()).unwrap(),
    )
    .unwrap();
    assert!(matches!(
        protocol.implement(&r("Bob"), alice.clone(), &ext),
        Err(DslError::TypeDoesNotMatchProjection { .. })
    ));

    // Unknown role.
    assert!(matches!(
        protocol.implement(&r("Zoe"), alice, &ext),
        Err(DslError::UnknownRole { .. })
    ));

    // A process using an undeclared external action fails validation.
    let reader = builder::read(
        "oracle",
        "x",
        builder::send(r("Bob"), "l", Sort::Nat, Expr::var("x"), builder::recv1(
            r("Carol"), "l", Sort::Nat, "y", builder::finish()).unwrap()).unwrap(),
    );
    assert!(matches!(
        protocol.implement(&r("Alice"), reader, &ext),
        Err(DslError::Typing(_))
    ));
}
