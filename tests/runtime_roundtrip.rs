//! Runtime integration tests (experiment E13 in `DESIGN.md`): end-to-end
//! execution over the in-memory and TCP transports, live monitoring, and
//! failure injection (uncertified processes misbehaving at run time).

use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr, TcpListener, TcpStream};
use std::time::Duration;

use zooid::dsl::builder::{self, BranchAlt};
use zooid::dsl::Protocol;
use zooid::mpst::generators;
use zooid::mpst::{Role, Sort};
use zooid::proc::{Expr, Externals, Proc, Value};
use zooid::runtime::exec::{execute, EndpointStatus, ExecOptions};
use zooid::runtime::tcp::TcpTransport;
use zooid::runtime::transport::{InMemoryNetwork, Transport};
use zooid::runtime::{SessionHarness, TraceMonitor};

fn r(name: &str) -> Role {
    Role::new(name)
}

#[test]
fn a_certified_two_buyer_session_runs_over_tcp() {
    // Run buyer A and the seller over a real TCP connection, with buyer B
    // wired in memory on the seller's side being unnecessary here: we use the
    // simpler calculator-style pair (client/server) to keep the socket
    // topology small — the full three-party session over TCP is exercised by
    // the calculator example.
    let protocol = Protocol::new(
        "greeting",
        zooid::mpst::global::GlobalType::msg1(
            r("client"),
            r("server"),
            "hello",
            Sort::Str,
            zooid::mpst::global::GlobalType::msg1(
                r("server"),
                r("client"),
                "reply",
                Sort::Str,
                zooid::mpst::global::GlobalType::End,
            ),
        ),
    )
    .unwrap();
    let ext = Externals::new();
    let client = protocol
        .implement(
            &r("client"),
            builder::send(
                r("server"),
                "hello",
                Sort::Str,
                Expr::lit("hi there"),
                builder::recv1(r("server"), "reply", Sort::Str, "x", builder::finish()).unwrap(),
            )
            .unwrap(),
            &ext,
        )
        .unwrap();
    let server = protocol
        .implement(
            &r("server"),
            builder::recv1(
                r("client"),
                "hello",
                Sort::Str,
                "greeting",
                builder::send(
                    r("client"),
                    "reply",
                    Sort::Str,
                    Expr::lit("hello to you"),
                    builder::finish(),
                )
                .unwrap(),
            )
            .unwrap(),
            &ext,
        )
        .unwrap();

    let listener = TcpListener::bind((IpAddr::V4(Ipv4Addr::LOCALHOST), 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let server_proc = server.proc().clone();
    let server_handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut streams = BTreeMap::new();
        streams.insert(r("client"), stream);
        let mut transport = TcpTransport::from_streams(r("server"), streams);
        execute(
            &server_proc,
            &r("server"),
            &mut transport,
            &Externals::new(),
            &ExecOptions::default(),
        )
    });
    let stream = TcpStream::connect(addr).unwrap();
    let mut streams = BTreeMap::new();
    streams.insert(r("server"), stream);
    let mut transport = TcpTransport::from_streams(r("client"), streams);
    let client_report = execute(
        client.proc(),
        &r("client"),
        &mut transport,
        &Externals::new(),
        &ExecOptions::default(),
    );
    let server_report = server_handle.join().unwrap();

    assert!(client_report.status.is_finished());
    assert!(server_report.status.is_finished());
    assert_eq!(
        client_report.actions[1].value,
        Value::Str("hello to you".into())
    );
}

#[test]
fn an_uncertified_misbehaving_endpoint_is_caught_by_the_monitor() {
    // Bob is supposed to forward to Carol, but this rogue implementation
    // sends back to Alice instead. It cannot be certified — so we inject it
    // directly into an executor and let the monitor judge the trace.
    let protocol = Protocol::new("ring", generators::ring3()).unwrap();
    let rogue_bob = Proc::recv1(
        r("Alice"),
        "l",
        Sort::Nat,
        "x",
        Proc::send(r("Alice"), "l", Expr::var("x"), Proc::Finish),
    );

    let mut network = InMemoryNetwork::new([r("Alice"), r("Bob"), r("Carol")]);
    let mut alice_t = network.take_endpoint(&r("Alice")).unwrap();
    let mut bob_t = network.take_endpoint(&r("Bob")).unwrap();
    let mut monitor = TraceMonitor::new(protocol.global()).unwrap();

    // Alice sends her number; rogue Bob answers her directly.
    alice_t
        .send(&r("Bob"), &zooid::mpst::Label::new("l"), &Value::Nat(1))
        .unwrap();
    let bob_report = execute(
        &rogue_bob,
        &r("Bob"),
        &mut bob_t,
        &Externals::new(),
        &ExecOptions::default(),
    );
    assert!(bob_report.status.is_finished());

    // Feed the observed actions to the monitor: Alice's send is fine, Bob's
    // receive is fine, but Bob's reply to Alice violates the protocol.
    monitor.observe(&zooid::mpst::Action::send(
        r("Alice"),
        r("Bob"),
        zooid::mpst::Label::new("l"),
        Sort::Nat,
    ));
    for action in &bob_report.actions {
        monitor.observe(&zooid::proc::erase(action));
    }
    assert!(!monitor.is_compliant());
    assert_eq!(monitor.violations().len(), 1);
}

#[test]
fn a_crashed_peer_surfaces_as_a_failed_endpoint_not_a_hang() {
    // Alice sends and then waits for Carol — but Carol's endpoint is dropped
    // without running, so Alice times out and reports a failure.
    let protocol = Protocol::new("ring", generators::ring3()).unwrap();
    let ext = Externals::new();
    let alice = protocol
        .implement(
            &r("Alice"),
            builder::send(
                r("Bob"),
                "l",
                Sort::Nat,
                Expr::lit(1u64),
                builder::recv1(r("Carol"), "l", Sort::Nat, "y", builder::finish()).unwrap(),
            )
            .unwrap(),
            &ext,
        )
        .unwrap();

    let mut network = InMemoryNetwork::new([r("Alice"), r("Bob"), r("Carol")]);
    let mut alice_t = network.take_endpoint(&r("Alice")).unwrap();
    alice_t.set_timeout(Duration::from_millis(50));
    // Bob and Carol are never started; their endpoints are dropped.
    drop(network);

    let report = execute(
        alice.proc(),
        &r("Alice"),
        &mut alice_t,
        &ext,
        &ExecOptions::default(),
    );
    match report.status {
        EndpointStatus::Failed { error } => {
            assert!(error.contains("disconnected") || error.contains("timed out"), "{error}");
        }
        other => panic!("expected a failure, got {other:?}"),
    }
    // The very first send already fails (Bob's endpoint is gone), so no
    // visible action completed.
    assert!(report.actions.is_empty());
}

#[test]
fn harness_reports_per_endpoint_step_limits() {
    // Run the recursive pipeline for a fixed number of steps and check that
    // the harness reports the step-limit status rather than hanging.
    let protocol = Protocol::new("pipeline", generators::pipeline()).unwrap();
    let ext = Externals::new();
    let alice = builder::loop_(
        builder::send(r("Bob"), "l", Sort::Nat, Expr::lit(1u64), builder::jump(0)).unwrap(),
    )
    .unwrap();
    let bob = builder::loop_(
        builder::recv1(
            r("Alice"),
            "l",
            Sort::Nat,
            "x",
            builder::send(r("Carol"), "l", Sort::Nat, Expr::var("x"), builder::jump(0)).unwrap(),
        )
        .unwrap(),
    )
    .unwrap();
    let carol = builder::loop_(
        builder::branch(
            r("Bob"),
            vec![BranchAlt::new("l", Sort::Nat, "y", builder::jump(0))],
        )
        .unwrap(),
    )
    .unwrap();

    let mut harness = SessionHarness::new(protocol.clone());
    harness
        .add_endpoint(protocol.implement(&r("Alice"), alice, &ext).unwrap(), ext.clone())
        .unwrap();
    harness
        .add_endpoint(protocol.implement(&r("Bob"), bob, &ext).unwrap(), ext.clone())
        .unwrap();
    harness
        .add_endpoint(protocol.implement(&r("Carol"), carol, &ext).unwrap(), ext.clone())
        .unwrap();
    harness.with_max_steps(10);
    harness.with_recv_timeout(Duration::from_millis(200));
    let report = harness.run().unwrap();

    assert!(report.compliant, "{:?}", report.violations);
    assert!(!report.complete);
    assert!(report
        .endpoints
        .values()
        .any(|e| e.status == EndpointStatus::StepLimitReached));
}
