//! Executable checks of the paper's theorems (experiments E8–E11 in
//! `DESIGN.md`), over the named case-study protocols and a randomised family
//! of well-formed global types.
//!
//! * Theorem 3.6 — unravelling preserves projections;
//! * Theorems 3.16 / 3.17 — step soundness / completeness;
//! * Theorem 3.21 — trace equivalence (bounded);
//! * Theorem 4.5 — type preservation for processes;
//! * Theorem 4.7 — process traces are global traces.

use proptest::prelude::*;

use zooid::mpst::generators::{self, RandomProtocol};
use zooid::mpst::global::GlobalType;
use zooid::mpst::projection::{project_all, unravelling_preserves_all_projections};
use zooid::mpst::trace_equiv::{
    check_step_completeness, check_step_soundness, check_trace_equivalence,
};
use zooid::mpst::{Role, Sort};
use zooid::proc::preservation::{check_against_projection, check_type_preservation};
use zooid::proc::{Expr, Externals, Proc, RecvAlt};

fn named_protocols() -> Vec<(&'static str, GlobalType)> {
    vec![
        ("ring3", generators::ring3()),
        ("pipeline", generators::pipeline()),
        ("ping_pong", generators::ping_pong()),
        ("two_buyer", generators::two_buyer()),
        ("fanout4", generators::fanout_n(4)),
        ("branching3", generators::branching(3)),
        ("chain4", generators::chain_n(4)),
    ]
}

#[test]
fn theorem_3_6_holds_for_every_named_protocol() {
    for (name, g) in named_protocols() {
        assert!(
            unravelling_preserves_all_projections(&g).unwrap(),
            "theorem 3.6 failed for {name}"
        );
    }
}

#[test]
fn theorems_3_16_and_3_17_hold_for_every_named_protocol() {
    for (name, g) in named_protocols() {
        let soundness = check_step_soundness(&g, 5).unwrap();
        assert!(soundness.holds, "soundness failed for {name}: {:?}", soundness.counterexample);
        let completeness = check_step_completeness(&g, 5).unwrap();
        assert!(
            completeness.holds,
            "completeness failed for {name}: {:?}",
            completeness.counterexample
        );
    }
}

#[test]
fn theorem_3_21_holds_for_every_named_protocol() {
    for (name, g) in named_protocols() {
        let depth = if name == "branching3" || name == "fanout4" { 4 } else { 6 };
        let report = check_trace_equivalence(&g, depth).unwrap();
        assert!(
            report.holds,
            "trace equivalence failed for {name}: {:?}",
            report.counterexample
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 3.6 on randomly generated protocols (whenever the inductive
    /// projection is defined, which is the theorem's hypothesis).
    #[test]
    fn theorem_3_6_holds_for_random_protocols(seed in any::<u64>()) {
        let g = generators::random_global(seed, &RandomProtocol::default());
        if project_all(&g).is_ok() {
            prop_assert!(unravelling_preserves_all_projections(&g).unwrap());
        }
    }

    /// Step soundness, completeness and bounded trace equivalence on random
    /// projectable protocols.
    #[test]
    fn step_correspondence_holds_for_random_protocols(seed in any::<u64>()) {
        let params = RandomProtocol { roles: 3, depth: 3, max_branches: 2, loop_back_percent: 20 };
        let g = generators::random_global(seed, &params);
        if project_all(&g).is_ok() {
            let s = check_step_soundness(&g, 4).unwrap();
            prop_assert!(s.holds, "soundness: {:?}", s.counterexample);
            let c = check_step_completeness(&g, 4).unwrap();
            prop_assert!(c.holds, "completeness: {:?}", c.counterexample);
            let t = check_trace_equivalence(&g, 4).unwrap();
            prop_assert!(t.holds, "trace equivalence: {:?}", t.counterexample);
        }
    }
}

/// Bob, the ping-pong server (the §5.1 case study used for the process-layer
/// theorems).
fn ping_pong_bob() -> Proc {
    Proc::loop_(Proc::recv(
        Role::new("Alice"),
        vec![
            RecvAlt::new("l1", Sort::Unit, "_x", Proc::Finish),
            RecvAlt::new(
                "l2",
                Sort::Nat,
                "x",
                Proc::send(
                    Role::new("Alice"),
                    "l3",
                    Expr::add(Expr::var("x"), Expr::lit(1u64)),
                    Proc::Jump(0),
                ),
            ),
        ],
    ))
}

/// The two-buyer seller written directly as a process.
fn two_buyer_seller() -> Proc {
    Proc::recv1(
        Role::new("A"),
        "ItemId",
        Sort::Nat,
        "item",
        Proc::send(
            Role::new("A"),
            "Quote",
            Expr::lit(300u64),
            Proc::send(
                Role::new("B"),
                "Quote",
                Expr::lit(300u64),
                Proc::recv(
                    Role::new("B"),
                    vec![
                        RecvAlt::new(
                            "Accept",
                            Sort::Nat,
                            "share",
                            Proc::send(Role::new("B"), "Date", Expr::lit(7u64), Proc::Finish),
                        ),
                        RecvAlt::new("Reject", Sort::Unit, "_u", Proc::Finish),
                    ],
                ),
            ),
        ),
    )
}

#[test]
fn theorem_4_5_type_preservation_for_case_study_processes() {
    let ext = Externals::new();
    let bob_lt =
        zooid::mpst::projection::project(&generators::ping_pong(), &Role::new("Bob")).unwrap();
    let report = check_type_preservation(&ping_pong_bob(), &bob_lt, &ext, &Role::new("Bob"), 8)
        .unwrap();
    assert!(report.holds, "{:?}", report.counterexample);

    let seller_lt =
        zooid::mpst::projection::project(&generators::two_buyer(), &Role::new("S")).unwrap();
    let report =
        check_type_preservation(&two_buyer_seller(), &seller_lt, &ext, &Role::new("S"), 8).unwrap();
    assert!(report.holds, "{:?}", report.counterexample);
}

#[test]
fn theorem_4_7_process_traces_are_global_traces() {
    let ext = Externals::new();
    let report = check_against_projection(
        &ping_pong_bob(),
        &Role::new("Bob"),
        &generators::ping_pong(),
        &ext,
        3,
    )
    .unwrap();
    assert!(report.holds, "{:?}", report.counterexample);

    let report = check_against_projection(
        &two_buyer_seller(),
        &Role::new("S"),
        &generators::two_buyer(),
        &ext,
        4,
    )
    .unwrap();
    assert!(report.holds, "{:?}", report.counterexample);
}

#[test]
fn the_theorem_checkers_reject_broken_implementations() {
    // A "Bob" that replies with a boolean: the hypotheses of Theorems 4.5 and
    // 4.7 (well-typedness) fail, so the checkers report an error up front.
    let bad_bob = Proc::loop_(Proc::recv(
        Role::new("Alice"),
        vec![
            RecvAlt::new("l1", Sort::Unit, "_x", Proc::Finish),
            RecvAlt::new(
                "l2",
                Sort::Nat,
                "x",
                Proc::send(Role::new("Alice"), "l3", Expr::lit(false), Proc::Jump(0)),
            ),
        ],
    ));
    let ext = Externals::new();
    assert!(check_against_projection(
        &bad_bob,
        &Role::new("Bob"),
        &generators::ping_pong(),
        &ext,
        3
    )
    .is_err());
}
